//! The direct-threaded execution backend.
//!
//! [`ThreadedSim`] compiles a [`PredecodedProgram`] **once** into
//! direct-threaded host code and then executes that, instead of
//! re-interpreting `Instruction` values every step the way
//! [`FunctionalSim`](crate::FunctionalSim) does. The compiled form is an
//! array of [`Op`] records, one per instruction (plus fused variants),
//! each carrying a host function pointer and fully pre-extracted
//! operands — register indices, pre-resized immediates, precomputed
//! link words and static branch targets — so the hot loop is an
//! indirect call per op with no decode, no `match`, and no immediate
//! conversion work.
//!
//! Three further techniques stack on top (see `docs/PERFORMANCE.md`):
//!
//! * **Superblock formation** over the precomputed link table: the
//!   program is partitioned into maximal straight-line runs
//!   (*superblocks*) whose boundaries are the static control-flow
//!   targets and successors. Inside a block there is no per-instruction
//!   budget check, halt check or PC update — those happen only at block
//!   boundaries, which is exactly where control can transfer.
//! * **Fused op sequences** for common adjacent pairs (logic + compare,
//!   add + store, the `ADDI`/`MV`/`COMP` loop idiom): one host call
//!   retires two architectural instructions.
//! * **Inline-cached TDM bases**: each static LOAD/STORE site caches
//!   the last base-register word next to its resolved integer value, so
//!   the common in-loop case skips the balanced-ternary address
//!   conversion entirely.
//!
//! Budget checks run only at superblock boundaries, but
//! [`Core::run_for`] stays *exact*: a block is entered through the fast
//! path only when the remaining budget covers the whole block, and the
//! tail (or any entry at a non-head PC, e.g. right after a mid-block
//! [`Checkpoint`] restore) falls back to precise single-op stepping.
//! `Budget::Steps`/`Budget::Retired` therefore cut at the same
//! instruction boundaries as the architectural interpreters.
//!
//! The backend implements the full [`Core`] contract: observers (the
//! precise interpreter path runs whenever observers are attached, so
//! event order is identical to the functional backend), exact
//! `instruction_mix` accounting across fused ops, and bit-identical
//! [`Checkpoint`] snapshot/restore at any architectural boundary —
//! checkpoints cross-restore between the architectural backends.

use std::sync::Arc;

use art9_isa::{Instruction, TReg};
use ternary::{TernaryError, Trit, Word9};

use crate::checkpoint::{Checkpoint, Micro};
use crate::core::{Backend, Budget, Core, RunSummary};
use crate::error::SimError;
use crate::exec::{control_target, shift, talu};
use crate::functional::{operand_values, CoreState, HaltReason, RunResult};
use crate::observer::{MemWrite, MemoryAccess, ObserverSet, RegWrite, Writeback};
use crate::predecode::PredecodedProgram;

/// How control leaves a compiled op. Deliberately register-sized: this
/// is the return value of every indirect call in the hot loop, so the
/// fat fault payload lives on the [`Machine`] instead (the cold path
/// parks it there and returns the bare [`Step::Fault`] tag).
#[derive(Clone, Copy)]
enum Step {
    /// Fall through to the next instruction (non-control ops).
    Next,
    /// Transfer to an in-range instruction address.
    Jump(u32),
    /// The machine halted; the second field is the final architectural
    /// PC (the transfer's own address for jump-to-self, the text length
    /// for falling off the end).
    Halt(HaltReason, u32),
    /// The op faulted; the payload is in [`Machine::fault`].
    Fault,
}

/// A fault raised by a compiled op, converted to [`SimError`] by the
/// engine once the retirement counters are settled.
enum Fault {
    /// TDM access violation at instruction address `pc`. `retired` is
    /// how many architectural instructions of the faulting (possibly
    /// fused) op retired, including the faulting one — 1 when the
    /// first component faulted, 2 when the second did — so partial
    /// fused pairs settle exactly.
    Mem {
        pc: usize,
        cause: TernaryError,
        retired: u8,
    },
    /// Control transfer left the instruction memory; `at_pc` is the
    /// address of the transferring instruction (which may be the second
    /// component of a fused pair).
    Wild { target: i64, at_pc: u32 },
}

/// The host code behind one compiled op.
type ExecFn = fn(&mut Machine<'_>, &Op) -> Step;

/// The mutable execution context handed to every [`ExecFn`].
struct Machine<'m> {
    state: &'m mut CoreState,
    icache: &'m mut [InlineCache],
    text_len: usize,
    /// Fault payload parked by an op that returned [`Step::Fault`].
    fault: Option<Fault>,
}

/// One inline-cache entry for a static LOAD/STORE site: the last base
/// word seen there, next to its resolved integer value. Keyed purely on
/// the word value, so it never needs invalidation — not even across
/// [`Core::restore`].
#[derive(Debug, Clone, Copy)]
struct InlineCache {
    base: Word9,
    value: i64,
}

impl Default for InlineCache {
    /// `ZERO ↦ 0` is itself a valid mapping, so the cold state needs no
    /// sentinel.
    fn default() -> Self {
        InlineCache {
            base: Word9::ZERO,
            value: 0,
        }
    }
}

/// One compiled (possibly fused) instruction with pre-extracted
/// operands. Unused fields are zero; which fields are live is
/// determined by `exec`.
#[derive(Debug, Clone, Copy)]
struct Op {
    exec: ExecFn,
    /// First component's `Ta` register index.
    a: u8,
    /// First component's `Tb` register index.
    b: u8,
    /// Second (fused) component's `Ta`, or a constant shift amount.
    c: u8,
    /// Second (fused) component's `Tb`.
    d: u8,
    /// Branch condition trit.
    cond: Trit,
    /// Pre-resized immediate / link word / LUI constant.
    imm: Word9,
    /// Second (fused) component's pre-resized immediate.
    imm2: Word9,
    /// Static branch/JAL target, or a LOAD/STORE offset as an integer.
    /// In a fused pair this belongs to the first component if that one
    /// is a memory op, otherwise to the second.
    target: i64,
    /// Inline-cache site for the TDM access (`u32::MAX`: none); same
    /// first-if-memory convention as `target` in a fused pair.
    site: u32,
    /// The second component's LOAD/STORE offset, when both components
    /// are memory ops.
    off2: i32,
    /// The second component's inline-cache site, when both components
    /// are memory ops.
    site2: u32,
    /// Address of the (first) instruction.
    pc: u32,
    /// Architectural instructions this op retires (1 or 2).
    n: u8,
    /// Dense opcode of the first component.
    opcode: u8,
    /// Dense opcode of the second component (`n == 2` only).
    opcode2: u8,
}

/// Where execution continues after a superblock completes without a
/// control transfer of its own.
#[derive(Debug, Clone, Copy)]
enum BlockExit {
    /// The block ends in a control-flow op, which produces its own
    /// [`Ctl`].
    Terminator,
    /// Straight-line fall-through into the next block head.
    Seq(usize),
    /// The block's last instruction is the last of the program: falling
    /// through halts ([`HaltReason::FellOffEnd`]).
    OffEnd,
}

/// One superblock: a maximal straight-line run of instructions entered
/// only at its head.
#[derive(Debug)]
struct Block {
    /// Address of the block head.
    start: usize,
    /// Architectural instructions the block covers (and retires, every
    /// time it executes — the terminator retires whether or not it
    /// takes its transfer).
    len: usize,
    /// The fused op sequence the hot path runs.
    fused: Vec<Op>,
    /// How control leaves when no terminator transfer fires.
    exit: BlockExit,
    /// Sparse per-opcode retirement counts (sums to `len`), applied in
    /// one shot when the block completes.
    mix: Vec<(u8, u32)>,
}

/// The compiled program: shared, immutable, compiled once per
/// [`PredecodedProgram`] image (cached on the image itself) and reused
/// by every [`ThreadedSim`] built from it.
#[derive(Debug)]
pub(crate) struct ThreadedCode {
    text: Arc<[Instruction]>,
    links: Arc<[Word9]>,
    /// One unfused op per pc — the precise path and the budget tail.
    ops: Vec<Op>,
    blocks: Vec<Block>,
    /// pc → block index when pc is a block head, `u32::MAX` otherwise.
    block_idx: Vec<u32>,
    /// pc → index of the covering block, for every pc. Lets a dynamic
    /// mid-block landing (a JALR target that isn't a static head)
    /// dispatch the unfused tail of its block instead of falling back
    /// to per-step execution.
    block_of: Vec<u32>,
    /// Number of inline-cache sites (static LOAD/STORE occurrences).
    sites: usize,
}

// --- compiled op bodies --------------------------------------------------
//
// Each body mirrors `talu` + the functional step for exactly one
// instruction (or one fused pair), with every decode-time quantity
// pre-extracted into the `Op`. The differential fuzz oracles and the
// cross-backend property tests hold these to the shared semantics in
// `exec.rs`.

fn x_mv(m: &mut Machine, op: &Op) -> Step {
    m.state.trf[op.a as usize] = m.state.trf[op.b as usize];
    Step::Next
}

fn x_pti(m: &mut Machine, op: &Op) -> Step {
    m.state.trf[op.a as usize] = m.state.trf[op.b as usize].pti();
    Step::Next
}

fn x_nti(m: &mut Machine, op: &Op) -> Step {
    m.state.trf[op.a as usize] = m.state.trf[op.b as usize].nti();
    Step::Next
}

fn x_sti(m: &mut Machine, op: &Op) -> Step {
    m.state.trf[op.a as usize] = m.state.trf[op.b as usize].sti();
    Step::Next
}

fn x_and(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].and(t[op.b as usize]);
    Step::Next
}

fn x_or(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].or(t[op.b as usize]);
    Step::Next
}

fn x_xor(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].xor(t[op.b as usize]);
    Step::Next
}

fn x_add(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(t[op.b as usize]);
    Step::Next
}

fn x_sub(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_sub(t[op.b as usize]);
    Step::Next
}

fn x_sr(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    let amt = t[op.b as usize].field::<2>(0);
    t[op.a as usize] = shift(t[op.a as usize], false, amt);
    Step::Next
}

fn x_sl(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    let amt = t[op.b as usize].field::<2>(0);
    t[op.a as usize] = shift(t[op.a as usize], true, amt);
    Step::Next
}

fn x_comp(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].compare(t[op.b as usize]);
    Step::Next
}

fn x_andi(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].and(op.imm);
    Step::Next
}

fn x_addi(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(op.imm);
    Step::Next
}

// SRI/SLI resolve their balanced shift amount at compile time, so the
// run-time body is a bare shl/shr by a constant count.
fn x_shl_k(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].shl(op.c as usize);
    Step::Next
}

fn x_shr_k(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].shr(op.c as usize);
    Step::Next
}

// LUI's whole result is a compile-time constant.
fn x_const(m: &mut Machine, op: &Op) -> Step {
    m.state.trf[op.a as usize] = op.imm;
    Step::Next
}

fn x_li(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].with_field::<5>(0, op.imm.field::<5>(0));
    Step::Next
}

/// Classifies a computed next-PC exactly like the functional step:
/// in-range → jump, own address → jump-to-self halt, text length →
/// fell-off-end halt, anything else → wild-transfer fault.
#[inline]
fn resolve_next(m: &mut Machine, target: i64, pc: usize) -> Step {
    if target < 0 || target as usize > m.text_len {
        m.fault = Some(Fault::Wild {
            target,
            at_pc: pc as u32,
        });
        return Step::Fault;
    }
    let t = target as usize;
    if t == pc {
        Step::Halt(HaltReason::JumpToSelf, pc as u32)
    } else if t == m.text_len {
        Step::Halt(HaltReason::FellOffEnd, t as u32)
    } else {
        Step::Jump(t as u32)
    }
}

fn x_beq(m: &mut Machine, op: &Op) -> Step {
    let pc = op.pc as usize;
    let next = if m.state.trf[op.b as usize].lst() == op.cond {
        op.target
    } else {
        pc as i64 + 1
    };
    resolve_next(m, next, pc)
}

fn x_bne(m: &mut Machine, op: &Op) -> Step {
    let pc = op.pc as usize;
    let next = if m.state.trf[op.b as usize].lst() != op.cond {
        op.target
    } else {
        pc as i64 + 1
    };
    resolve_next(m, next, pc)
}

fn x_jal(m: &mut Machine, op: &Op) -> Step {
    m.state.trf[op.a as usize] = op.imm; // link = pc + 1, precomputed
    resolve_next(m, op.target, op.pc as usize)
}

fn x_jalr(m: &mut Machine, op: &Op) -> Step {
    // Target reads Tb before the link write lands in Ta (a == b case).
    // Each JALR site inline-caches its last base word next to the
    // computed target (return addresses repeat heavily), skipping the
    // balanced-ternary conversion on a hit.
    let w = m.state.trf[op.b as usize];
    let ic = &mut m.icache[op.site as usize];
    let target = if ic.base == w {
        ic.value
    } else {
        let t = w.wrapping_add(op.imm2).to_i64();
        *ic = InlineCache { base: w, value: t };
        t
    };
    m.state.trf[op.a as usize] = op.imm;
    resolve_next(m, target, op.pc as usize)
}

/// Resolves a LOAD/STORE effective address through the site's inline
/// cache: on a base-word hit the address is an integer add with one
/// conditional balanced wrap (matching `wrapping_add` exactly); on a
/// miss, the full ternary resolve runs and refills the cache. `None`
/// parks the fault on the machine.
#[inline]
fn tdm_index(
    m: &mut Machine,
    base_reg: u8,
    off_word: Word9,
    off: i64,
    site: u32,
    pc: usize,
    retired: u8,
) -> Option<usize> {
    let base = m.state.trf[base_reg as usize];
    let ic = &mut m.icache[site as usize];
    if ic.base == base {
        let mut v = ic.value + off;
        if v > Word9::MAX_VALUE {
            v -= Word9::MODULUS;
        } else if v < -Word9::MAX_VALUE {
            v += Word9::MODULUS;
        }
        if v < 0 || v as usize >= m.state.tdm.size() {
            m.fault = Some(Fault::Mem {
                pc,
                cause: TernaryError::AddressRange {
                    address: v,
                    size: m.state.tdm.size(),
                },
                retired,
            });
            return None;
        }
        Some(v as usize)
    } else {
        let addr = base.wrapping_add(off_word);
        match m.state.tdm.resolve(addr) {
            Ok(idx) => {
                // The base's integer value is derived from the resolved
                // index arithmetically (undoing the offset modulo the
                // balanced word range) instead of a second ternary
                // conversion.
                let mut v = idx as i64 - off;
                if v > Word9::MAX_VALUE {
                    v -= Word9::MODULUS;
                } else if v < -Word9::MAX_VALUE {
                    v += Word9::MODULUS;
                }
                *ic = InlineCache { base, value: v };
                Some(idx)
            }
            Err(cause) => {
                m.fault = Some(Fault::Mem { pc, cause, retired });
                None
            }
        }
    }
}

/// The load body shared by the unfused op and the fused pairs.
/// `false` parks the fault on the machine. (The argument list is the
/// point: every value arrives pre-extracted in registers, no struct
/// indirection on the hot path.)
#[allow(clippy::too_many_arguments)]
#[inline]
fn do_load(
    m: &mut Machine,
    dst_reg: u8,
    base_reg: u8,
    off_word: Word9,
    off: i64,
    site: u32,
    pc: usize,
    retired: u8,
) -> bool {
    let Some(idx) = tdm_index(m, base_reg, off_word, off, site, pc, retired) else {
        return false;
    };
    match m.state.tdm.read(idx) {
        Ok(v) => {
            m.state.trf[dst_reg as usize] = v;
            true
        }
        Err(cause) => {
            m.fault = Some(Fault::Mem { pc, cause, retired });
            false
        }
    }
}

fn x_load(m: &mut Machine, op: &Op) -> Step {
    if do_load(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        Step::Next
    } else {
        Step::Fault
    }
}

/// The store body shared by the unfused op and the fused pairs.
/// `false` parks the fault on the machine. (Same flat-argument
/// convention as `do_load`.)
#[allow(clippy::too_many_arguments)]
#[inline]
fn do_store(
    m: &mut Machine,
    val_reg: u8,
    base_reg: u8,
    off_word: Word9,
    off: i64,
    site: u32,
    pc: usize,
    retired: u8,
) -> bool {
    let v = m.state.trf[val_reg as usize];
    let Some(idx) = tdm_index(m, base_reg, off_word, off, site, pc, retired) else {
        return false;
    };
    match m.state.tdm.write(idx, v) {
        Ok(()) => true,
        Err(cause) => {
            m.fault = Some(Fault::Mem { pc, cause, retired });
            false
        }
    }
}

fn x_store(m: &mut Machine, op: &Op) -> Step {
    if do_store(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        Step::Next
    } else {
        Step::Fault
    }
}

// --- fused pair bodies ---------------------------------------------------
//
// Each fused body applies its two components in program order, so
// intra-pair register dependencies behave exactly as in sequential
// execution. Faultable components (LOAD/STORE) may sit in either
// position: a fault parks how many of the pair's instructions retired
// (the faulting one included, per the architectural convention), so
// the engine settles partial pairs exactly.

fn x_and_comp(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].and(t[op.b as usize]);
    t[op.c as usize] = t[op.c as usize].compare(t[op.d as usize]);
    Step::Next
}

fn x_or_comp(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].or(t[op.b as usize]);
    t[op.c as usize] = t[op.c as usize].compare(t[op.d as usize]);
    Step::Next
}

fn x_xor_comp(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].xor(t[op.b as usize]);
    t[op.c as usize] = t[op.c as usize].compare(t[op.d as usize]);
    Step::Next
}

fn x_mv_comp(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.b as usize];
    t[op.c as usize] = t[op.c as usize].compare(t[op.d as usize]);
    Step::Next
}

fn x_addi_mv(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(op.imm);
    t[op.c as usize] = t[op.d as usize];
    Step::Next
}

fn x_add_comp(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(t[op.b as usize]);
    t[op.c as usize] = t[op.c as usize].compare(t[op.d as usize]);
    Step::Next
}

fn x_sub_comp(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_sub(t[op.b as usize]);
    t[op.c as usize] = t[op.c as usize].compare(t[op.d as usize]);
    Step::Next
}

fn x_mv_mv(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.b as usize];
    t[op.c as usize] = t[op.d as usize];
    Step::Next
}

fn x_mv_addi(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.b as usize];
    t[op.c as usize] = t[op.c as usize].wrapping_add(op.imm2);
    Step::Next
}

fn x_addi_addi(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(op.imm);
    t[op.c as usize] = t[op.c as usize].wrapping_add(op.imm2);
    Step::Next
}

// Fused compare-and-branch terminators: the COMP result lands in the
// register file exactly as unfused, then the branch resolves against
// it. The branch's own address is `op.pc + 1`.

fn x_comp_beq(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].compare(t[op.b as usize]);
    let pc = op.pc as usize + 1;
    let next = if m.state.trf[op.d as usize].lst() == op.cond {
        op.target
    } else {
        pc as i64 + 1
    };
    resolve_next(m, next, pc)
}

fn x_comp_bne(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].compare(t[op.b as usize]);
    let pc = op.pc as usize + 1;
    let next = if m.state.trf[op.d as usize].lst() != op.cond {
        op.target
    } else {
        pc as i64 + 1
    };
    resolve_next(m, next, pc)
}

fn x_add_store(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(t[op.b as usize]);
    if do_store(
        m,
        op.c,
        op.d,
        op.imm2,
        op.target,
        op.site,
        op.pc as usize + 1,
        2,
    ) {
        Step::Next
    } else {
        Step::Fault
    }
}

fn x_addi_store(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(op.imm);
    if do_store(
        m,
        op.c,
        op.d,
        op.imm2,
        op.target,
        op.site,
        op.pc as usize + 1,
        2,
    ) {
        Step::Next
    } else {
        Step::Fault
    }
}

fn x_mv_store(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.b as usize];
    if do_store(
        m,
        op.c,
        op.d,
        op.imm2,
        op.target,
        op.site,
        op.pc as usize + 1,
        2,
    ) {
        Step::Next
    } else {
        Step::Fault
    }
}

fn x_add_load(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(t[op.b as usize]);
    if do_load(
        m,
        op.c,
        op.d,
        op.imm2,
        op.target,
        op.site,
        op.pc as usize + 1,
        2,
    ) {
        Step::Next
    } else {
        Step::Fault
    }
}

fn x_addi_load(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(op.imm);
    if do_load(
        m,
        op.c,
        op.d,
        op.imm2,
        op.target,
        op.site,
        op.pc as usize + 1,
        2,
    ) {
        Step::Next
    } else {
        Step::Fault
    }
}

fn x_mv_load(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.b as usize];
    if do_load(
        m,
        op.c,
        op.d,
        op.imm2,
        op.target,
        op.site,
        op.pc as usize + 1,
        2,
    ) {
        Step::Next
    } else {
        Step::Fault
    }
}

// Memory-first pairs: the first component's site/offset live in
// `site`/`target`, the second's in `site2`/`off2`.

fn x_load_load(m: &mut Machine, op: &Op) -> Step {
    if !do_load(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    if !do_load(
        m,
        op.c,
        op.d,
        op.imm2,
        op.off2 as i64,
        op.site2,
        op.pc as usize + 1,
        2,
    ) {
        return Step::Fault;
    }
    Step::Next
}

fn x_load_store(m: &mut Machine, op: &Op) -> Step {
    if !do_load(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    if !do_store(
        m,
        op.c,
        op.d,
        op.imm2,
        op.off2 as i64,
        op.site2,
        op.pc as usize + 1,
        2,
    ) {
        return Step::Fault;
    }
    Step::Next
}

fn x_store_load(m: &mut Machine, op: &Op) -> Step {
    if !do_store(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    if !do_load(
        m,
        op.c,
        op.d,
        op.imm2,
        op.off2 as i64,
        op.site2,
        op.pc as usize + 1,
        2,
    ) {
        return Step::Fault;
    }
    Step::Next
}

fn x_store_store(m: &mut Machine, op: &Op) -> Step {
    if !do_store(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    if !do_store(
        m,
        op.c,
        op.d,
        op.imm2,
        op.off2 as i64,
        op.site2,
        op.pc as usize + 1,
        2,
    ) {
        return Step::Fault;
    }
    Step::Next
}

fn x_load_mv(m: &mut Machine, op: &Op) -> Step {
    if !do_load(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    let t = &mut m.state.trf;
    t[op.c as usize] = t[op.d as usize];
    Step::Next
}

fn x_store_mv(m: &mut Machine, op: &Op) -> Step {
    if !do_store(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    let t = &mut m.state.trf;
    t[op.c as usize] = t[op.d as usize];
    Step::Next
}

fn x_load_comp(m: &mut Machine, op: &Op) -> Step {
    if !do_load(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    let t = &mut m.state.trf;
    t[op.c as usize] = t[op.c as usize].compare(t[op.d as usize]);
    Step::Next
}

fn x_load_add(m: &mut Machine, op: &Op) -> Step {
    if !do_load(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    let t = &mut m.state.trf;
    t[op.c as usize] = t[op.c as usize].wrapping_add(t[op.d as usize]);
    Step::Next
}

fn x_load_addi(m: &mut Machine, op: &Op) -> Step {
    if !do_load(m, op.a, op.b, op.imm, op.target, op.site, op.pc as usize, 1) {
        return Step::Fault;
    }
    let t = &mut m.state.trf;
    t[op.c as usize] = t[op.c as usize].wrapping_add(op.imm2);
    Step::Next
}

fn x_add_add(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_add(t[op.b as usize]);
    t[op.c as usize] = t[op.c as usize].wrapping_add(t[op.d as usize]);
    Step::Next
}

fn x_sub_li(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].wrapping_sub(t[op.b as usize]);
    t[op.c as usize] = t[op.c as usize].with_field::<5>(0, op.imm2.field::<5>(0));
    Step::Next
}

fn x_li_sub(m: &mut Machine, op: &Op) -> Step {
    let t = &mut m.state.trf;
    t[op.a as usize] = t[op.a as usize].with_field::<5>(0, op.imm.field::<5>(0));
    t[op.c as usize] = t[op.c as usize].wrapping_sub(t[op.d as usize]);
    Step::Next
}

// --- compilation ---------------------------------------------------------

/// Compiles one instruction into its unfused op, pre-extracting every
/// decode-time quantity.
fn compile_op(instr: &Instruction, pc: usize, link: Word9, sites: &mut u32) -> Op {
    use Instruction::*;
    let r = |t: &TReg| t.index() as u8;
    let mut site = || {
        let s = *sites;
        *sites += 1;
        s
    };
    let mut op = Op {
        exec: x_mv,
        a: 0,
        b: 0,
        c: 0,
        d: 0,
        cond: Trit::Z,
        imm: Word9::ZERO,
        imm2: Word9::ZERO,
        target: 0,
        site: u32::MAX,
        off2: 0,
        site2: u32::MAX,
        pc: pc as u32,
        n: 1,
        opcode: instr.opcode() as u8,
        opcode2: 0,
    };
    match instr {
        Mv { a, b } => {
            op.exec = x_mv;
            op.a = r(a);
            op.b = r(b);
        }
        Pti { a, b } => {
            op.exec = x_pti;
            op.a = r(a);
            op.b = r(b);
        }
        Nti { a, b } => {
            op.exec = x_nti;
            op.a = r(a);
            op.b = r(b);
        }
        Sti { a, b } => {
            op.exec = x_sti;
            op.a = r(a);
            op.b = r(b);
        }
        And { a, b } => {
            op.exec = x_and;
            op.a = r(a);
            op.b = r(b);
        }
        Or { a, b } => {
            op.exec = x_or;
            op.a = r(a);
            op.b = r(b);
        }
        Xor { a, b } => {
            op.exec = x_xor;
            op.a = r(a);
            op.b = r(b);
        }
        Add { a, b } => {
            op.exec = x_add;
            op.a = r(a);
            op.b = r(b);
        }
        Sub { a, b } => {
            op.exec = x_sub;
            op.a = r(a);
            op.b = r(b);
        }
        Sr { a, b } => {
            op.exec = x_sr;
            op.a = r(a);
            op.b = r(b);
        }
        Sl { a, b } => {
            op.exec = x_sl;
            op.a = r(a);
            op.b = r(b);
        }
        Comp { a, b } => {
            op.exec = x_comp;
            op.a = r(a);
            op.b = r(b);
        }
        Andi { a, imm } => {
            op.exec = x_andi;
            op.a = r(a);
            op.imm = imm.resize::<9>();
        }
        Addi { a, imm } => {
            op.exec = x_addi;
            op.a = r(a);
            op.imm = imm.resize::<9>();
        }
        // Balanced shift amounts resolve at compile time: a negative
        // amount reverses the direction (DESIGN.md §3.2).
        Sri { a, imm } => {
            let v = imm.to_i64();
            op.exec = if v >= 0 { x_shr_k } else { x_shl_k };
            op.a = r(a);
            op.c = v.unsigned_abs() as u8;
        }
        Sli { a, imm } => {
            let v = imm.to_i64();
            op.exec = if v >= 0 { x_shl_k } else { x_shr_k };
            op.a = r(a);
            op.c = v.unsigned_abs() as u8;
        }
        Lui { a, imm } => {
            op.exec = x_const;
            op.a = r(a);
            op.imm = Word9::ZERO.with_field::<4>(5, *imm);
        }
        Li { a, imm } => {
            op.exec = x_li;
            op.a = r(a);
            op.imm = Word9::ZERO.with_field::<5>(0, *imm);
        }
        Beq { b, cond, offset } => {
            op.exec = x_beq;
            op.b = r(b);
            op.cond = *cond;
            op.target = pc as i64 + offset.to_i64();
        }
        Bne { b, cond, offset } => {
            op.exec = x_bne;
            op.b = r(b);
            op.cond = *cond;
            op.target = pc as i64 + offset.to_i64();
        }
        Jal { a, offset } => {
            op.exec = x_jal;
            op.a = r(a);
            op.imm = link;
            op.target = pc as i64 + offset.to_i64();
        }
        Jalr { a, b, offset } => {
            op.exec = x_jalr;
            op.a = r(a);
            op.b = r(b);
            op.imm = link;
            op.imm2 = offset.resize::<9>();
            op.site = site();
        }
        Load { a, b, offset } => {
            op.exec = x_load;
            op.a = r(a);
            op.b = r(b);
            op.imm = offset.resize::<9>();
            op.target = offset.to_i64();
            op.site = site();
        }
        Store { a, b, offset } => {
            op.exec = x_store;
            op.a = r(a);
            op.b = r(b);
            op.imm = offset.resize::<9>();
            op.target = offset.to_i64();
            op.site = site();
        }
    }
    op
}

/// Fuses two adjacent unfused ops into one, when the pair matches a
/// known-hot shape. Components keep program order inside the fused
/// body, so `None` is only about profitability, never correctness.
fn fuse(first: &Op, second: &Op, i1: &Instruction, i2: &Instruction) -> Option<Op> {
    use Instruction::*;
    let exec: ExecFn = match (i1, i2) {
        (And { .. }, Comp { .. }) => x_and_comp,
        (Or { .. }, Comp { .. }) => x_or_comp,
        (Xor { .. }, Comp { .. }) => x_xor_comp,
        (Mv { .. }, Comp { .. }) => x_mv_comp,
        (Add { .. }, Comp { .. }) => x_add_comp,
        (Sub { .. }, Comp { .. }) => x_sub_comp,
        (Mv { .. }, Mv { .. }) => x_mv_mv,
        (Mv { .. }, Addi { .. }) => x_mv_addi,
        (Addi { .. }, Mv { .. }) => x_addi_mv,
        (Addi { .. }, Addi { .. }) => x_addi_addi,
        (Add { .. }, Add { .. }) => x_add_add,
        (Sub { .. }, Li { .. }) => x_sub_li,
        (Li { .. }, Sub { .. }) => x_li_sub,
        (Add { .. }, Store { .. }) => x_add_store,
        (Addi { .. }, Store { .. }) => x_addi_store,
        (Mv { .. }, Store { .. }) => x_mv_store,
        (Add { .. }, Load { .. }) => x_add_load,
        (Addi { .. }, Load { .. }) => x_addi_load,
        (Mv { .. }, Load { .. }) => x_mv_load,
        (Load { .. }, Load { .. }) => x_load_load,
        (Load { .. }, Store { .. }) => x_load_store,
        (Store { .. }, Load { .. }) => x_store_load,
        (Store { .. }, Store { .. }) => x_store_store,
        (Load { .. }, Mv { .. }) => x_load_mv,
        (Store { .. }, Mv { .. }) => x_store_mv,
        (Load { .. }, Comp { .. }) => x_load_comp,
        (Load { .. }, Add { .. }) => x_load_add,
        (Load { .. }, Addi { .. }) => x_load_addi,
        (Comp { .. }, Beq { .. }) => x_comp_beq,
        (Comp { .. }, Bne { .. }) => x_comp_bne,
        _ => return None,
    };
    // `site`/`target` carry the first component's memory-access data
    // when the first component is a memory op, otherwise the second's
    // (the second's then also lands in `site2`/`off2`, which only the
    // memory-first pair bodies read).
    let mem_first = matches!(i1, Load { .. } | Store { .. });
    Some(Op {
        exec,
        a: first.a,
        b: first.b,
        c: second.a,
        d: second.b,
        cond: second.cond,
        imm: first.imm,
        imm2: second.imm,
        target: if mem_first {
            first.target
        } else {
            second.target
        },
        site: if mem_first { first.site } else { second.site },
        off2: second.target as i32,
        site2: second.site,
        pc: first.pc,
        n: 2,
        opcode: first.opcode,
        opcode2: second.opcode,
    })
}

impl ThreadedCode {
    /// Compiles the whole image: unfused ops, block heads over the link
    /// table, superblocks, and the fused hot sequences.
    pub(crate) fn compile(image: &PredecodedProgram) -> Self {
        let text = image.text_arc();
        let links = image.links_arc();
        let len = text.len();
        let mut sites: u32 = 0;
        let ops: Vec<Op> = text
            .iter()
            .enumerate()
            .map(|(pc, i)| compile_op(i, pc, links[pc], &mut sites))
            .collect();

        // Block heads: the entry point, every static in-range control
        // target, and every successor of a control transfer (JALR
        // targets are dynamic; landing mid-block falls back to precise
        // stepping until the next head).
        let mut head = vec![false; len];
        if len > 0 {
            head[0] = true;
        }
        for (pc, instr) in text.iter().enumerate() {
            if !instr.is_control_flow() {
                continue;
            }
            if pc + 1 < len {
                head[pc + 1] = true;
            }
            let target = match instr {
                Instruction::Beq { offset, .. } | Instruction::Bne { offset, .. } => {
                    Some(pc as i64 + offset.to_i64())
                }
                Instruction::Jal { offset, .. } => Some(pc as i64 + offset.to_i64()),
                _ => None,
            };
            if let Some(t) = target {
                if t >= 0 && (t as usize) < len {
                    head[t as usize] = true;
                }
            }
        }

        let mut blocks = Vec::new();
        let mut block_idx = vec![u32::MAX; len];
        let mut block_of = vec![u32::MAX; len];
        let mut start = 0usize;
        while start < len {
            // `end` is the inclusive index of the block's last
            // instruction: extend until a control-flow terminator, the
            // next head, or the end of text.
            let mut end = start;
            while !text[end].is_control_flow() && end + 1 < len && !head[end + 1] {
                end += 1;
            }
            let exit = if text[end].is_control_flow() {
                BlockExit::Terminator
            } else if end + 1 == len {
                BlockExit::OffEnd
            } else {
                BlockExit::Seq(end + 1)
            };

            let mut fused = Vec::new();
            let mut i = start;
            while i <= end {
                if i < end {
                    if let Some(f) = fuse(&ops[i], &ops[i + 1], &text[i], &text[i + 1]) {
                        fused.push(f);
                        i += 2;
                        continue;
                    }
                }
                fused.push(ops[i]);
                i += 1;
            }

            let mut counts = [0u32; Instruction::OPCODE_COUNT];
            for instr in text[start..=end].iter() {
                counts[instr.opcode()] += 1;
            }
            let mix: Vec<(u8, u32)> = counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(o, &c)| (o as u8, c))
                .collect();

            block_idx[start] = blocks.len() as u32;
            for slot in block_of.iter_mut().take(end + 1).skip(start) {
                *slot = blocks.len() as u32;
            }
            blocks.push(Block {
                start,
                len: end - start + 1,
                fused,
                exit,
                mix,
            });
            start = end + 1;
        }

        ThreadedCode {
            text,
            links,
            ops,
            blocks,
            block_idx,
            block_of,
            sites: sites as usize,
        }
    }
}

/// The direct-threaded instruction-set simulator — architecturally
/// identical to [`FunctionalSim`](crate::FunctionalSim), several times
/// faster. The module-level docs describe the compilation pipeline.
///
/// # Examples
///
/// ```
/// use art9_isa::assemble;
/// use art9_sim::{Backend, Budget, Core, SimBuilder};
///
/// let program = assemble("
///     LI   t3, 10
///     LI   t4, 0
/// loop:
///     ADD  t4, t3
///     ADDI t3, -1
///     MV   t7, t3
///     COMP t7, t0
///     BEQ  t7, +, loop
///     JAL  t0, 0
/// ")?;
/// let mut sim = SimBuilder::new(&program)
///     .backend(Backend::Threaded)
///     .build();
/// sim.run_for(Budget::Steps(10_000))?;
/// assert_eq!(sim.state().reg("t4".parse()?).to_i64(), 55);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ThreadedSim {
    code: Arc<ThreadedCode>,
    state: CoreState,
    icache: Vec<InlineCache>,
    instructions: u64,
    halted: Option<HaltReason>,
    mix: [u64; Instruction::OPCODE_COUNT],
    /// Completed executions per superblock. The hot loop bumps one
    /// counter per block run; the per-opcode mix is materialized
    /// lazily by `full_mix` (the precise step path and partial blocks
    /// still credit `mix` directly).
    block_execs: Vec<u64>,
    observers: ObserverSet,
}

impl ThreadedSim {
    /// The one real constructor, reached through
    /// [`SimBuilder`](crate::SimBuilder).
    pub(crate) fn build(
        image: &PredecodedProgram,
        tdm_words: usize,
        observers: ObserverSet,
    ) -> Self {
        let code = image.threaded_code();
        let icache = vec![InlineCache::default(); code.sites];
        let block_execs = vec![0; code.blocks.len()];
        Self {
            code,
            state: CoreState::with_image(image.data(), tdm_words),
            icache,
            instructions: 0,
            halted: None,
            mix: [0; Instruction::OPCODE_COUNT],
            block_execs,
            observers,
        }
    }

    /// Materializes the dynamic mix: the directly-counted portion (the
    /// precise step path and partial blocks) plus each block's sparse
    /// static mix scaled by how many times it ran to completion.
    fn full_mix(&self) -> [u64; Instruction::OPCODE_COUNT] {
        let mut mix = self.mix;
        for (block, &execs) in self.code.blocks.iter().zip(&self.block_execs) {
            if execs == 0 {
                continue;
            }
            for &(opcode, count) in &block.mix {
                mix[opcode as usize] += count as u64 * execs;
            }
        }
        mix
    }

    /// Dynamic instruction mix: executed count per mnemonic. Fused ops
    /// contribute one count per architectural component, so this always
    /// matches unfused execution exactly.
    pub fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
        crate::core::mix_map(&self.full_mix())
    }

    /// The architectural state (inspectable mid-run).
    pub fn state(&self) -> &CoreState {
        &self.state
    }

    /// Mutable state access, e.g. to preload registers before a run.
    pub fn state_mut(&mut self) -> &mut CoreState {
        &mut self.state
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether (and why) the machine has halted.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// The superblock spans the compiler formed, as `(start_pc, len)`
    /// pairs in address order. Block boundaries are the static
    /// control-flow targets and successors; every instruction belongs
    /// to exactly one block.
    pub fn superblocks(&self) -> Vec<(usize, usize)> {
        self.code.blocks.iter().map(|b| (b.start, b.len)).collect()
    }

    /// Number of fused instruction pairs across the compiled hot
    /// sequences (each retires two architectural instructions per
    /// execution).
    pub fn fused_pairs(&self) -> usize {
        self.code
            .blocks
            .iter()
            .flat_map(|b| b.fused.iter())
            .filter(|op| op.n == 2)
            .count()
    }

    /// Number of inline-cached TDM base sites (one per static
    /// LOAD/STORE occurrence).
    pub fn inline_cache_sites(&self) -> usize {
        self.code.sites
    }

    /// Runs until halt or until `max_steps` instructions have executed.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] if the budget is exhausted, plus any fault
    /// from stepping.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, SimError> {
        let summary = Core::run_for(self, Budget::Steps(max_steps))?;
        match summary.halt {
            Some(halt) => Ok(RunResult {
                instructions: self.instructions,
                halt,
            }),
            None => Err(SimError::Timeout { limit: max_steps }),
        }
    }

    fn convert_fault(&self, fault: Fault) -> SimError {
        match fault {
            Fault::Mem { pc, cause, .. } => SimError::MemoryFault { pc, cause },
            Fault::Wild { target, .. } => SimError::PcOutOfRange {
                at: self.instructions,
                pc: target,
                tim_size: self.code.text.len(),
            },
        }
    }

    /// Precise single-instruction step through the unfused compiled
    /// ops: the budget tail, mid-block entry (after restore or a wild
    /// landing), and [`Core::step`] when no observers are attached.
    fn step_ops(&mut self) -> Result<Option<HaltReason>, SimError> {
        if let Some(reason) = self.halted {
            return Ok(Some(reason));
        }
        let code = Arc::clone(&self.code);
        let len = code.text.len();
        let pc = self.state.pc;
        if pc == len {
            self.halted = Some(HaltReason::FellOffEnd);
            return Ok(Some(HaltReason::FellOffEnd));
        }
        let op = &code.ops[pc];
        self.instructions += 1;
        self.mix[op.opcode as usize] += 1;
        let (step, fault) = {
            let mut m = Machine {
                state: &mut self.state,
                icache: &mut self.icache,
                text_len: len,
                fault: None,
            };
            let s = (op.exec)(&mut m, op);
            (s, m.fault)
        };
        match step {
            Step::Next => {
                let next = pc + 1;
                self.state.pc = next;
                if next == len {
                    self.halted = Some(HaltReason::FellOffEnd);
                    Ok(Some(HaltReason::FellOffEnd))
                } else {
                    Ok(None)
                }
            }
            Step::Jump(next) => {
                self.state.pc = next as usize;
                Ok(None)
            }
            Step::Halt(reason, final_pc) => {
                self.state.pc = final_pc as usize;
                self.halted = Some(reason);
                Ok(Some(reason))
            }
            Step::Fault => Err(self.convert_fault(fault.expect("fault parked"))),
        }
    }

    /// Runs one whole superblock through its fused sequence — no
    /// per-instruction budget/halt checks, counters settled once at the
    /// end. The caller guarantees `state.pc` is this block's head and
    /// the remaining budget covers `block.len`.
    /// The block-dispatch hot loop: executes whole superblocks for as
    /// long as the remaining budget covers the next one. The PC, the
    /// budget countdown and the step count live in locals (and the
    /// [`Machine`] is constructed once), so block-to-block transfers
    /// cost no memory round-trips through `self`.
    ///
    /// Returns the halt reason if the machine halted, or `None` when it
    /// stopped because the fast path cannot continue — a mid-block PC
    /// (e.g. a dynamic JALR landing) or a budget smaller than the next
    /// block — in which case the caller falls back to precise stepping.
    fn run_fast(
        &mut self,
        steps: &mut u64,
        remaining: &mut u64,
    ) -> Result<Option<HaltReason>, SimError> {
        let code = Arc::clone(&self.code);
        let text_len = code.text.len();
        let mut retired = 0u64;
        let mut halt = None;
        let mut failed: Option<(u32, usize)> = None;
        let mut fault = None;
        {
            let mut m = Machine {
                state: &mut self.state,
                icache: &mut self.icache,
                text_len,
                fault: None,
            };
            let mut pc = m.state.pc;
            'blocks: while pc < code.block_idx.len() {
                let bi = code.block_idx[pc];
                if bi == u32::MAX {
                    // Mid-block landing (a dynamic JALR target that
                    // isn't a static head): dispatch the unfused tail
                    // of the covering block, then rejoin fused block
                    // dispatch at the next head. Accounting is per-op
                    // here — the deferred block counters only describe
                    // whole-block executions.
                    let block = &code.blocks[code.block_of[pc] as usize];
                    let end = block.start + block.len;
                    if (end - pc) as u64 > *remaining {
                        break;
                    }
                    let ops = &code.ops[pc..end];
                    let mut taken = Step::Next;
                    let mut executed = ops.len();
                    for (k, op) in ops.iter().enumerate() {
                        match (op.exec)(&mut m, op) {
                            Step::Next => {}
                            Step::Fault => {
                                executed = k + 1;
                                fault = m.fault.take();
                                break;
                            }
                            s => {
                                executed = k + 1;
                                taken = s;
                                break;
                            }
                        }
                    }
                    // Accounting settles once per tail run (the op
                    // slice is still cache-hot); a faulting op counts
                    // as retired, matching the functional backend.
                    retired += executed as u64;
                    *steps += executed as u64;
                    *remaining -= executed as u64;
                    for op in &ops[..executed] {
                        self.mix[op.opcode as usize] += 1;
                    }
                    if fault.is_some() {
                        break 'blocks;
                    }
                    match taken {
                        Step::Next => match block.exit {
                            BlockExit::Seq(next) => pc = next,
                            BlockExit::OffEnd => {
                                pc = text_len;
                                halt = Some(HaltReason::FellOffEnd);
                                break;
                            }
                            BlockExit::Terminator => {
                                unreachable!("terminator fell through")
                            }
                        },
                        Step::Jump(next) => pc = next as usize,
                        Step::Halt(reason, final_pc) => {
                            pc = final_pc as usize;
                            halt = Some(reason);
                            break;
                        }
                        Step::Fault => unreachable!("fault breaks the block loop"),
                    }
                    continue;
                }
                let block = &code.blocks[bi as usize];
                let blen = block.len as u64;
                if blen > *remaining {
                    break;
                }
                let mut taken = Step::Next;
                for op in &block.fused {
                    match (op.exec)(&mut m, op) {
                        Step::Next => {}
                        Step::Fault => {
                            // The op's index is recovered from the
                            // reference offset — only this cold path
                            // pays for it, not the hot loop.
                            let base = block.fused.as_ptr() as usize;
                            let i = (op as *const Op as usize - base) / std::mem::size_of::<Op>();
                            failed = Some((bi, i));
                            fault = m.fault.take();
                            break 'blocks;
                        }
                        s => {
                            taken = s;
                            break; // only the terminator transfers
                        }
                    }
                }
                // Mix accounting is deferred: one counter bump per
                // block, the sparse per-opcode counts are folded in
                // lazily by `full_mix`.
                retired += blen;
                *steps += blen;
                *remaining -= blen;
                self.block_execs[bi as usize] += 1;
                match taken {
                    Step::Next => match block.exit {
                        BlockExit::Seq(next) => pc = next,
                        BlockExit::OffEnd => {
                            pc = text_len;
                            halt = Some(HaltReason::FellOffEnd);
                            break;
                        }
                        // A terminator op always yields Jump or Halt.
                        BlockExit::Terminator => unreachable!("terminator fell through"),
                    },
                    Step::Jump(next) => pc = next as usize,
                    Step::Halt(reason, final_pc) => {
                        pc = final_pc as usize;
                        halt = Some(reason);
                        break;
                    }
                    Step::Fault => unreachable!("fault breaks the block loop"),
                }
            }
            m.state.pc = pc;
        }
        self.instructions += retired;
        if let Some(fault) = fault {
            // A fused-block fault needs its partial block settled
            // precisely: every fused op before the fault in full, plus
            // however many of the faulting op's components retired
            // (the faulting instruction counts as retired, matching
            // the functional backend). A tail fault was already
            // accounted per-op.
            if let Some((bi, i)) = failed {
                let block = &code.blocks[bi as usize];
                for done in &block.fused[..i] {
                    self.instructions += done.n as u64;
                    self.mix[done.opcode as usize] += 1;
                    if done.n == 2 {
                        self.mix[done.opcode2 as usize] += 1;
                    }
                }
                let at = &block.fused[i];
                let partial = match &fault {
                    Fault::Mem { retired, .. } => *retired,
                    Fault::Wild { .. } => at.n,
                };
                self.instructions += partial as u64;
                self.mix[at.opcode as usize] += 1;
                if partial == 2 {
                    self.mix[at.opcode2 as usize] += 1;
                }
            }
            self.state.pc = match &fault {
                Fault::Mem { pc, .. } => *pc,
                Fault::Wild { at_pc, .. } => *at_pc as usize,
            };
            return Err(self.convert_fault(fault));
        }
        if let Some(reason) = halt {
            self.halted = Some(reason);
        }
        Ok(halt)
    }

    /// The observer-visible interpreter: a mirror of
    /// `FunctionalSim::step` (same event order, same fault points) used
    /// whenever observers are attached, so the observer contract holds
    /// bit-for-bit across backends.
    fn step_interp(&mut self) -> Result<Option<HaltReason>, SimError> {
        if let Some(reason) = self.halted {
            return Ok(Some(reason));
        }
        let text = Arc::clone(&self.code.text);
        let links = Arc::clone(&self.code.links);
        let pc = self.state.pc;
        if pc == text.len() {
            self.halted = Some(HaltReason::FellOffEnd);
            self.observers
                .halt(HaltReason::FellOffEnd, self.instructions);
            return Ok(Some(HaltReason::FellOffEnd));
        }
        let instr = text[pc];
        self.instructions += 1;
        self.mix[instr.opcode()] += 1;

        let (a_val, b_val) = operand_values(&instr, &self.state);
        let result = talu(&instr, a_val, b_val, links[pc]);
        let old_reg = instr.writes().map(|dest| self.state.reg(dest));
        let mut mem_write = None;

        use Instruction::*;
        match instr {
            Load { a, .. } => {
                let v = self
                    .state
                    .tdm
                    .read_word_addr(result)
                    .map_err(|cause| SimError::MemoryFault { pc, cause })?;
                self.state.set_reg(a, v);
                let address = self.state.tdm.resolve(result).expect("read succeeded");
                self.observers.memory(&MemoryAccess {
                    pc,
                    address,
                    value: v,
                    is_write: false,
                });
            }
            Store { .. } => {
                let old_cell = self.state.tdm.read_word_addr(result).ok();
                self.state
                    .tdm
                    .write_word_addr(result, a_val)
                    .map_err(|cause| SimError::MemoryFault { pc, cause })?;
                let address = self.state.tdm.resolve(result).expect("write succeeded");
                self.observers.memory(&MemoryAccess {
                    pc,
                    address,
                    value: a_val,
                    is_write: true,
                });
                mem_write = Some(MemWrite {
                    address,
                    old: old_cell.expect("write succeeded"),
                    new: a_val,
                });
            }
            _ => {
                if let Some(dest) = instr.writes() {
                    self.state.set_reg(dest, result);
                }
            }
        }

        let lst = b_val.lst();
        let (next, taken) = match control_target(&instr, pc, lst, b_val) {
            Some(target) => {
                if target < 0 || target as usize > text.len() {
                    return Err(SimError::PcOutOfRange {
                        at: self.instructions,
                        pc: target,
                        tim_size: text.len(),
                    });
                }
                (target as usize, true)
            }
            None => (pc + 1, false),
        };

        if instr.is_control_flow() {
            self.observers.control(pc, &instr, taken, next);
        }
        self.observers.writeback(&Writeback {
            pc,
            instr,
            reg: instr.writes().map(|dest| RegWrite {
                reg: dest,
                old: old_reg.expect("captured above"),
                new: self.state.reg(dest),
            }),
            mem: mem_write,
            bus: result,
        });
        self.observers.retire(pc, &instr, &self.state);

        let halt = if next == pc {
            Some(HaltReason::JumpToSelf)
        } else if next == text.len() {
            self.state.pc = next;
            Some(HaltReason::FellOffEnd)
        } else {
            self.state.pc = next;
            None
        };
        if let Some(reason) = halt {
            self.halted = Some(reason);
            self.observers.halt(reason, self.instructions);
        }
        Ok(halt)
    }
}

impl Core for ThreadedSim {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn step(&mut self) -> Result<Option<HaltReason>, SimError> {
        if self.observers.is_empty() {
            self.step_ops()
        } else {
            self.step_interp()
        }
    }

    fn run_for(&mut self, budget: Budget) -> Result<RunSummary, SimError> {
        let mut steps = 0u64;
        // Steps and retired instructions advance in lockstep (every
        // architectural instruction is one step), so either budget
        // collapses to a single countdown computed once up front.
        let mut remaining = match budget {
            Budget::Steps(n) => n,
            Budget::Retired(n) => n.saturating_sub(self.instructions),
        };
        loop {
            if let Some(halt) = self.halted {
                return Ok(RunSummary {
                    steps,
                    retired: self.instructions,
                    halt: Some(halt),
                });
            }
            if remaining == 0 {
                return Ok(RunSummary {
                    steps,
                    retired: self.instructions,
                    halt: None,
                });
            }
            let halt = if self.observers.is_empty() {
                // Whole superblocks — and unfused block tails after a
                // dynamic mid-block landing — while the budget covers
                // them (the only budget checks are at those
                // boundaries)…
                let halt = self.run_fast(&mut steps, &mut remaining)?;
                if halt.is_some() {
                    return Ok(RunSummary {
                        steps,
                        retired: self.instructions,
                        halt,
                    });
                }
                if remaining == 0 {
                    continue;
                }
                // …then one precise step: the budget is smaller than
                // the next dispatch unit (the budget tail).
                let halt = self.step_ops()?;
                steps += 1;
                remaining -= 1;
                halt
            } else {
                let halt = self.step_interp()?;
                steps += 1;
                remaining -= 1;
                halt
            };
            if halt.is_some() {
                return Ok(RunSummary {
                    steps,
                    retired: self.instructions,
                    halt,
                });
            }
        }
    }

    fn state(&self) -> &CoreState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut CoreState {
        &mut self.state
    }

    fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    fn retired(&self) -> u64 {
        self.instructions
    }

    fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
        ThreadedSim::instruction_mix(self)
    }

    fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            backend: Backend::Threaded,
            text_len: self.code.text.len(),
            state: self.state.clone(),
            retired: self.instructions,
            halted: self.halted,
            mix: self.full_mix(),
            micro: Micro::Architectural,
        }
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), SimError> {
        checkpoint.guard(Backend::Threaded, self.code.text.len())?;
        self.state = checkpoint.state.clone();
        self.instructions = checkpoint.retired;
        self.halted = checkpoint.halted;
        self.mix = checkpoint.mix;
        // The restored mix is fully materialized, so the deferred
        // block counters start over from zero.
        self.block_execs.fill(0);
        // The inline caches are keyed purely on base-word values, so
        // stale entries stay correct across a restore.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::SimBuilder;
    use art9_isa::assemble;

    fn pair(src: &str) -> (crate::FunctionalSim, ThreadedSim) {
        let p = assemble(src).unwrap();
        let b = SimBuilder::new(&p);
        (b.build_functional(), b.build_threaded())
    }

    const COUNTDOWN: &str = "LI t3, 10\nLI t4, 0\nloop:\nADD t4, t3\nADDI t3, -1\n\
                             MV t7, t3\nCOMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n";

    #[test]
    fn countdown_matches_functional_exactly() {
        let (mut f, mut t) = pair(COUNTDOWN);
        f.run(1_000_000).unwrap();
        t.run(1_000_000).unwrap();
        assert_eq!(t.state().reg(TReg::T4).to_i64(), 55);
        assert_eq!(t.halted(), Some(HaltReason::JumpToSelf));
        assert_eq!(f.state().first_difference(t.state()), None);
        assert_eq!(f.state().pc, t.state().pc);
        assert_eq!(f.instructions(), t.instructions());
        assert_eq!(f.instruction_mix(), t.instruction_mix());
    }

    #[test]
    fn fused_hot_path_and_precise_stepping_agree() {
        // Whole-run fused execution vs pure step() must retire the same
        // counts, mix and state.
        let p = assemble(COUNTDOWN).unwrap();
        let b = SimBuilder::new(&p);
        let mut hot = b.build_threaded();
        hot.run(1_000_000).unwrap();
        let mut precise = b.build_threaded();
        while Core::step(&mut precise).unwrap().is_none() {}
        assert_eq!(hot.state().first_difference(precise.state()), None);
        assert_eq!(hot.state().pc, precise.state().pc);
        assert_eq!(hot.instructions(), precise.instructions());
        assert_eq!(hot.instruction_mix(), precise.instruction_mix());
        assert!(hot.fused_pairs() > 0, "countdown loop has fusable pairs");
    }

    #[test]
    fn budget_cuts_are_exact_even_mid_block() {
        let p = assemble(COUNTDOWN).unwrap();
        let b = SimBuilder::new(&p);
        for cut in 0..30u64 {
            let mut sim = b.build_threaded();
            let summary = Core::run_for(&mut sim, Budget::Steps(cut)).unwrap();
            if summary.halt.is_none() {
                assert_eq!(sim.instructions(), cut, "steps budget is exact");
                assert_eq!(summary.steps, cut);
            }
            let mut sim = b.build_threaded();
            let summary = Core::run_for(&mut sim, Budget::Retired(cut)).unwrap();
            if summary.halt.is_none() {
                assert_eq!(sim.instructions(), cut, "retired budget is exact");
            }
            // Resuming after any cut still finishes identically.
            let mut rest = b.build_functional();
            rest.run(1_000_000).unwrap();
            let mut sliced = b.build_threaded();
            Core::run_for(&mut sliced, Budget::Steps(cut)).unwrap();
            Core::run_for(&mut sliced, Budget::Steps(1_000_000)).unwrap();
            assert_eq!(rest.state().first_difference(sliced.state()), None);
            assert_eq!(rest.instructions(), sliced.instructions());
        }
    }

    #[test]
    fn load_store_uses_the_inline_cache() {
        let src = "
            .data
            v: .word 41, 0
            .text
            LI t2, 0
            LOAD t3, t2, 0
            ADDI t3, 1
            STORE t3, t2, 1
            LOAD t4, t2, 1
            JAL t0, 0
        ";
        let (mut f, mut t) = pair(src);
        f.run(1_000).unwrap();
        t.run(1_000).unwrap();
        assert_eq!(t.state().reg(TReg::T4).to_i64(), 42);
        assert_eq!(t.inline_cache_sites(), 3);
        assert_eq!(f.state().first_difference(t.state()), None);
    }

    #[test]
    fn memory_fault_matches_functional() {
        let src = "LI t2, 121\nLUI t2, 40\nLOAD t3, t2, 0\n";
        let (mut f, mut t) = pair(src);
        let fe = f.run(100).unwrap_err();
        let te = t.run(100).unwrap_err();
        assert_eq!(fe, te);
        assert_eq!(f.instructions(), t.instructions());
        assert_eq!(f.state().pc, t.state().pc);
    }

    #[test]
    fn wild_jump_matches_functional() {
        let src = "LI t2, 121\nJALR t0, t2, 0\n";
        let (mut f, mut t) = pair(src);
        let fe = f.run(100).unwrap_err();
        let te = t.run(100).unwrap_err();
        assert_eq!(fe, te);
        assert_eq!(f.instructions(), t.instructions());
    }

    #[test]
    fn inline_cache_hits_in_a_loop_match_functional() {
        // The same static LOAD/STORE site executes five times with a
        // constant base: one cold miss, then four cache hits. The hit
        // path must read/write the exact words the full ternary resolve
        // would.
        let src = "
            LI t3, 5
            LI t2, 100
        loop:
            LOAD t4, t2, 1
            ADDI t4, 1
            STORE t4, t2, 1
            ADDI t3, -1
            MV t7, t3
            COMP t7, t0
            BEQ t7, +, loop
            JAL t0, 0
        ";
        let (mut f, mut t) = pair(src);
        f.run(10_000).unwrap();
        t.run(10_000).unwrap();
        assert_eq!(t.state().tdm.read(101).unwrap().to_i64(), 5);
        assert_eq!(f.state().first_difference(t.state()), None);
        assert_eq!(f.instruction_mix(), t.instruction_mix());
    }

    #[test]
    fn empty_program_halts_cleanly() {
        let image = PredecodedProgram::from_tim_image(&[], &[]).unwrap();
        let mut sim = SimBuilder::new(&image).build_threaded();
        assert_eq!(Core::step(&mut sim).unwrap(), Some(HaltReason::FellOffEnd));
        assert_eq!(sim.instructions(), 0);
        let summary = Core::run_for(&mut sim, Budget::Steps(10)).unwrap();
        assert_eq!(summary.halt, Some(HaltReason::FellOffEnd));
    }

    #[test]
    fn superblocks_partition_the_text() {
        let p = assemble(COUNTDOWN).unwrap();
        let sim = SimBuilder::new(&p).build_threaded();
        let blocks = sim.superblocks();
        // Blocks tile [0, len) without gaps or overlaps.
        let mut next = 0usize;
        for (start, len) in &blocks {
            assert_eq!(*start, next);
            assert!(*len > 0);
            next = start + len;
        }
        assert_eq!(next, p.text().len());
    }

    #[test]
    fn shift_immediates_compile_to_constant_shifts() {
        // SLI/SRI with positive and negative amounts (negative reverses
        // direction) against the shared `shift` semantics.
        let src = "LI t3, 10\nSLI t3, 2\nSRI t3, 1\nMV t4, t3\nSLI t4, -1\nJAL t0, 0\n";
        let (mut f, mut t) = pair(src);
        f.run(100).unwrap();
        t.run(100).unwrap();
        assert_eq!(f.state().first_difference(t.state()), None);
    }
}
