//! Decode-once program images shared across simulator instances.
//!
//! An ART-9 core fetches 9-trit TIM words and decodes them in ID every
//! cycle; a software simulator has no reason to. [`PredecodedProgram`]
//! decodes every TIM word exactly once into a dense instruction vector,
//! precomputes the per-PC link values (`PC + 1` as a [`Word9`], the
//! JAL/JALR link every [`crate::talu`] call needs), and hands both out
//! behind `Arc`s — so any number of [`FunctionalSim`](crate::FunctionalSim)
//! and [`PipelinedSim`](crate::PipelinedSim) instances (across threads)
//! fetch from the same image with no per-simulator copy and no
//! per-step decode or conversion work.
//!
//! The batch driver (`workloads::batch::BatchRunner`) builds one
//! predecoded image per workload in its prepare stage and shares it
//! across every simulator configuration of the run matrix.

use std::sync::{Arc, OnceLock};

use art9_isa::{decode, Instruction, IsaError, Program};
use ternary::Word9;

use crate::threaded::ThreadedCode;

/// An ART-9 program decoded once into simulator-ready form.
///
/// Cloning is O(1): the instruction image, the link table and the data
/// image are all behind `Arc`s, which is what lets a batch run share
/// one decode across its whole simulator matrix.
///
/// # Examples
///
/// Build once, run under any backend without re-decoding (the builder
/// shares the image by `Arc`):
///
/// ```
/// use art9_isa::assemble;
/// use art9_sim::{Backend, Budget, Core, PredecodedProgram, SimBuilder};
///
/// let program = assemble("LI t3, 41\nADDI t3, 1\nJAL t0, 0\n")?;
/// let image = PredecodedProgram::new(&program);
///
/// let builder = SimBuilder::new(&image);
/// let mut fast = builder.build();
/// fast.run_for(Budget::Steps(1_000))?;
/// let mut timed = builder.clone().backend(Backend::Pipelined).build();
/// timed.run_for(Budget::Steps(1_000))?;
///
/// assert_eq!(fast.state().trf, timed.state().trf);
/// assert_eq!(fast.state().reg("t3".parse()?).to_i64(), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PredecodedProgram {
    text: Arc<[Instruction]>,
    links: Arc<[Word9]>,
    data: Arc<[Word9]>,
    /// Direct-threaded compilation of this image, filled on the first
    /// `build_threaded` and shared (the cell itself is behind an `Arc`,
    /// so every clone of the image sees one compilation).
    threaded: Arc<OnceLock<Arc<ThreadedCode>>>,
}

impl PredecodedProgram {
    /// Predecodes an assembled [`Program`] (whose text is already a
    /// decoded instruction list — this builds the shared image and the
    /// link table around it).
    pub fn new(program: &Program) -> Self {
        Self::from_parts(program.text().to_vec(), program.data().to_vec())
    }

    /// Decodes a raw TIM word image — e.g. one loaded from an FPGA
    /// `.mif` — exactly once, together with its initial TDM image.
    ///
    /// # Errors
    ///
    /// Propagates the first [`IsaError`] from an undecodable word.
    ///
    /// # Examples
    ///
    /// ```
    /// use art9_isa::assemble;
    /// use art9_sim::PredecodedProgram;
    ///
    /// let program = assemble("LI t3, 7\nJAL t0, 0\n")?;
    /// let image = PredecodedProgram::from_tim_image(&program.tim_image(), &[])?;
    /// assert_eq!(image.text(), program.text());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_tim_image(tim: &[Word9], data: &[Word9]) -> Result<Self, IsaError> {
        let text = tim
            .iter()
            .map(|w| decode(*w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_parts(text, data.to_vec()))
    }

    fn from_parts(text: Vec<Instruction>, data: Vec<Word9>) -> Self {
        let links: Vec<Word9> = (0..text.len())
            .map(|pc| Word9::from_i64_wrapping(pc as i64 + 1))
            .collect();
        Self {
            text: text.into(),
            links: links.into(),
            data: data.into(),
            threaded: Arc::new(OnceLock::new()),
        }
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// `true` when the image holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The decoded instruction sequence (TIM contents, in order).
    pub fn text(&self) -> &[Instruction] {
        &self.text
    }

    /// The initial TDM image.
    pub fn data(&self) -> &[Word9] {
        &self.data
    }

    /// Content hash of the image (FNV-1a over the encoded TIM words
    /// and the initial TDM words). Two programs hash equal exactly
    /// when their instruction text and initial data are identical, so
    /// a cache keyed on this value holds **one image per distinct
    /// program** however many sessions submit it — the multi-tenant
    /// analogue of the per-image `OnceLock` threaded-code cache.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: i64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        };
        eat(self.text.len() as i64);
        for instr in self.text.iter() {
            eat(art9_isa::encode(instr).to_i64());
        }
        for word in self.data.iter() {
            eat(word.to_i64());
        }
        h
    }

    /// Shared handle to the instruction image (O(1) clone).
    pub(crate) fn text_arc(&self) -> Arc<[Instruction]> {
        Arc::clone(&self.text)
    }

    /// Shared handle to the per-PC link table (O(1) clone).
    pub(crate) fn links_arc(&self) -> Arc<[Word9]> {
        Arc::clone(&self.links)
    }

    /// The direct-threaded compilation of this image, compiled exactly
    /// once however many `ThreadedSim`s are built from it (or from its
    /// clones).
    pub(crate) fn threaded_code(&self) -> Arc<ThreadedCode> {
        Arc::clone(
            self.threaded
                .get_or_init(|| Arc::new(ThreadedCode::compile(self))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_isa::assemble;

    #[test]
    fn new_matches_program_text_and_data() {
        let p = assemble(".data\nv: .word 3, 4\n.text\nLI t3, 1\nJAL t0, 0\n").unwrap();
        let pd = PredecodedProgram::new(&p);
        assert_eq!(pd.text(), p.text());
        assert_eq!(pd.data(), p.data());
        assert_eq!(pd.len(), 2);
        assert!(!pd.is_empty());
    }

    #[test]
    fn from_tim_image_decodes_once() {
        let p = assemble("LI t3, 7\nADD t3, t4\nSTORE t3, t2, 1\n").unwrap();
        let pd = PredecodedProgram::from_tim_image(&p.tim_image(), p.data()).unwrap();
        assert_eq!(pd.text(), p.text());
    }

    #[test]
    fn link_table_holds_pc_plus_one() {
        let p = assemble("NOP\nNOP\nNOP\n").unwrap();
        let pd = PredecodedProgram::new(&p);
        for pc in 0..pd.len() {
            assert_eq!(pd.links_arc()[pc].to_i64(), pc as i64 + 1);
        }
    }

    #[test]
    fn clones_share_storage() {
        let p = assemble("NOP\nJAL t0, 0\n").unwrap();
        let pd = PredecodedProgram::new(&p);
        let clone = pd.clone();
        assert!(Arc::ptr_eq(&pd.text, &clone.text));
        assert!(Arc::ptr_eq(&pd.data, &clone.data));
    }

    #[test]
    fn content_hash_tracks_text_and_data() {
        let a = PredecodedProgram::new(&assemble("LI t3, 1\nJAL t0, 0\n").unwrap());
        let same = PredecodedProgram::new(&assemble("LI t3, 1\nJAL t0, 0\n").unwrap());
        assert_eq!(a.content_hash(), same.content_hash());
        // A different instruction, different data, or a length change
        // all move the hash.
        let text = PredecodedProgram::new(&assemble("LI t3, 2\nJAL t0, 0\n").unwrap());
        assert_ne!(a.content_hash(), text.content_hash());
        let data = PredecodedProgram::new(
            &assemble(".data\nv: .word 9\n.text\nLI t3, 1\nJAL t0, 0\n").unwrap(),
        );
        assert_ne!(a.content_hash(), data.content_hash());
        let longer = PredecodedProgram::new(&assemble("LI t3, 1\nNOP\nJAL t0, 0\n").unwrap());
        assert_ne!(a.content_hash(), longer.content_hash());
    }

    #[test]
    fn empty_program() {
        let pd = PredecodedProgram::from_tim_image(&[], &[]).unwrap();
        assert!(pd.is_empty());
        assert_eq!(pd.len(), 0);
    }
}
