//! The cycle-accurate 5-stage pipeline model of the ART-9 core
//! (paper Fig. 4 and §IV-B).
//!
//! Stages: **IF** (fetch from TIM), **ID** (main decoder, TRF read,
//! hazard detection unit, branch-target calculator + condition checker),
//! **EX** (TALU with forwarding multiplexers), **MEM** (TDM access),
//! **WB** (TRF write).
//!
//! ## Timing model (matches the paper's stall claims)
//!
//! * Full forwarding into EX from the EX/MEM and MEM/WB pipeline
//!   registers, plus TRF write-through (a register written by WB is
//!   visible to ID in the same cycle).
//! * Branches and jumps resolve in **ID** with a dedicated target adder
//!   and 1-trit condition checker; condition/base operands forward into
//!   ID from the EX output (the paper's "forwarding one-trit values"),
//!   from EX/MEM and from WB write-through.
//! * Hardware stalls occur **only** for (paper §IV-B):
//!   1. load-use hazards — 1 stall when the consumer needs the value in
//!      EX; 2 stalls when a B-type consumer needs it already in ID;
//!   2. taken branches/jumps — exactly 1 squashed fetch.
//! * Not-taken branches cost nothing.
//!
//! The architectural results are property-tested to be identical to the
//! functional simulator on arbitrary programs; only the timing differs.

use std::sync::Arc;

use art9_isa::{Instruction, TReg};
use ternary::Word9;

use crate::checkpoint::{Checkpoint, Micro, PipelineMicro};
use crate::core::{run_loop, Backend, Budget, Core, RunSummary};
use crate::error::SimError;
use crate::exec::{control_target, talu};
use crate::functional::{CoreState, HaltReason};
use crate::observer::{MemWrite, MemoryAccess, ObserverSet, RegWrite, Writeback};
use crate::predecode::PredecodedProgram;
use crate::stats::PipelineStats;
use crate::trace::{CycleTrace, StageSnapshot};

/// An instruction in flight, with the address it was fetched from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Fetched {
    pub(crate) instr: Instruction,
    pub(crate) pc: usize,
}

/// ID/EX pipeline register payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct IdEx {
    pub(crate) instr: Instruction,
    pub(crate) pc: usize,
    pub(crate) a_val: Word9,
    pub(crate) b_val: Word9,
}

/// EX/MEM pipeline register payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ExMem {
    pub(crate) instr: Instruction,
    pub(crate) pc: usize,
    /// ALU result, spliced immediate, link value, or effective address.
    pub(crate) result: Word9,
    /// The datum a STORE carries.
    pub(crate) store_val: Word9,
}

/// MEM/WB pipeline register payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MemWb {
    pub(crate) instr: Instruction,
    pub(crate) pc: usize,
    pub(crate) value: Word9,
}

/// Observer-only side channel travelling in lockstep with [`MemWb`]:
/// the EX result-bus value (for LOADs `MemWb.value` holds the loaded
/// datum, not the bus) and the old/new TDM cell a STORE rewrote.
///
/// Deliberately *not* part of `MemWb`, whose layout the
/// `art9-checkpoint v1` text format serializes; like the trace buffer,
/// this is transient per-core state that a restore simply clears.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WbCarry {
    bus: Word9,
    mem: Option<MemWrite>,
}

/// The cycle-accurate pipelined ART-9 core.
///
/// # Examples
///
/// ```
/// use art9_isa::assemble;
/// use art9_sim::SimBuilder;
///
/// let program = assemble("
///     LI   t3, 4
/// loop:
///     ADDI t3, -1
///     MV   t7, t3
///     COMP t7, t0          ; t7 = sign(t3); presets the branch trit
///     BEQ  t7, +, loop
///     JAL  t0, 0
/// ")?;
///
/// let mut core = SimBuilder::new(&program).build_pipelined();
/// let stats = core.run(10_000)?;
/// assert_eq!(core.state().reg("t3".parse()?).to_i64(), 0);
/// // Taken branches cost one bubble each; CPI stays close to 1.
/// assert!(stats.cpi() < 2.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedSim {
    text: Arc<[Instruction]>,
    links: Arc<[Word9]>,
    state: CoreState,
    fetch_pc: usize,
    if_id: Option<Fetched>,
    id_ex: Option<IdEx>,
    ex_mem: Option<ExMem>,
    mem_wb: Option<MemWb>,
    wb_carry: Option<WbCarry>,
    stats: PipelineStats,
    halting: Option<HaltReason>,
    halted: Option<HaltReason>,
    trace: Option<Vec<CycleTrace>>,
    forwarding: bool,
    mix: [u64; Instruction::OPCODE_COUNT],
    observers: ObserverSet,
}

impl PipelinedSim {
    /// The one real constructor, reached through
    /// [`SimBuilder`](crate::SimBuilder).
    pub(crate) fn build(
        image: &PredecodedProgram,
        tdm_words: usize,
        forwarding: bool,
        trace: bool,
        observers: ObserverSet,
    ) -> Self {
        Self {
            text: image.text_arc(),
            links: image.links_arc(),
            state: CoreState::with_image(image.data(), tdm_words),
            fetch_pc: 0,
            if_id: None,
            id_ex: None,
            ex_mem: None,
            mem_wb: None,
            wb_carry: None,
            stats: PipelineStats::default(),
            halting: None,
            halted: None,
            trace: trace.then(Vec::new),
            forwarding,
            mix: [0; Instruction::OPCODE_COUNT],
            observers,
        }
    }

    /// Dynamic instruction mix: retired count per mnemonic.
    ///
    /// Counted through a flat per-opcode array in the WB stage; the map
    /// is assembled here, off the hot path.
    pub fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
        crate::core::mix_map(&self.mix)
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[CycleTrace]> {
        self.trace.as_deref()
    }

    /// Architectural state (TRF, TDM).
    pub fn state(&self) -> &CoreState {
        &self.state
    }

    /// Mutable architectural state, e.g. to preload registers.
    pub fn state_mut(&mut self) -> &mut CoreState {
        &mut self.state
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Whether (and why) the core has halted and drained.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Advances the core by one clock cycle.
    ///
    /// Returns `Ok(Some(reason))` once the pipeline has fully drained
    /// after a halt condition.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] from the MEM stage and
    /// [`SimError::PcOutOfRange`] from wild control transfers in ID.
    pub fn cycle(&mut self) -> Result<Option<HaltReason>, SimError> {
        if let Some(reason) = self.halted {
            return Ok(Some(reason));
        }
        self.stats.cycles += 1;

        // Register state at the start of this cycle (forwarding sources).
        let old_id_ex = self.id_ex;
        let old_ex_mem = self.ex_mem;
        let old_mem_wb = self.mem_wb;

        // ---- WB ------------------------------------------------------
        // Synchronous TRF write; write-through makes the value visible
        // to ID in this same cycle.
        let observing = !self.observers.is_empty();
        let carry = self.wb_carry.take();
        let wb_done: Option<(TReg, Word9)> = if let Some(wb) = old_mem_wb {
            self.stats.instructions += 1;
            self.mix[wb.instr.opcode()] += 1;
            let dest = wb.instr.writes();
            let old_reg = if observing {
                dest.map(|d| self.state.reg(d))
            } else {
                None
            };
            if let Some(d) = dest {
                self.state.set_reg(d, wb.value);
            }
            if observing {
                // A restore mid-flight clears the carry; fall back to the
                // WB value as the bus for that one instruction.
                let carry = carry.unwrap_or(WbCarry {
                    bus: wb.value,
                    mem: None,
                });
                self.observers.writeback(&Writeback {
                    pc: wb.pc,
                    instr: wb.instr,
                    reg: dest.map(|d| RegWrite {
                        reg: d,
                        old: old_reg.expect("captured above"),
                        new: self.state.reg(d),
                    }),
                    mem: carry.mem,
                    bus: carry.bus,
                });
                self.observers.retire(wb.pc, &wb.instr, &self.state);
            }
            dest.map(|d| (d, wb.value))
        } else {
            None
        };
        self.mem_wb = None;

        // ---- MEM -----------------------------------------------------
        if let Some(mem) = old_ex_mem {
            let mut mem_write = None;
            let value = match mem.instr {
                Instruction::Load { .. } => {
                    let v = self
                        .state
                        .tdm
                        .read_word_addr(mem.result)
                        .map_err(|cause| SimError::MemoryFault { pc: mem.pc, cause })?;
                    if observing {
                        let address = self.state.tdm.resolve(mem.result).expect("read succeeded");
                        self.observers.memory(&MemoryAccess {
                            pc: mem.pc,
                            address,
                            value: v,
                            is_write: false,
                        });
                    }
                    v
                }
                Instruction::Store { .. } => {
                    // Old cell value, read before the write so the write
                    // itself still produces the canonical fault.
                    let old_cell = if observing {
                        self.state.tdm.read_word_addr(mem.result).ok()
                    } else {
                        None
                    };
                    self.state
                        .tdm
                        .write_word_addr(mem.result, mem.store_val)
                        .map_err(|cause| SimError::MemoryFault { pc: mem.pc, cause })?;
                    if observing {
                        let address = self.state.tdm.resolve(mem.result).expect("write succeeded");
                        self.observers.memory(&MemoryAccess {
                            pc: mem.pc,
                            address,
                            value: mem.store_val,
                            is_write: true,
                        });
                        mem_write = Some(MemWrite {
                            address,
                            old: old_cell.expect("write succeeded"),
                            new: mem.store_val,
                        });
                    }
                    Word9::ZERO
                }
                _ => mem.result,
            };
            self.mem_wb = Some(MemWb {
                instr: mem.instr,
                pc: mem.pc,
                value,
            });
            if observing {
                self.wb_carry = Some(WbCarry {
                    bus: mem.result,
                    mem: mem_write,
                });
            }
        }
        self.ex_mem = None;

        // ---- EX ------------------------------------------------------
        // Forwarding mux: EX/MEM (non-load) then MEM/WB then RF value
        // captured at ID.
        let mut ex_result: Option<(Instruction, Word9)> = None;
        if let Some(ex) = old_id_ex {
            let forwarding = self.forwarding;
            let fwd = |reg: TReg, captured: Word9| -> Word9 {
                if !forwarding {
                    return captured;
                }
                if let Some(m) = &old_ex_mem {
                    if !matches!(
                        m.instr,
                        Instruction::Load { .. } | Instruction::Store { .. }
                    ) && m.instr.writes() == Some(reg)
                    {
                        return m.result;
                    }
                }
                if let Some(w) = &old_mem_wb {
                    if w.instr.writes() == Some(reg) {
                        return w.value;
                    }
                }
                captured
            };
            let (a_reg, b_reg) = source_regs(&ex.instr);
            let a_val = a_reg.map_or(ex.a_val, |r| fwd(r, ex.a_val));
            let b_val = b_reg.map_or(ex.b_val, |r| fwd(r, ex.b_val));
            let link = self.links[ex.pc]; // PC + 1, precomputed at decode time
            let result = talu(&ex.instr, a_val, b_val, link);
            let store_val = a_val; // STORE datum travels in the Ta path
            self.ex_mem = Some(ExMem {
                instr: ex.instr,
                pc: ex.pc,
                result,
                store_val,
            });
            ex_result = Some((ex.instr, result));
        }
        self.id_ex = None;

        // ---- ID ------------------------------------------------------
        // Hazard detection, TRF read (with write-through), branch
        // resolution.
        let mut stall = false;
        let mut redirect: Option<usize> = None;
        if let Some(fetched) = self.if_id {
            let instr = fetched.instr;

            // Value of a register as visible to ID this cycle:
            // EX output (this cycle) > EX/MEM > WB write-through > TRF.
            // Returns None when the value is still in flight (producer
            // is a LOAD that has not reached WB, or any producer when
            // forwarding is disabled).
            let forwarding = self.forwarding;
            let id_value = |reg: TReg| -> Option<Word9> {
                if let Some(ex) = &old_id_ex {
                    if ex.instr.writes() == Some(reg) {
                        if !forwarding {
                            return None;
                        }
                        return match ex.instr {
                            Instruction::Load { .. } => None,
                            _ => ex_result.map(|(_, v)| v),
                        };
                    }
                }
                if let Some(m) = &old_ex_mem {
                    if m.instr.writes() == Some(reg) {
                        if !forwarding {
                            return None;
                        }
                        return match m.instr {
                            Instruction::Load { .. } => None,
                            _ => Some(m.result),
                        };
                    }
                }
                if let Some((d, v)) = wb_done {
                    if d == reg {
                        return Some(v);
                    }
                }
                Some(self.state.reg(reg))
            };

            if instr.is_control_flow() {
                // B-type needs its source register already in ID.
                let needed = instr.reads();
                let mut operand: Option<Word9> = Some(Word9::ZERO);
                for r in &needed {
                    operand = id_value(*r);
                    if operand.is_none() {
                        break;
                    }
                }
                match operand {
                    None => {
                        stall = true;
                        self.stats.id_use_stalls += 1;
                    }
                    Some(b_val) => {
                        let lst = b_val.lst();
                        match control_target(&instr, fetched.pc, lst, b_val) {
                            Some(target) => {
                                if target < 0 || target as usize > self.text.len() {
                                    return Err(SimError::PcOutOfRange {
                                        at: self.stats.cycles,
                                        pc: target,
                                        tim_size: self.text.len(),
                                    });
                                }
                                self.stats.taken_transfers += 1;
                                if !self.observers.is_empty() {
                                    self.observers.control(
                                        fetched.pc,
                                        &instr,
                                        true,
                                        target as usize,
                                    );
                                }
                                if target as usize == fetched.pc {
                                    // Jump-to-self: halt request.
                                    self.halting = Some(HaltReason::JumpToSelf);
                                } else {
                                    redirect = Some(target as usize);
                                    self.stats.control_flush_bubbles += 1;
                                }
                                self.issue(fetched, b_val, b_val);
                            }
                            None => {
                                self.stats.untaken_branches += 1;
                                if !self.observers.is_empty() {
                                    self.observers.control(
                                        fetched.pc,
                                        &instr,
                                        false,
                                        fetched.pc + 1,
                                    );
                                }
                                self.issue(fetched, b_val, b_val);
                            }
                        }
                    }
                }
            } else {
                // EX-use hazard: LOAD in EX whose destination feeds us
                // (or, with forwarding disabled, any in-flight producer).
                let mut load_use = false;
                if let Some(ex) = &old_id_ex {
                    let hazard = matches!(ex.instr, Instruction::Load { .. }) || !self.forwarding;
                    if hazard {
                        if let Some(dest) = ex.instr.writes() {
                            if instr.reads().contains(&dest) {
                                load_use = true;
                            }
                        }
                    }
                }
                if !self.forwarding {
                    if let Some(m) = &old_ex_mem {
                        if let Some(dest) = m.instr.writes() {
                            if instr.reads().contains(&dest) {
                                load_use = true;
                            }
                        }
                    }
                }
                if load_use {
                    stall = true;
                    self.stats.load_use_stalls += 1;
                } else {
                    // TRF read with write-through; stale in-flight values
                    // are fine — the EX forwarding mux overrides them.
                    let (a_reg, b_reg) = source_regs(&instr);
                    let wt = |reg: TReg| -> Word9 {
                        if let Some((d, v)) = wb_done {
                            if d == reg {
                                return v;
                            }
                        }
                        self.state.reg(reg)
                    };
                    let a_val = a_reg.map_or(Word9::ZERO, wt);
                    let b_val = b_reg.map_or(Word9::ZERO, wt);
                    self.issue(fetched, a_val, b_val);
                }
            }
        }

        // ---- IF ------------------------------------------------------
        if !stall {
            self.if_id = None;
            if let Some(target) = redirect {
                // A taken branch/jump squashes the word fetched this
                // cycle; the target is fetched next cycle — the paper's
                // one-cycle stall after taken B-type instructions.
                self.fetch_pc = target;
                if self.halting == Some(HaltReason::FellOffEnd) {
                    // Fetch had speculatively run off the end; the
                    // redirect revives it.
                    self.halting = None;
                }
            } else if self.halting.is_none() {
                if self.fetch_pc < self.text.len() {
                    self.if_id = Some(Fetched {
                        instr: self.text[self.fetch_pc],
                        pc: self.fetch_pc,
                    });
                    self.fetch_pc += 1;
                } else {
                    // Fetch ran off the end; halt once the pipe drains.
                    self.halting = Some(HaltReason::FellOffEnd);
                }
            }
        }

        self.record_trace();

        // Drained after a halt condition?
        if self.halting.is_some()
            && self.if_id.is_none()
            && self.id_ex.is_none()
            && self.ex_mem.is_none()
            && self.mem_wb.is_none()
        {
            self.halted = self.halting;
            if let Some(reason) = self.halted {
                if !self.observers.is_empty() {
                    self.observers.halt(reason, self.stats.instructions);
                }
            }
            return Ok(self.halted);
        }
        Ok(None)
    }

    /// Moves a decoded instruction into the ID/EX register.
    fn issue(&mut self, fetched: Fetched, a_val: Word9, b_val: Word9) {
        self.id_ex = Some(IdEx {
            instr: fetched.instr,
            pc: fetched.pc,
            a_val,
            b_val,
        });
        self.if_id = None;
    }

    fn record_trace(&mut self) {
        let snapshot = CycleTrace {
            cycle: self.stats.cycles,
            if_stage: self.if_id.map(|f| StageSnapshot {
                pc: f.pc,
                instr: f.instr,
            }),
            ex_stage: self.id_ex.map(|e| StageSnapshot {
                pc: e.pc,
                instr: e.instr,
            }),
            mem_stage: self.ex_mem.map(|m| StageSnapshot {
                pc: m.pc,
                instr: m.instr,
            }),
            wb_stage: self.mem_wb.map(|w| StageSnapshot {
                pc: w.pc,
                instr: w.instr,
            }),
        };
        if let Some(t) = &mut self.trace {
            t.push(snapshot);
        }
    }

    /// Runs until the pipeline halts and drains, or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] when the cycle budget is exhausted, plus
    /// any fault from [`PipelinedSim::cycle`].
    pub fn run(&mut self, max_cycles: u64) -> Result<PipelineStats, SimError> {
        while self.stats.cycles < max_cycles {
            if self.cycle()?.is_some() {
                return Ok(self.stats);
            }
        }
        Err(SimError::Timeout { limit: max_cycles })
    }
}

impl Core for PipelinedSim {
    fn backend(&self) -> Backend {
        Backend::Pipelined
    }

    /// One step of the pipelined backend is one **clock cycle**.
    fn step(&mut self) -> Result<Option<HaltReason>, SimError> {
        self.cycle()
    }

    fn run_for(&mut self, budget: Budget) -> Result<RunSummary, SimError> {
        run_loop(self, budget)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut CoreState {
        &mut self.state
    }

    fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    fn retired(&self) -> u64 {
        self.stats.instructions
    }

    fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, u64> {
        PipelinedSim::instruction_mix(self)
    }

    fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            backend: Backend::Pipelined,
            text_len: self.text.len(),
            state: self.state.clone(),
            retired: self.stats.instructions,
            halted: self.halted,
            mix: self.mix,
            micro: Micro::Pipelined(Box::new(PipelineMicro {
                fetch_pc: self.fetch_pc,
                halting: self.halting,
                forwarding: self.forwarding,
                stats: self.stats,
                if_id: self.if_id,
                id_ex: self.id_ex,
                ex_mem: self.ex_mem,
                mem_wb: self.mem_wb,
            })),
        }
    }

    /// Restores the architectural state *and* the whole
    /// microarchitectural picture — fetch engine, all four latches,
    /// stall accounting, forwarding setting — so the resumed core is
    /// cycle-for-cycle identical to the snapshotted one. The trace
    /// buffer (if tracing is enabled) is not rewound: it records this
    /// core's own cycles only.
    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), SimError> {
        checkpoint.guard(Backend::Pipelined, self.text.len())?;
        let Micro::Pipelined(m) = &checkpoint.micro else {
            return Err(SimError::Checkpoint {
                detail: "pipelined checkpoint lacks its micro section".into(),
            });
        };
        self.state = checkpoint.state.clone();
        self.mix = checkpoint.mix;
        self.halted = checkpoint.halted;
        self.fetch_pc = m.fetch_pc;
        self.halting = m.halting;
        self.forwarding = m.forwarding;
        self.stats = m.stats;
        self.if_id = m.if_id;
        self.id_ex = m.id_ex;
        self.ex_mem = m.ex_mem;
        self.mem_wb = m.mem_wb;
        self.wb_carry = None;
        Ok(())
    }

    fn pipeline_stats(&self) -> Option<PipelineStats> {
        Some(self.stats)
    }

    fn trace(&self) -> Option<&[CycleTrace]> {
        PipelinedSim::trace(self)
    }
}

/// The `(Ta, Tb)` source registers an instruction reads, by operand slot.
fn source_regs(instr: &Instruction) -> (Option<TReg>, Option<TReg>) {
    use Instruction::*;
    match instr {
        Mv { b, .. } | Pti { b, .. } | Nti { b, .. } | Sti { b, .. } => (None, Some(*b)),
        And { a, b }
        | Or { a, b }
        | Xor { a, b }
        | Add { a, b }
        | Sub { a, b }
        | Sr { a, b }
        | Sl { a, b }
        | Comp { a, b } => (Some(*a), Some(*b)),
        Andi { a, .. } | Addi { a, .. } | Sri { a, .. } | Sli { a, .. } | Li { a, .. } => {
            (Some(*a), None)
        }
        Lui { .. } | Jal { .. } => (None, None),
        Beq { b, .. } | Bne { b, .. } | Jalr { b, .. } | Load { b, .. } => (None, Some(*b)),
        Store { a, b, .. } => (Some(*a), Some(*b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::SimBuilder;
    use art9_isa::assemble;

    fn run_pipe(src: &str) -> (PipelinedSim, PipelineStats) {
        let p = assemble(src).unwrap();
        let mut sim = SimBuilder::new(&p).build_pipelined();
        let stats = sim.run(1_000_000).unwrap();
        (sim, stats)
    }

    #[test]
    fn straight_line_cpi_near_one() {
        // 20 independent instructions + halt; fill = 4 cycles.
        let mut src = String::new();
        for i in 0..20 {
            src.push_str(&format!("LI t{}, {}\n", 3 + (i % 6), i));
        }
        src.push_str("JAL t0, 0\n");
        let (_, stats) = run_pipe(&src);
        assert_eq!(stats.instructions, 21);
        assert_eq!(stats.lost_cycles(), 0);
        // cycles = instructions + 4 (fill)
        assert_eq!(stats.cycles, 25);
    }

    #[test]
    fn alu_forwarding_avoids_stalls() {
        let (sim, stats) =
            run_pipe("LI t3, 1\nADDI t3, 1\nADDI t3, 1\nADD t4, t3\nADD t4, t3\nJAL t0, 0\n");
        assert_eq!(sim.state().reg(TReg::T3).to_i64(), 3);
        assert_eq!(sim.state().reg(TReg::T4).to_i64(), 6);
        assert_eq!(stats.load_use_stalls, 0);
        assert_eq!(stats.id_use_stalls, 0);
    }

    #[test]
    fn load_use_costs_one_stall() {
        let (sim, stats) = run_pipe(
            ".data\nv: .word 41\n.text\nLI t2, 0\nLOAD t3, t2, 0\nADDI t3, 1\nJAL t0, 0\n",
        );
        assert_eq!(sim.state().reg(TReg::T3).to_i64(), 42);
        assert_eq!(stats.load_use_stalls, 1);
    }

    #[test]
    fn load_then_independent_instr_no_stall() {
        let (sim, stats) = run_pipe(
            ".data\nv: .word 41\n.text\nLI t2, 0\nLOAD t3, t2, 0\nLI t5, 7\nADDI t3, 1\nJAL t0, 0\n",
        );
        assert_eq!(sim.state().reg(TReg::T3).to_i64(), 42);
        assert_eq!(sim.state().reg(TReg::T5).to_i64(), 7);
        assert_eq!(stats.load_use_stalls, 0);
    }

    #[test]
    fn taken_branch_costs_one_bubble() {
        let (_, stats) =
            run_pipe("LI t3, 0\nNOP\nNOP\nBEQ t3, 0, skip\nLI t4, 1\nskip:\nLI t5, 2\nJAL t0, 0\n");
        // BEQ taken (t3 LST == 0) and the final JAL-to-self halts without
        // a flush; only the BEQ flushes.
        assert_eq!(stats.control_flush_bubbles, 1);
    }

    #[test]
    fn untaken_branch_costs_nothing() {
        let (_, stats) =
            run_pipe("LI t3, 1\nNOP\nNOP\nBEQ t3, 0, skip\nLI t4, 1\nskip:\nLI t5, 2\nJAL t0, 0\n");
        assert_eq!(stats.control_flush_bubbles, 0);
        assert_eq!(stats.untaken_branches, 1);
    }

    #[test]
    fn comp_then_branch_forwards_condition() {
        // COMP immediately before BEQ: the 1-trit forward from EX lets
        // the branch resolve without stalling.
        let (sim, stats) = run_pipe(
            "
            LI t3, 5
            LI t4, 3
            COMP t3, t4
            BEQ t3, +, big
            LI t5, -1
            JAL t0, 0
            big:
            LI t5, 1
            JAL t0, 0
            ",
        );
        assert_eq!(sim.state().reg(TReg::T5).to_i64(), 1);
        assert_eq!(stats.id_use_stalls, 0);
    }

    #[test]
    fn load_then_branch_stalls_twice() {
        let (sim, stats) = run_pipe(
            "
            .data
            v: .word 0
            .text
            LI t2, 0
            LOAD t3, t2, 0
            BEQ t3, 0, out
            LI t4, -1
            out:
            LI t5, 9
            JAL t0, 0
            ",
        );
        assert_eq!(sim.state().reg(TReg::T5).to_i64(), 9);
        // Branch waits in ID while the load walks EX->MEM: 2 stalls.
        assert_eq!(stats.id_use_stalls, 2);
    }

    #[test]
    fn alu_then_dependent_branch_one_cycle_apart() {
        // Producer in MEM when branch in ID: forward from EX/MEM, no stall.
        let (_, stats) =
            run_pipe("LI t3, 0\nADDI t3, 0\nNOP\nBEQ t3, 0, out\nNOP\nout:\nJAL t0, 0\n");
        assert_eq!(stats.id_use_stalls, 0);
    }

    #[test]
    fn matches_functional_on_loop() {
        let src = "
            LI t3, 10
            LI t4, 0
            loop:
            ADD t4, t3
            ADDI t3, -1
            MV t7, t3
            COMP t7, t0
            BEQ t7, +, loop
            JAL t0, 0
        ";
        let p = assemble(src).unwrap();
        let mut f = SimBuilder::new(&p).build_functional();
        f.run(100_000).unwrap();
        let mut pipe = SimBuilder::new(&p).build_pipelined();
        let stats = pipe.run(100_000).unwrap();
        assert_eq!(pipe.state().trf, f.state().trf);
        assert_eq!(stats.instructions, f.instructions());
    }

    #[test]
    fn store_load_through_pipeline() {
        let (sim, _) = run_pipe(
            "
            LI t2, 10
            LI t3, 77
            STORE t3, t2, 0
            LOAD t4, t2, 0
            ADD t4, t4
            JAL t0, 0
            ",
        );
        assert_eq!(sim.state().reg(TReg::T4).to_i64(), 154);
    }

    #[test]
    fn fell_off_end_drains() {
        let (sim, stats) = run_pipe("LI t3, 1\nADDI t3, 1\n");
        assert_eq!(sim.halted(), Some(HaltReason::FellOffEnd));
        assert_eq!(sim.state().reg(TReg::T3).to_i64(), 2);
        assert_eq!(stats.instructions, 2);
    }

    #[test]
    fn trace_records_stage_occupancy() {
        let p = assemble("LI t3, 1\nADDI t3, 1\nJAL t0, 0\n").unwrap();
        let mut sim = SimBuilder::new(&p).trace(true).build_pipelined();
        sim.run(1000).unwrap();
        let trace = sim.trace().unwrap();
        assert!(!trace.is_empty());
        // First cycle: only IF occupied.
        assert!(trace[0].if_stage.is_some());
        assert!(trace[0].wb_stage.is_none());
    }

    #[test]
    fn disabling_forwarding_costs_cycles_not_correctness() {
        let src = "
            LI t3, 1
            ADDI t3, 1
            ADD t4, t3
            ADD t4, t3
            MV t7, t4
            COMP t7, t0
            BEQ t7, +, pos
            LI t5, -1
            JAL t0, 0
            pos:
            LI t5, 1
            JAL t0, 0
        ";
        let p = assemble(src).unwrap();
        let mut fast = SimBuilder::new(&p).build_pipelined();
        let s_fast = fast.run(10_000).unwrap();
        let mut slow = SimBuilder::new(&p).forwarding(false).build_pipelined();
        let s_slow = slow.run(10_000).unwrap();
        assert_eq!(fast.state().trf, slow.state().trf, "same architecture");
        assert!(
            s_slow.cycles > s_fast.cycles,
            "no-forwarding must stall: {} vs {}",
            s_slow.cycles,
            s_fast.cycles
        );
        assert_eq!(s_fast.load_use_stalls + s_fast.id_use_stalls, 0);
        assert!(s_slow.load_use_stalls + s_slow.id_use_stalls > 0);
    }

    #[test]
    fn memory_fault_propagates_pc() {
        let p = assemble("LI t2, 121\nLUI t2, 40\nLOAD t3, t2, 0\nJAL t0, 0\n").unwrap();
        let mut sim = SimBuilder::new(&p).build_pipelined();
        match sim.run(1000) {
            Err(SimError::MemoryFault { pc, .. }) => assert_eq!(pc, 2),
            other => panic!("expected MemoryFault, got {other:?}"),
        }
    }
}
