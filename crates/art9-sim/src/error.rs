//! Simulator error types.

use std::error::Error;
use std::fmt;

use art9_isa::IsaError;
use ternary::TernaryError;

/// Faults raised while simulating an ART-9 program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The program counter left the instruction memory (other than the
    /// clean fall-off-the-end halt).
    PcOutOfRange {
        /// The cycle or step at which the fault occurred.
        at: u64,
        /// The computed PC value.
        pc: i64,
        /// TIM size in words.
        tim_size: usize,
    },
    /// A data-memory access faulted.
    MemoryFault {
        /// Instruction address of the faulting LOAD/STORE.
        pc: usize,
        /// The underlying address error.
        cause: TernaryError,
    },
    /// The step/cycle budget was exhausted before the program halted.
    Timeout {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// An illegal instruction word reached the decoder.
    Decode(IsaError),
    /// A [`Checkpoint`](crate::Checkpoint) could not be parsed, or does
    /// not match the core it was restored into (wrong backend or wrong
    /// program shape).
    Checkpoint {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcOutOfRange { at, pc, tim_size } => {
                write!(f, "PC {pc} outside TIM of {tim_size} words (at {at})")
            }
            SimError::MemoryFault { pc, cause } => {
                write!(f, "memory fault at instruction {pc}: {cause}")
            }
            SimError::Timeout { limit } => {
                write!(f, "program did not halt within {limit} steps")
            }
            SimError::Decode(e) => write!(f, "{e}"),
            SimError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::MemoryFault { cause, .. } => Some(cause),
            SimError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(e: IsaError) -> Self {
        SimError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Timeout { limit: 100 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
