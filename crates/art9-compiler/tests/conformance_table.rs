//! Table-driven conformance: every RV32 instruction mapping, executed
//! against `rv32::Machine` semantics over corner operands.
//!
//! Three regimes, one table each:
//!
//! * **faithful** mappings must produce bit-identical results whenever
//!   operands and results fit the 9-trit window (the translation
//!   contract) — including the per-op edge cases: divide-by-zero (the
//!   RISC-V −1/dividend convention), the symmetric-range `−9841/−1`,
//!   shift-by-zero, and offset-folding loads/stores;
//! * **warned** mappings (bitwise ops as ternary min/max, unsigned as
//!   signed, shifts as multiply/divide) must emit their documented
//!   [`WarningKind`] — and where the semantic difference is conditional
//!   (e.g. `srai` on negatives truncates instead of flooring), the
//!   documented behaviour itself is asserted;
//! * **rejected** instructions (auipc, sub-word memory, dynamic
//!   shifts, `mulh*`, shift-by-31) must fail loudly with the right
//!   [`CompileError`] — never silently miscompile.

use art9_compiler::{translate, CompileError, Translation, WarningKind};
use art9_sim::{FunctionalSim, SimBuilder};
use rv32::{parse_program, Machine};

/// Corner operands: zero, ±1, the imm3/imm4/imm5 edges, and the
/// extremes of the 9-trit window.
const CORNERS: &[i64] = &[
    0, 1, -1, 2, -2, 13, -13, 14, 100, -100, 121, 3281, -3281, 9841, -9841,
];

const WINDOW: i64 = 9841;

fn run_both(src: &str) -> (Translation, FunctionalSim, Machine) {
    let rv = parse_program(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let t = translate(&rv).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut sim = SimBuilder::new(&t.program).build_functional();
    sim.run(2_000_000).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut m = Machine::new(&rv);
    m.run(2_000_000).unwrap_or_else(|e| panic!("{e}\n{src}"));
    (t, sim, m)
}

/// Asserts that register `name` agrees between the two machines, but
/// only when the RV32 value fits the ternary window (outside it the
/// contract makes no promise).
fn assert_reg(t: &Translation, sim: &FunctionalSim, m: &Machine, name: &str, ctx: &str) {
    let reg: rv32::Reg = name.parse().unwrap();
    let rv_val = m.reg(reg) as i32 as i64;
    if rv_val.abs() > WINDOW {
        return;
    }
    assert_eq!(
        t.read_rv_reg(sim.state(), reg),
        rv_val,
        "{name} diverged for {ctx}"
    );
}

#[test]
fn faithful_r_type_table() {
    // (mnemonic, needs-nonnegative-operands) — the unsigned forms map
    // to signed ternary ops, faithful exactly on the nonneg quadrant.
    let ops: &[(&str, bool)] = &[
        ("add", false),
        ("sub", false),
        ("slt", false),
        ("sltu", true),
        ("mul", false),
        ("div", false),
        ("divu", true),
        ("rem", false),
        ("remu", true),
    ];
    for (op, nonneg) in ops {
        for &a in CORNERS {
            for &b in CORNERS {
                if *nonneg && (a < 0 || b < 0) {
                    continue;
                }
                // Products outside the window are out of contract;
                // skip the whole combo (mul wraps differently).
                if *op == "mul" && (a * b).abs() > WINDOW {
                    continue;
                }
                let src = format!("li a0, {a}\nli a1, {b}\n{op} a2, a0, a1\nebreak\n");
                let (t, sim, m) = run_both(&src);
                let ctx = format!("{op} {a}, {b}");
                assert_reg(&t, &sim, &m, "a0", &ctx);
                assert_reg(&t, &sim, &m, "a1", &ctx);
                assert_reg(&t, &sim, &m, "a2", &ctx);
            }
        }
    }
}

#[test]
fn divide_by_zero_and_overflow_corners() {
    // RISC-V: x/0 = -1, x%0 = x; and the symmetric ternary range has
    // no MIN/-1 overflow case — -9841/-1 is exactly 9841.
    for a in [0i64, 1, -1, 9841, -9841] {
        let src = format!("li a0, {a}\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\nebreak\n");
        let (t, sim, m) = run_both(&src);
        let ctx = format!("{a} by zero");
        assert_reg(&t, &sim, &m, "a2", &ctx);
        assert_reg(&t, &sim, &m, "a3", &ctx);
    }
    let (t, sim, m) = run_both("li a0, -9841\nli a1, -1\ndiv a2, a0, a1\nebreak\n");
    assert_eq!(t.read_rv_reg(sim.state(), "a2".parse().unwrap()), 9841);
    assert_reg(&t, &sim, &m, "a2", "-9841 / -1");
}

#[test]
fn faithful_imm_table() {
    // addi over the imm3 / double-imm3 / constant-pool thresholds,
    // slti, and the seqz idiom (sltiu rd, rs, 1).
    for &a in CORNERS {
        for imm in [0i64, 1, -1, 13, -13, 14, -14, 26, -26, 27, 100, -100] {
            let src = format!("li a0, {a}\naddi a1, a0, {imm}\nslti a2, a0, {imm}\nebreak\n");
            let (t, sim, m) = run_both(&src);
            let ctx = format!("addi/slti {a}, {imm}");
            assert_reg(&t, &sim, &m, "a1", &ctx);
            assert_reg(&t, &sim, &m, "a2", &ctx);
        }
        let src = format!("li a0, {a}\nseqz a1, a0\nsnez a2, a0\nebreak\n");
        let (t, sim, m) = run_both(&src);
        let ctx = format!("seqz/snez {a}");
        assert_reg(&t, &sim, &m, "a1", &ctx);
        assert_reg(&t, &sim, &m, "a2", &ctx);
    }
}

#[test]
fn lui_table() {
    for hi in [-2i64, -1, 0, 1, 2] {
        let src = format!("lui a0, {hi}\nebreak\n");
        let (t, sim, m) = run_both(&src);
        assert_reg(&t, &sim, &m, "a0", &format!("lui {hi}"));
    }
    // Out-of-window lui is rejected, not wrapped.
    let rv = parse_program("lui a0, 3\nebreak\n").unwrap();
    assert!(matches!(
        translate(&rv),
        Err(CompileError::ConstantRange { .. })
    ));
}

#[test]
fn shift_left_table() {
    // slli ≤ 3 expands to doublings, 4..13 to a __mul call; both are
    // exact multiplications by 2^k whenever the result fits.
    for &a in CORNERS {
        for k in [0u32, 1, 2, 3, 5, 8, 13] {
            if (a << k).abs() > WINDOW {
                continue;
            }
            let src = format!("li a0, {a}\nslli a1, a0, {k}\nebreak\n");
            let (t, sim, m) = run_both(&src);
            assert_reg(&t, &sim, &m, "a1", &format!("slli {a}, {k}"));
        }
    }
    // Shift-by-31: 2^31 cannot be materialized — rejected.
    let rv = parse_program("slli a1, a0, 31\nebreak\n").unwrap();
    assert!(matches!(
        translate(&rv),
        Err(CompileError::ConstantRange { .. })
    ));
    let rv = parse_program("srai a1, a0, 31\nebreak\n").unwrap();
    assert!(matches!(
        translate(&rv),
        Err(CompileError::ConstantRange { .. })
    ));
}

#[test]
fn shift_right_table_nonnegative_and_documented_negative_difference() {
    // On nonnegative operands srli/srai equal division by 2^k exactly.
    for a in [0i64, 1, 2, 13, 100, 3281, 9841] {
        for k in [1u32, 2, 5] {
            let src = format!("li a0, {a}\nsrli a1, a0, {k}\nsrai a2, a0, {k}\nebreak\n");
            let (t, sim, m) = run_both(&src);
            let ctx = format!("sr {a}, {k}");
            assert_reg(&t, &sim, &m, "a1", &ctx);
            assert_reg(&t, &sim, &m, "a2", &ctx);
            let rv = parse_program(&src).unwrap();
            let t2 = translate(&rv).unwrap();
            assert!(
                t2.report
                    .warnings
                    .iter()
                    .any(|w| w.kind == WarningKind::ShiftAsDivision),
                "shift-as-division must be declared"
            );
        }
    }
    // On negatives the mapping truncates toward zero where srai
    // floors: -5 >> 1 is -3 on RV32 but -5/2 = -2 here. The difference
    // is declared by the warning; assert the documented behaviour.
    let (t, sim, m) = run_both("li a0, -5\nsrai a1, a0, 1\nebreak\n");
    assert_eq!(t.read_rv_reg(sim.state(), "a1".parse().unwrap()), -2);
    assert_eq!(m.reg("a1".parse().unwrap()) as i32, -3);
}

#[test]
fn bitwise_ops_emit_the_semantics_warning() {
    // Ternary AND/OR are min/max, XOR is the paper's truth table —
    // deliberately not two's-complement bitwise. The mapping must say
    // so on every bitwise source instruction.
    for src in [
        "and a2, a0, a1\nebreak\n",
        "or a2, a0, a1\nebreak\n",
        "xor a2, a0, a1\nebreak\n",
        "andi a1, a0, 5\nebreak\n",
        "ori a1, a0, 5\nebreak\n",
        "xori a1, a0, 5\nebreak\n",
    ] {
        let rv = parse_program(src).unwrap();
        let t = translate(&rv).unwrap();
        assert!(
            t.report
                .warnings
                .iter()
                .any(|w| w.kind == WarningKind::BitwiseSemantics),
            "missing BitwiseSemantics warning for {src}"
        );
    }
    for src in ["sltu a2, a0, a1\nebreak\n", "divu a2, a0, a1\nebreak\n"] {
        let rv = parse_program(src).unwrap();
        let t = translate(&rv).unwrap();
        assert!(
            t.report
                .warnings
                .iter()
                .any(|w| w.kind == WarningKind::UnsignedAsSigned),
            "missing UnsignedAsSigned warning for {src}"
        );
    }
}

#[test]
fn branch_table() {
    let ops: &[(&str, bool)] = &[
        ("beq", false),
        ("bne", false),
        ("blt", false),
        ("bge", false),
        ("bltu", true),
        ("bgeu", true),
    ];
    for (op, nonneg) in ops {
        for &a in CORNERS {
            for &b in CORNERS {
                if *nonneg && (a < 0 || b < 0) {
                    continue;
                }
                let src = format!(
                    "li a0, {a}\nli a1, {b}\n{op} a0, a1, yes\nli a2, 0\nebreak\n\
                     yes:\nli a2, 1\nebreak\n"
                );
                let (t, sim, m) = run_both(&src);
                assert_reg(&t, &sim, &m, "a2", &format!("{op} {a}, {b}"));
            }
        }
    }
}

#[test]
fn memory_table_with_offset_folding() {
    // Offsets spanning the imm3 window and beyond (the fold-into-base
    // path): word offsets 0, 1, 13, 14, 19.
    for off_words in [0usize, 1, 13, 14, 19] {
        let words: Vec<String> = (0..20).map(|i| (i as i64 * 7 - 50).to_string()).collect();
        let src = format!(
            ".data\narr: .word {}\n.text\nla a0, arr\nlw a1, {}(a0)\n\
             addi a1, a1, 1\nsw a1, {}(a0)\nlw a2, {}(a0)\nebreak\n",
            words.join(", "),
            4 * off_words,
            4 * off_words,
            4 * off_words
        );
        let (t, sim, m) = run_both(&src);
        let ctx = format!("lw/sw at word offset {off_words}");
        assert_reg(&t, &sim, &m, "a1", &ctx);
        assert_reg(&t, &sim, &m, "a2", &ctx);
    }
}

#[test]
fn jump_and_call_table() {
    // jal + jalr through the standard call/ret idiom, nested one deep.
    let src = "
        li   a0, 3
        call f
        addi a0, a0, 1
        ebreak
    f:
        addi sp, sp, -4
        sw   ra, 0(sp)
        call g
        lw   ra, 0(sp)
        addi sp, sp, 4
        ret
    g:
        add  a0, a0, a0
        ret
    ";
    let (t, sim, m) = run_both(src);
    assert_reg(&t, &sim, &m, "a0", "nested call");

    // j over a poisoned region.
    let (t, sim, m) = run_both("li a0, 1\nj ok\nli a0, 99\nok:\nebreak\n");
    assert_reg(&t, &sim, &m, "a0", "j skips");
}

#[test]
fn fence_and_halt_table() {
    let (t, sim, m) = run_both("li a0, 5\nfence\nebreak\n");
    assert_reg(&t, &sim, &m, "a0", "fence is a no-op");
    // ecall halts both machines just like ebreak.
    let (t, sim, m) = run_both("li a0, 6\necall\nli a0, 7\necall\n");
    assert_reg(&t, &sim, &m, "a0", "ecall halts");
    assert_eq!(t.read_rv_reg(sim.state(), "a0".parse().unwrap()), 6);
}

type Rejection = fn(&CompileError) -> bool;

#[test]
fn rejected_instructions_table() {
    let cases: &[(&str, Rejection)] = &[
        ("auipc a0, 1\nebreak\n", |e| {
            matches!(
                e,
                CompileError::Unsupported {
                    mnemonic: "auipc",
                    ..
                }
            )
        }),
        ("sll a2, a0, a1\nebreak\n", |e| {
            matches!(
                e,
                CompileError::Unsupported {
                    mnemonic: "dynamic shift",
                    ..
                }
            )
        }),
        ("srl a2, a0, a1\nebreak\n", |e| {
            matches!(
                e,
                CompileError::Unsupported {
                    mnemonic: "dynamic shift",
                    ..
                }
            )
        }),
        ("sra a2, a0, a1\nebreak\n", |e| {
            matches!(
                e,
                CompileError::Unsupported {
                    mnemonic: "dynamic shift",
                    ..
                }
            )
        }),
        ("mulh a2, a0, a1\nebreak\n", |e| {
            matches!(
                e,
                CompileError::Unsupported {
                    mnemonic: "mulh",
                    ..
                }
            )
        }),
        ("mulhsu a2, a0, a1\nebreak\n", |e| {
            matches!(
                e,
                CompileError::Unsupported {
                    mnemonic: "mulh",
                    ..
                }
            )
        }),
        ("mulhu a2, a0, a1\nebreak\n", |e| {
            matches!(
                e,
                CompileError::Unsupported {
                    mnemonic: "mulh",
                    ..
                }
            )
        }),
        (
            ".data\nv: .word 0\n.text\nla a0, v\nlb a1, 0(a0)\nebreak\n",
            |e| matches!(e, CompileError::SubWordAccess { mnemonic: "lb", .. }),
        ),
        (
            ".data\nv: .word 0\n.text\nla a0, v\nlhu a1, 0(a0)\nebreak\n",
            |e| {
                matches!(
                    e,
                    CompileError::SubWordAccess {
                        mnemonic: "lhu",
                        ..
                    }
                )
            },
        ),
        (
            ".data\nv: .word 0\n.text\nla a0, v\nsb a1, 0(a0)\nebreak\n",
            |e| matches!(e, CompileError::SubWordAccess { mnemonic: "sb", .. }),
        ),
        (
            ".data\nv: .word 0\n.text\nla a0, v\nsh a1, 0(a0)\nebreak\n",
            |e| matches!(e, CompileError::SubWordAccess { mnemonic: "sh", .. }),
        ),
        ("li a0, 100000\nebreak\n", |e| {
            matches!(e, CompileError::ConstantRange { .. })
        }),
    ];
    for (src, check) in cases {
        let rv = parse_program(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let e = translate(&rv).expect_err(src);
        assert!(check(&e), "wrong rejection for {src}: {e}");
    }
}
