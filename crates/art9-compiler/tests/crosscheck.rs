//! Differential testing of the compiling framework: random RV32
//! programs are run natively on the RV32 machine and — after
//! translation — on the ART-9 functional simulator; every architected
//! register must agree.
//!
//! Value ranges are constrained so that results stay inside the 9-trit
//! range: the translation contract is faithfulness for programs whose
//! live values fit the ternary machine (DESIGN.md §3.3, "semantic
//! narrowing"), so the generator respects that contract. Magnitudes are
//! bounded by |initial| ≤ 100 with at most 6 doubling operations:
//! 100·2⁶ = 6400 < 9841.

use proptest::prelude::*;

use art9_compiler::translate;
use art9_sim::SimBuilder;
use rv32::{parse_program, Machine};

#[derive(Debug, Clone)]
enum Op {
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    AddI(u8, u8, i32),
    Slt(u8, u8, u8),
    Branch(&'static str, u8, u8),
    MulSmall(u8, u8),
}

const REGS: [&str; 5] = ["a0", "a1", "a2", "a3", "a4"];

fn op() -> impl Strategy<Value = Op> {
    let r = 0u8..5;
    prop_oneof![
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Add(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Sub(a, b, c)),
        (r.clone(), r.clone(), -13i32..=13).prop_map(|(a, b, i)| Op::AddI(a, b, i)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Slt(a, b, c)),
        (r.clone(), r.clone()).prop_map(|(a, b)| Op::Branch("beq", a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| Op::Branch("blt", a, b)),
        (r.clone(), r).prop_map(|(a, b)| Op::MulSmall(a, b)),
    ]
}

fn program() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(-100i32..=100, 5),
        proptest::collection::vec(op(), 0..6),
    )
        .prop_map(|(init, ops)| {
            let mut src = String::new();
            for (r, v) in REGS.iter().zip(&init) {
                src.push_str(&format!("li {r}, {v}\n"));
            }
            for (k, o) in ops.iter().enumerate() {
                match o {
                    Op::Add(a, b, c) => src.push_str(&format!(
                        "add {}, {}, {}\n",
                        REGS[*a as usize], REGS[*b as usize], REGS[*c as usize]
                    )),
                    Op::Sub(a, b, c) => src.push_str(&format!(
                        "sub {}, {}, {}\n",
                        REGS[*a as usize], REGS[*b as usize], REGS[*c as usize]
                    )),
                    Op::AddI(a, b, i) => src.push_str(&format!(
                        "addi {}, {}, {}\n",
                        REGS[*a as usize], REGS[*b as usize], i
                    )),
                    Op::Slt(a, b, c) => src.push_str(&format!(
                        "slt {}, {}, {}\n",
                        REGS[*a as usize], REGS[*b as usize], REGS[*c as usize]
                    )),
                    Op::Branch(m, a, b) => src.push_str(&format!(
                        "{m} {}, {}, skip{k}\nskip{k}:\n",
                        REGS[*a as usize], REGS[*b as usize]
                    )),
                    Op::MulSmall(a, b) => {
                        // Normalize both operands to 0/1 first so the
                        // product stays tiny (slt against self+1 keeps
                        // it deterministic and in range).
                        src.push_str(&format!(
                            "slt t0, {}, {}\nslt t1, {}, {}\nmul {}, t0, t1\n",
                            REGS[*a as usize],
                            REGS[*b as usize],
                            REGS[*b as usize],
                            REGS[*a as usize],
                            REGS[*a as usize],
                        ));
                    }
                }
            }
            src.push_str("ebreak\n");
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn translated_programs_agree_with_rv32(src in program()) {
        // Values stay well inside both machines' ranges by construction:
        // |init| <= 100, adds at most double per op, <= 6 ops.
        let rv = parse_program(&src).expect("generated source parses");
        let mut machine = Machine::new(&rv);
        machine.run(1_000_000).expect("rv32 run completes");

        let t = translate(&rv).expect("translation succeeds");
        let mut sim = SimBuilder::new(&t.program).build_functional();
        sim.run(1_000_000).expect("art9 run completes");

        for name in REGS {
            let reg: rv32::Reg = name.parse().expect("known reg");
            let rv_val = machine.reg(reg) as i32 as i64;
            let t9_val = t.read_rv_reg(sim.state(), reg);
            prop_assert_eq!(rv_val, t9_val, "{} diverged\nprogram:\n{}", name, src);
        }
    }
}
