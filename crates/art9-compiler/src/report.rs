//! Translation statistics and semantic-difference warnings.

use std::fmt;

/// Semantic caveats the mapping cannot avoid (radix mismatch between
/// binary and balanced ternary). Each is reported once per program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WarningKind {
    /// AND/OR/XOR map to trit-wise min/max/ternary-XOR: exact for 0/1
    /// boolean values under AND/OR, different for general bit patterns.
    BitwiseSemantics,
    /// Unsigned comparisons/divisions are translated as signed — exact
    /// whenever both operands are non-negative on the 9-trit machine.
    UnsignedAsSigned,
    /// A left shift became ×2ᵏ (doubling adds or `__mul`).
    ShiftAsMultiply,
    /// A right shift became `__div` by 2ᵏ: truncating division, which
    /// differs from `srai`'s floor on negative operands.
    ShiftAsDivision,
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WarningKind::BitwiseSemantics => {
                "bitwise AND/OR/XOR mapped to trit-wise operations (exact only for 0/1 booleans)"
            }
            WarningKind::UnsignedAsSigned => {
                "unsigned operation translated as signed (exact for non-negative operands)"
            }
            WarningKind::ShiftAsMultiply => "left shift expanded to multiplication by 2^k",
            WarningKind::ShiftAsDivision => {
                "right shift expanded to truncating division by 2^k (differs from srai's floor on negatives)"
            }
        };
        f.write_str(s)
    }
}

/// One warning, tagged with the RV32 instruction that triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Warning {
    /// RV32 instruction index.
    pub at: usize,
    /// What semantic difference applies.
    pub kind: WarningKind,
}

/// Statistics of one translation — the numbers behind Fig. 5 and the
/// §III-A code-size claims.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoftwareReport {
    /// RV32 instructions in the input.
    pub rv32_instructions: usize,
    /// ART-9 instructions in the program body (excluding builtins).
    pub art9_body_instructions: usize,
    /// ART-9 instructions contributed by linked runtime builtins.
    pub art9_builtin_instructions: usize,
    /// Items removed by the redundancy-checking pass.
    pub redundant_removed: usize,
    /// Data words carried over.
    pub data_words: usize,
    /// Semantic warnings.
    pub warnings: Vec<Warning>,
}

impl SoftwareReport {
    /// Total ART-9 instructions (body + builtins).
    pub fn art9_instructions(&self) -> usize {
        self.art9_body_instructions + self.art9_builtin_instructions
    }

    /// Instruction-count expansion factor ART-9 / RV32.
    pub fn expansion(&self) -> f64 {
        self.art9_instructions() as f64 / self.rv32_instructions as f64
    }

    /// ART-9 instruction-memory cells (9 trits per instruction).
    pub fn art9_instruction_cells(&self) -> usize {
        self.art9_instructions() * 9
    }

    /// RV32 instruction-memory bits (32 per instruction).
    pub fn rv32_instruction_bits(&self) -> usize {
        self.rv32_instructions * 32
    }
}

impl fmt::Display for SoftwareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RV32 instructions:    {}", self.rv32_instructions)?;
        writeln!(
            f,
            "ART-9 instructions:   {} ({} body + {} runtime)",
            self.art9_instructions(),
            self.art9_body_instructions,
            self.art9_builtin_instructions
        )?;
        writeln!(f, "expansion factor:     {:.2}x", self.expansion())?;
        writeln!(f, "redundancy removed:   {}", self.redundant_removed)?;
        writeln!(
            f,
            "instruction memory:   {} trits (vs {} bits on RV32)",
            self.art9_instruction_cells(),
            self.rv32_instruction_bits()
        )?;
        for w in &self.warnings {
            writeln!(f, "warning (rv32 #{}): {}", w.at, w.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SoftwareReport {
            rv32_instructions: 100,
            art9_body_instructions: 120,
            art9_builtin_instructions: 30,
            redundant_removed: 5,
            data_words: 8,
            warnings: vec![Warning {
                at: 3,
                kind: WarningKind::BitwiseSemantics,
            }],
        };
        assert_eq!(r.art9_instructions(), 150);
        assert!((r.expansion() - 1.5).abs() < 1e-9);
        assert_eq!(r.art9_instruction_cells(), 1350);
        assert_eq!(r.rv32_instruction_bits(), 3200);
        let text = r.to_string();
        assert!(text.contains("1.50x"));
        assert!(text.contains("warning"));
    }
}
