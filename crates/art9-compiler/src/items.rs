//! The intermediate form between instruction mapping and final
//! emission: concrete ART-9 instructions with *symbolic* control flow.
//!
//! Branch targets stay symbolic ([`Label`]) through the redundancy pass
//! so that deleting instructions cannot break offsets; the relaxation
//! pass then assigns addresses and chooses short (`BEQ`/`JAL`) or long
//! (`LUI`+`LI`+`JALR`) forms — the paper's "re-calculates the branch
//! target addresses" step.

use art9_isa::{Instruction, TReg};
use ternary::Trit;

/// A symbolic code location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// The translation of RV32 instruction index `n` starts here.
    Rv(usize),
    /// Entry of a runtime-library routine.
    Builtin(BuiltinId),
    /// A translator-generated local label.
    Local(u32),
}

/// Runtime-library routines the mapper may call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BuiltinId {
    /// Signed 9-trit multiply: `t3 = t3 * t4`.
    Mul,
    /// Signed truncating divide: `t3 = t3 / t4`.
    Div,
    /// Signed remainder: `t3 = t3 % t4`.
    Rem,
}

impl BuiltinId {
    /// The routine's label name in listings.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinId::Mul => "__mul",
            BuiltinId::Div => "__div",
            BuiltinId::Rem => "__rem",
        }
    }
}

/// Where an emitted instruction came from — the provenance tag carried
/// by every [`Sourced`] item from the mapping pass to the final
/// instruction stream. The cross-ISA lockstep oracle (`art9-fuzz`)
/// uses it to find the sync points where the translated machine is at
/// an RV32 instruction boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Origin {
    /// Translator prologue (software conventions, e.g. the `sp` init).
    Prologue,
    /// The translation of RV32 instruction index `k`.
    Rv(usize),
    /// The implicit end-of-program halt sequence.
    Halt,
    /// The body of a linked runtime-library routine.
    Builtin(BuiltinId),
}

/// One [`Item`] plus the [`Origin`] it was emitted for. The item
/// streams of every pass — mapping, redundancy elimination, relaxation
/// — are `Sourced`, so provenance survives instructions moving and
/// dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sourced {
    /// The symbolic item.
    pub item: Item,
    /// Which source construct emitted it.
    pub origin: Origin,
}

impl Sourced {
    /// Tags `item` with `origin`.
    pub fn new(item: Item, origin: Origin) -> Self {
        Self { item, origin }
    }
}

/// One item of the symbolic instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A position marker (assembles to nothing).
    Mark(Label),
    /// A concrete, non-control-flow instruction.
    Ins(Instruction),
    /// Conditional branch to a label (`BEQ`/`BNE` on `breg`'s LST).
    Branch {
        /// `true` for BEQ, `false` for BNE.
        eq: bool,
        /// Condition register.
        breg: TReg,
        /// The 1-trit constant compared against.
        cond: Trit,
        /// Target.
        target: Label,
    },
    /// Unconditional jump with link to a label (JAL, relaxable to a
    /// JALR sequence).
    Jump {
        /// Link register (a scratch register when the link is unused).
        link: TReg,
        /// Target.
        target: Label,
    },
    /// Materialize the resolved address of `target` into `reg`
    /// (always a `LUI`+`LI` pair). Used to pre-compute return addresses
    /// when the link register is a spilled location.
    LabelConst {
        /// Destination register.
        reg: TReg,
        /// The label whose address is wanted.
        target: Label,
    },
}

impl Item {
    /// Upper bound on emitted instructions for address estimation:
    /// marks are 0, plain instructions 1, branches/jumps depend on
    /// relaxation (1 short, up to 4 long).
    pub fn max_len(&self) -> usize {
        match self {
            Item::Mark(_) => 0,
            Item::Ins(_) => 1,
            Item::Branch { .. } => 4,     // inverted branch + long jump
            Item::Jump { .. } => 3,       // LUI + LI + JALR
            Item::LabelConst { .. } => 2, // LUI + LI
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Label::Rv(0));
        s.insert(Label::Builtin(BuiltinId::Mul));
        s.insert(Label::Local(7));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn max_len_bounds() {
        assert_eq!(Item::Mark(Label::Rv(0)).max_len(), 0);
        assert_eq!(Item::Ins(art9_isa::NOP).max_len(), 1);
    }

    #[test]
    fn builtin_names() {
        assert_eq!(BuiltinId::Mul.name(), "__mul");
        assert_eq!(BuiltinId::Div.name(), "__div");
        assert_eq!(BuiltinId::Rem.name(), "__rem");
    }
}
