//! The ART-9 runtime library: "primitive sequences of ternary
//! instructions" (paper §III-A) for RV32 operations with no direct
//! ternary equivalent — chiefly multiplication and division, since the
//! ART-9 core has no multiplier (Table II) and binary shifts are not
//! ternary shifts.
//!
//! ## Builtin ABI
//!
//! * arguments in `t3` (lhs) and `t4` (rhs); result in `t3`;
//! * `t4` and `t8` are clobbered (`t8` carries the return address:
//!   call via `JAL t8, __fn`, return via `JALR t4, t8, 0`);
//! * `t5`–`t7` are preserved (saved to the reserved TDM scratch words
//!   [`BUILTIN_SCRATCH`](crate::regalloc::BUILTIN_SCRATCH));
//! * `t0` (zero), `t1`, `t2` are untouched.
//!
//! ## Algorithms
//!
//! * `__mul` — balanced base-3 shift-and-add: the multiplier's trits
//!   are extracted with the `SRI`/`SLI`/`SUB` idiom (a balanced right
//!   shift rounds to nearest, so `x − 3·(x≫1)` *is* the LST), and the
//!   multiplicand is added, subtracted or skipped per digit. At most 9
//!   iterations; wrap-around matches the wrapping semantics.
//! * `__div` / `__rem` — sign-normalized repeated subtraction,
//!   truncating toward zero (matching RV32 `div`/`rem`). O(|quotient|):
//!   honest for the small magnitudes a 9-trit machine holds, and
//!   documented as the translation's cost model for binary right
//!   shifts.

use art9_isa::{Instruction, TReg};
use ternary::{Trit, Trits};

const T0: TReg = TReg::T0;
const T3: TReg = TReg::T3;
const T4: TReg = TReg::T4;
const T5: TReg = TReg::T5;
const T6: TReg = TReg::T6;
const T7: TReg = TReg::T7;

use crate::items::{BuiltinId, Item, Label};

/// Allocates fresh local labels for builtin bodies.
#[derive(Debug, Default)]
pub struct LocalLabels {
    next: u32,
}

impl LocalLabels {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh local label.
    pub fn fresh(&mut self) -> Label {
        let l = Label::Local(self.next);
        self.next += 1;
        l
    }
}

fn ins(i: Instruction) -> Item {
    Item::Ins(i)
}

fn store(reg: TReg, slot: i64) -> Item {
    ins(Instruction::Store {
        a: reg,
        b: TReg::T0,
        offset: Trits::<3>::from_i64(slot).expect("scratch slot fits imm3"),
    })
}

fn load(reg: TReg, slot: i64) -> Item {
    ins(Instruction::Load {
        a: reg,
        b: TReg::T0,
        offset: Trits::<3>::from_i64(slot).expect("scratch slot fits imm3"),
    })
}

fn mv(a: TReg, b: TReg) -> Item {
    ins(Instruction::Mv { a, b })
}

fn addi(a: TReg, v: i64) -> Item {
    ins(Instruction::Addi {
        a,
        imm: Trits::<3>::from_i64(v).expect("imm3"),
    })
}

fn sub(a: TReg, b: TReg) -> Item {
    ins(Instruction::Sub { a, b })
}

fn add(a: TReg, b: TReg) -> Item {
    ins(Instruction::Add { a, b })
}

fn sti(a: TReg, b: TReg) -> Item {
    ins(Instruction::Sti { a, b })
}

fn comp(a: TReg, b: TReg) -> Item {
    ins(Instruction::Comp { a, b })
}

fn sri(a: TReg, v: i64) -> Item {
    ins(Instruction::Sri {
        a,
        imm: Trits::<2>::from_i64(v).expect("imm2"),
    })
}

fn sli(a: TReg, v: i64) -> Item {
    ins(Instruction::Sli {
        a,
        imm: Trits::<2>::from_i64(v).expect("imm2"),
    })
}

fn beq(breg: TReg, cond: Trit, target: Label) -> Item {
    Item::Branch {
        eq: true,
        breg,
        cond,
        target,
    }
}

fn bne(breg: TReg, cond: Trit, target: Label) -> Item {
    Item::Branch {
        eq: false,
        breg,
        cond,
        target,
    }
}

/// Unconditional branch: `BEQ t0, 0, target` (t0's LST is always zero
/// by the software zero-register convention).
fn jump_always(target: Label) -> Item {
    beq(TReg::T0, Trit::Z, target)
}

/// Return from a builtin: the link came in via `t8`; the (dead) link
/// of the return JALR is dumped into the clobbered `t4`.
fn ret() -> Item {
    ins(Instruction::Jalr {
        a: TReg::T4,
        b: TReg::T8,
        offset: Trits::ZERO,
    })
}

/// Emits the body of a builtin, starting with its entry mark.
pub fn builtin_items(id: BuiltinId, labels: &mut LocalLabels) -> Vec<Item> {
    match id {
        BuiltinId::Mul => mul_items(labels),
        BuiltinId::Div => divrem_items(labels, false),
        BuiltinId::Rem => divrem_items(labels, true),
    }
}

/// `__mul`: t3 = t3 * t4 (wrapping, signed).
fn mul_items(labels: &mut LocalLabels) -> Vec<Item> {
    let l_loop = labels.fresh();
    let l_add = labels.fresh();
    let l_shift = labels.fresh();

    let mut v = vec![Item::Mark(Label::Builtin(BuiltinId::Mul))];
    // Save callee-preserved registers.
    v.push(store(T5, 0));
    v.push(store(T6, 1));
    v.push(store(T7, 2));
    // t5 = multiplicand, t6 = multiplier, t3 = accumulator.
    v.push(mv(T5, T3));
    v.push(mv(T6, T4));
    v.push(sub(T3, T3));
    // Skip the loop entirely for a zero multiplier.
    v.push(mv(T4, T6));
    v.push(comp(T4, T0));
    let l_done = labels.fresh();
    v.push(beq(T4, Trit::Z, l_done));

    v.push(Item::Mark(l_loop));
    // digit = t6 - 3*round(t6/3); t6 = round(t6/3).
    v.push(mv(T7, T6));
    v.push(sri(T6, 1));
    v.push(mv(T4, T6));
    v.push(sli(T4, 1));
    v.push(sub(T7, T4)); // t7 = balanced digit in {-1, 0, +1}
    v.push(beq(T7, Trit::Z, l_shift));
    v.push(beq(T7, Trit::P, l_add));
    v.push(sub(T3, T5)); // digit = -1
    v.push(jump_always(l_shift));
    v.push(Item::Mark(l_add));
    v.push(add(T3, T5)); // digit = +1
    v.push(Item::Mark(l_shift));
    v.push(sli(T5, 1)); // multiplicand *= 3
    v.push(mv(T4, T6));
    v.push(comp(T4, T0));
    v.push(bne(T4, Trit::Z, l_loop));

    v.push(Item::Mark(l_done));
    v.push(load(T5, 0));
    v.push(load(T6, 1));
    v.push(load(T7, 2));
    v.push(ret());
    v
}

/// `__div`/`__rem`: t3 = t3 op t4 (signed, truncating toward zero,
/// matching RV32 semantics; division by zero yields the RISC-V
/// convention exactly — quotient −1 (the all-ones pattern read as a
/// signed word) and the dividend as remainder — so translated programs
/// stay in lockstep with the `rv32` machine even on this corner).
fn divrem_items(labels: &mut LocalLabels, want_rem: bool) -> Vec<Item> {
    let id = if want_rem {
        BuiltinId::Rem
    } else {
        BuiltinId::Div
    };
    let l_a_pos = labels.fresh();
    let l_b_pos = labels.fresh();
    let l_loop = labels.fresh();
    let l_done = labels.fresh();
    let l_no_negate = labels.fresh();
    let l_div0 = labels.fresh();

    let mut v = vec![Item::Mark(Label::Builtin(id))];
    v.push(store(T5, 0));
    v.push(store(T6, 1));
    v.push(store(T7, 2));

    // Division by zero: bail out early.
    v.push(mv(T7, T4));
    v.push(comp(T7, T0));
    v.push(beq(T7, Trit::Z, l_div0));

    // t7 = sign bookkeeping: +1 per negated operand for the quotient
    // (na - nb: nonzero => negate quotient); slot 3 remembers na for
    // the remainder's sign.
    v.push(sub(T7, T7));
    v.push(store(T7, 3)); // na = 0
                          // |a|
    v.push(mv(T6, T3));
    v.push(comp(T6, T0));
    v.push(bne(T6, Trit::N, l_a_pos));
    v.push(sti(T3, T3));
    v.push(addi(T7, 1));
    v.push(store(T7, 3)); // na-marker doubles as quotient sign step 1
    v.push(Item::Mark(l_a_pos));
    // |b|
    v.push(mv(T6, T4));
    v.push(comp(T6, T0));
    v.push(bne(T6, Trit::N, l_b_pos));
    v.push(sti(T4, T4));
    v.push(addi(T7, -1));
    v.push(Item::Mark(l_b_pos));
    v.push(store(T7, 4)); // quotient-negative flag (nonzero => negate q)

    // t5 = |a| (running remainder), t3 = quotient.
    v.push(mv(T5, T3));
    v.push(sub(T3, T3));
    v.push(Item::Mark(l_loop));
    v.push(mv(T7, T5));
    v.push(comp(T7, T4));
    v.push(beq(T7, Trit::N, l_done)); // remainder < divisor: stop
    v.push(sub(T5, T4));
    v.push(addi(T3, 1));
    v.push(jump_always(l_loop));

    v.push(Item::Mark(l_done));
    if want_rem {
        // Result is the remainder, negative when the dividend was.
        v.push(mv(T3, T5));
        v.push(load(T7, 3));
        v.push(mv(T6, T7));
        v.push(comp(T6, T0));
        v.push(beq(T6, Trit::Z, l_no_negate));
        v.push(sti(T3, T3));
        v.push(Item::Mark(l_no_negate));
    } else {
        // Quotient sign: negate when exactly one operand was negative.
        v.push(load(T7, 4));
        v.push(mv(T6, T7));
        v.push(comp(T6, T0));
        v.push(beq(T6, Trit::Z, l_no_negate));
        v.push(sti(T3, T3));
        v.push(Item::Mark(l_no_negate));
    }
    v.push(load(T5, 0));
    v.push(load(T6, 1));
    v.push(load(T7, 2));
    v.push(ret());

    // Division by zero: q = -1 (RISC-V convention), r = dividend.
    v.push(Item::Mark(l_div0));
    if !want_rem {
        v.push(sub(T3, T3));
        v.push(addi(T3, -1));
    }
    v.push(load(T5, 0));
    v.push(load(T6, 1));
    v.push(load(T7, 2));
    v.push(ret());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_have_entry_marks_and_returns() {
        let mut labels = LocalLabels::new();
        for id in [BuiltinId::Mul, BuiltinId::Div, BuiltinId::Rem] {
            let items = builtin_items(id, &mut labels);
            assert_eq!(items[0], Item::Mark(Label::Builtin(id)), "{id:?}");
            let rets = items
                .iter()
                .filter(|i| matches!(i, Item::Ins(Instruction::Jalr { b: TReg::T8, .. })))
                .count();
            assert!(rets >= 1, "{id:?} must return via t8");
        }
    }

    #[test]
    fn local_labels_are_unique() {
        let mut labels = LocalLabels::new();
        let a = labels.fresh();
        let b = labels.fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn builtins_only_touch_allowed_registers_architecturally() {
        // Static check: every register written is t3..t8 (t5..t7 are
        // saved/restored around the body).
        let mut labels = LocalLabels::new();
        for id in [BuiltinId::Mul, BuiltinId::Div, BuiltinId::Rem] {
            for item in builtin_items(id, &mut labels) {
                if let Item::Ins(i) = item {
                    if let Some(w) = i.writes() {
                        assert!(
                            w.index() >= 3,
                            "{id:?} writes {w}, clobbering a fixed register"
                        );
                    }
                }
            }
        }
    }
}
