//! Operand conversion, part 2: register renaming.
//!
//! The paper (§III-A): "the operand conversion step also supports the
//! register renaming when the given ternary ISA uses fewer
//! general-purposed registers than the baseline binary processor."
//! RV32 has 32 registers, the ART-9 TRF has nine. The renaming is:
//!
//! | RV32                  | ART-9                                  |
//! |-----------------------|----------------------------------------|
//! | `x0`/`zero`           | `t0` (kept 0 by software convention)   |
//! | `ra`                  | `t1`                                   |
//! | `sp`                  | `t2`                                   |
//! | 4 hottest others      | `t3`..`t6` (direct)                    |
//! | up to 8 more          | TDM spill slots (words 6..13)          |
//!
//! `t7` and `t8` are the translator's scratch registers (operand
//! staging, branch comparisons, builtin linkage), so they are never
//! allocated. Programs needing more than 12 renameable registers are
//! rejected — loudly, per the framework's no-silent-miscompile rule.

use std::collections::BTreeMap;

use art9_isa::TReg;
use rv32::{Instr, Reg, Rv32Program};

use crate::error::CompileError;

/// TDM scratch words owned by builtin routines (register saves and
/// sign/temp flags).
pub const BUILTIN_SCRATCH: [i64; 5] = [0, 1, 2, 3, 4];
/// TDM scratch word where the mapper saves `t3` around builtin calls.
pub const CALL_SAVE_T3: i64 = 5;
/// TDM scratch word where the mapper saves `t4` around builtin calls.
pub const CALL_SAVE_T4: i64 = 6;
/// First TDM word used as a register spill slot.
pub const SPILL_BASE: i64 = 7;
/// Number of spill slots (words 7..=13; all reachable via `T0 + imm3`).
pub const SPILL_SLOTS: usize = 7;

/// Where an RV32 register lives on the ternary machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// `x0`: reads become `t0` (zero by convention); writes are dropped.
    Zero,
    /// A directly mapped ternary register.
    Direct(TReg),
    /// A TDM word at `T0 + offset` (offset in 0..=13).
    Spill(i64),
}

/// The renaming decided for one program.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    map: BTreeMap<Reg, Loc>,
}

impl Allocation {
    /// The location of an RV32 register.
    ///
    /// # Panics
    ///
    /// Panics if the register never appeared in the analyzed program —
    /// callers only ask about registers the mapper encounters.
    pub fn loc(&self, reg: Reg) -> Loc {
        if reg.is_zero() {
            return Loc::Zero;
        }
        *self
            .map
            .get(&reg)
            .unwrap_or_else(|| panic!("register {reg} was not allocated"))
    }

    /// Iterates over the decided placements (for reports and tests).
    pub fn iter(&self) -> impl Iterator<Item = (&Reg, &Loc)> {
        self.map.iter()
    }

    /// Number of directly mapped registers.
    pub fn direct_count(&self) -> usize {
        self.map
            .values()
            .filter(|l| matches!(l, Loc::Direct(_)))
            .count()
    }

    /// Number of spilled registers.
    pub fn spill_count(&self) -> usize {
        self.map
            .values()
            .filter(|l| matches!(l, Loc::Spill(_)))
            .count()
    }
}

/// Decides the renaming for `program`.
///
/// # Errors
///
/// [`CompileError::TooManyRegisters`] when the program uses more
/// renameable registers than direct + spill slots can hold.
pub fn allocate(program: &Rv32Program) -> Result<Allocation, CompileError> {
    // Usage frequency per register (reads + writes), excluding the
    // fixed-mapping registers.
    let mut usage: BTreeMap<Reg, usize> = BTreeMap::new();
    for i in program.text() {
        let mut bump = |r: Reg| {
            if !r.is_zero() && r != Reg::RA && r != Reg::SP {
                *usage.entry(r).or_insert(0) += 1;
            }
        };
        for r in i.reads() {
            bump(r);
        }
        if let Some(r) = instr_dest(i) {
            bump(r);
        }
    }

    let mut by_heat: Vec<(Reg, usize)> = usage.into_iter().collect();
    // Hottest first; ties broken by register number for determinism.
    by_heat.sort_by_key(|(r, n)| (std::cmp::Reverse(*n), r.index()));

    let direct: [TReg; 4] = [TReg::T3, TReg::T4, TReg::T5, TReg::T6];
    let mut map = BTreeMap::new();
    map.insert(Reg::RA, Loc::Direct(TReg::T1));
    map.insert(Reg::SP, Loc::Direct(TReg::T2));

    let mut overflow = Vec::new();
    for (k, (reg, _)) in by_heat.iter().enumerate() {
        if k < direct.len() {
            map.insert(*reg, Loc::Direct(direct[k]));
        } else if k < direct.len() + SPILL_SLOTS {
            map.insert(*reg, Loc::Spill(SPILL_BASE + (k - direct.len()) as i64));
        } else {
            overflow.push(reg.abi_name().to_string());
        }
    }
    if !overflow.is_empty() {
        return Err(CompileError::TooManyRegisters { overflow });
    }
    Ok(Allocation { map })
}

/// The raw destination register (including `x0`, unlike
/// [`Instr::writes`] which hides it) — usage counting wants the
/// syntactic operand.
fn instr_dest(i: &Instr) -> Option<Reg> {
    use Instr::*;
    match i {
        Lui { rd, .. }
        | Auipc { rd, .. }
        | Jal { rd, .. }
        | Jalr { rd, .. }
        | Load { rd, .. }
        | AluImm { rd, .. }
        | Alu { rd, .. }
        | MulDiv { rd, .. } => Some(*rd),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv32::parse_program;

    #[test]
    fn hot_registers_go_direct() {
        let p = parse_program(
            "
            li a0, 1
            li a1, 2
            add a0, a0, a1
            add a0, a0, a1
            add a0, a0, a1
            li t0, 9
            ebreak
            ",
        )
        .unwrap();
        let a = allocate(&p).unwrap();
        // a0 used most -> first direct reg (t3).
        assert_eq!(a.loc("a0".parse().unwrap()), Loc::Direct(TReg::T3));
        assert_eq!(a.loc("a1".parse().unwrap()), Loc::Direct(TReg::T4));
        // a0, a1, t0 direct plus the fixed ra/sp mappings.
        assert_eq!(a.direct_count(), 5);
    }

    #[test]
    fn fixed_mappings() {
        let p = parse_program("sw ra, 0(sp)\nebreak\n").unwrap();
        let a = allocate(&p).unwrap();
        assert_eq!(a.loc(Reg::RA), Loc::Direct(TReg::T1));
        assert_eq!(a.loc(Reg::SP), Loc::Direct(TReg::T2));
        assert_eq!(a.loc(Reg::ZERO), Loc::Zero);
    }

    #[test]
    fn overflow_spills_then_errors() {
        // 12 distinct working registers: 4 direct + 7 spill + 1 too many.
        let mut src = String::new();
        for (k, r) in [
            "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
        ]
        .iter()
        .enumerate()
        {
            src.push_str(&format!("li {r}, {k}\n"));
        }
        src.push_str("ebreak\n");
        let p = parse_program(&src).unwrap();
        let e = allocate(&p).unwrap_err();
        assert!(
            matches!(e, CompileError::TooManyRegisters { ref overflow } if overflow.len() == 1)
        );
    }

    #[test]
    fn eleven_registers_fit() {
        let mut src = String::new();
        for (k, r) in [
            "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4",
        ]
        .iter()
        .enumerate()
        {
            src.push_str(&format!("li {r}, {k}\n"));
        }
        src.push_str("ebreak\n");
        let p = parse_program(&src).unwrap();
        let a = allocate(&p).unwrap();
        assert_eq!(a.direct_count(), 4 + 2); // 4 hot + ra + sp
        assert_eq!(a.spill_count(), 7);
    }

    #[test]
    fn spill_slots_stay_in_imm3_window() {
        let mut src = String::new();
        for (k, r) in [
            "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4",
        ]
        .iter()
        .enumerate()
        {
            src.push_str(&format!("li {r}, {k}\n"));
        }
        src.push_str("ebreak\n");
        let p = parse_program(&src).unwrap();
        let a = allocate(&p).unwrap();
        for (_, loc) in a.iter() {
            if let Loc::Spill(s) = loc {
                assert!((0..=13).contains(s), "slot {s} reachable via imm3");
            }
        }
    }
}
