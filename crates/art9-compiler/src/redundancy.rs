//! Redundancy checking (paper Fig. 2, final stage): removes the
//! meaningless instructions the mechanical mapping leaves behind, so
//! the final code size is minimized. Branch targets stay symbolic here,
//! so deletions can never break control flow — re-resolution happens in
//! the relaxation pass afterwards ("the proposed framework also
//! re-calculates the branch target addresses").
//!
//! Items arrive [`Sourced`] (tagged with their RV32 origin) and keep
//! their tags: deleting an item deletes its tag with it, so the
//! provenance map stays aligned through this pass.

use art9_isa::Instruction;

use crate::items::{Item, Sourced};

/// Runs the peephole pass; returns the number of items removed.
///
/// Patterns removed (each is a real artifact of the mapper):
///
/// 1. `MV x, x` — self-moves from staging a register already in place;
/// 2. `ADDI x, 0` — vacuous adds from zero-stride pointer bumps;
/// 3. a `LOAD r, b, k` immediately after `STORE r, b, k` — spill
///    round-trips where the value is still live in `r`;
/// 4. duplicated adjacent `MV a, b; MV a, b`;
/// 5. `MV a, b; MV b, a` — the second move is a no-op.
///
/// Marks are transparent for pattern 3–5 only when no label sits
/// between the paired instructions (a label is a potential join point).
pub fn eliminate(items: &mut Vec<Sourced>) -> usize {
    let before = items.len();
    let mut changed = true;
    while changed {
        changed = false;
        let mut out: Vec<Sourced> = Vec::with_capacity(items.len());
        for sourced in items.drain(..) {
            // Pattern 1 & 2: locally dead single instructions.
            if let Item::Ins(i) = &sourced.item {
                match i {
                    Instruction::Mv { a, b } if a == b => {
                        changed = true;
                        continue;
                    }
                    Instruction::Addi { imm, a } if imm.is_zero() && *a != art9_isa::TReg::T0 => {
                        // Keep canonical NOPs (ADDI t0, 0) — drop only
                        // accidental vacuous adds on other registers.
                        changed = true;
                        continue;
                    }
                    _ => {}
                }
            }
            // Pairwise patterns against the previous *instruction*
            // (skip if a mark separates them).
            if let (Some(Item::Ins(prev)), Item::Ins(cur)) =
                (out.last().map(|s| &s.item), &sourced.item)
            {
                let redundant = match (prev, cur) {
                    // store r -> slot ; load r <- slot
                    (
                        Instruction::Store {
                            a: sa,
                            b: sb,
                            offset: so,
                        },
                        Instruction::Load {
                            a: la,
                            b: lb,
                            offset: lo,
                        },
                    ) => sa == la && sb == lb && so == lo,
                    // mv a,b ; mv a,b   /   mv a,b ; mv b,a
                    (Instruction::Mv { a: pa, b: pb }, Instruction::Mv { a: ca, b: cb }) => {
                        (pa == ca && pb == cb) || (pa == cb && pb == ca)
                    }
                    _ => false,
                };
                if redundant {
                    changed = true;
                    continue;
                }
            }
            out.push(sourced);
        }
        *items = out;
    }
    before - items.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{Label, Origin};
    use art9_isa::{Instruction, TReg};
    use ternary::Trits;

    fn tag(item: Item) -> Sourced {
        Sourced::new(item, Origin::Rv(0))
    }

    fn mv(a: TReg, b: TReg) -> Sourced {
        tag(Item::Ins(Instruction::Mv { a, b }))
    }

    fn store(a: TReg, s: i64) -> Sourced {
        tag(Item::Ins(Instruction::Store {
            a,
            b: TReg::T0,
            offset: Trits::<3>::from_i64(s).unwrap(),
        }))
    }

    fn load(a: TReg, s: i64) -> Sourced {
        tag(Item::Ins(Instruction::Load {
            a,
            b: TReg::T0,
            offset: Trits::<3>::from_i64(s).unwrap(),
        }))
    }

    #[test]
    fn removes_self_moves() {
        let mut items = vec![mv(TReg::T3, TReg::T3), mv(TReg::T3, TReg::T4)];
        assert_eq!(eliminate(&mut items), 1);
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn removes_spill_roundtrip() {
        let mut items = vec![store(TReg::T5, 7), load(TReg::T5, 7)];
        assert_eq!(eliminate(&mut items), 1);
        assert!(matches!(
            items[0].item,
            Item::Ins(Instruction::Store { .. })
        ));
    }

    #[test]
    fn keeps_load_of_different_register_or_slot() {
        let mut items = vec![store(TReg::T5, 7), load(TReg::T6, 7)];
        assert_eq!(eliminate(&mut items), 0);
        let mut items = vec![store(TReg::T5, 7), load(TReg::T5, 8)];
        assert_eq!(eliminate(&mut items), 0);
    }

    #[test]
    fn mark_blocks_pairwise_elimination() {
        // A label between the pair is a join point: the load must stay.
        let mut items = vec![
            store(TReg::T5, 7),
            tag(Item::Mark(Label::Local(0))),
            load(TReg::T5, 7),
        ];
        assert_eq!(eliminate(&mut items), 0);
    }

    #[test]
    fn removes_mv_back_and_forth() {
        let mut items = vec![mv(TReg::T3, TReg::T4), mv(TReg::T4, TReg::T3)];
        assert_eq!(eliminate(&mut items), 1);
    }

    #[test]
    fn keeps_canonical_nop_drops_vacuous_addi() {
        let nop = tag(Item::Ins(art9_isa::NOP));
        let vacuous = tag(Item::Ins(Instruction::Addi {
            a: TReg::T5,
            imm: Trits::ZERO,
        }));
        let mut items = vec![nop.clone(), vacuous];
        assert_eq!(eliminate(&mut items), 1);
        assert_eq!(items, vec![nop]);
    }

    #[test]
    fn iterates_to_fixpoint() {
        // mv t3,t3 ; store/load pair around it collapses in two waves.
        let mut items = vec![
            store(TReg::T5, 7),
            mv(TReg::T3, TReg::T3),
            load(TReg::T5, 7),
        ];
        assert_eq!(eliminate(&mut items), 2);
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn provenance_tags_survive_elimination() {
        // Items keep their origins; only the deleted item's tag is gone.
        let mut items = vec![
            Sourced::new(
                Item::Ins(Instruction::Mv {
                    a: TReg::T3,
                    b: TReg::T4,
                }),
                Origin::Rv(2),
            ),
            Sourced::new(
                Item::Ins(Instruction::Mv {
                    a: TReg::T5,
                    b: TReg::T5,
                }),
                Origin::Rv(3),
            ),
            Sourced::new(
                Item::Ins(Instruction::Add {
                    a: TReg::T3,
                    b: TReg::T4,
                }),
                Origin::Rv(4),
            ),
        ];
        assert_eq!(eliminate(&mut items), 1);
        assert_eq!(
            items.iter().map(|s| s.origin).collect::<Vec<_>>(),
            vec![Origin::Rv(2), Origin::Rv(4)]
        );
    }
}
