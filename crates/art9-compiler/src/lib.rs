//! # `art9-compiler` — the software-level compiling framework
//!
//! Implements the paper's §III-A pipeline (Fig. 2): given an RV32
//! assembly program (the output boundary of a stock binary toolchain),
//! produce an executable ART-9 ternary program through
//!
//! 1. **instruction mapping** — each RV32 instruction becomes a
//!    sequence of ternary instructions ([`mapping`]), with runtime
//!    "primitive sequences" for multiply/divide/shifts ([`runtime`]);
//! 2. **operand conversion** — address re-scaling from byte to word
//!    addressing ([`analysis`]) and 32→9 register renaming with TDM
//!    spill slots ([`regalloc`]);
//! 3. **redundancy checking** — peephole elimination of the mapping's
//!    dead artifacts ([`redundancy`]) followed by branch-target
//!    re-calculation and relaxation ([`relax`]).
//!
//! ## Quick start
//!
//! ```
//! use art9_compiler::translate;
//! use art9_sim::SimBuilder;
//! use rv32::parse_program;
//!
//! let rv = parse_program("
//!     li   a0, 10
//!     li   a1, 0
//! loop:
//!     add  a1, a1, a0
//!     addi a0, a0, -1
//!     bnez a0, loop
//!     ebreak
//! ")?;
//!
//! let out = translate(&rv)?;
//! let mut sim = SimBuilder::new(&out.program).build_functional();
//! sim.run(100_000)?;
//! // a1 lives wherever the renamer put it; ask the translation.
//! assert_eq!(out.read_rv_reg(sim.state(), "a1".parse()?), 55);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod error;
pub mod items;
pub mod mapping;
pub mod redundancy;
pub mod regalloc;
pub mod relax;
mod report;
pub mod runtime;

use art9_isa::Program;
use rv32::{Reg, Rv32Program};
use ternary::Word9;

use crate::analysis::{analyze, DATA_WORD_BASE};
use crate::items::{Item, Sourced};
use crate::mapping::Mapper;
use crate::regalloc::{allocate, Allocation, Loc};
use crate::relax::resolve;
use crate::runtime::builtin_items;

pub use error::CompileError;
pub use items::Origin;
pub use regalloc::Loc as RegisterLocation;
pub use report::{SoftwareReport, Warning, WarningKind};

/// Default TDM size assumed by translated programs (matches the
/// 256-word memories of Table V).
pub const DEFAULT_TDM_WORDS: usize = 256;

/// A finished translation: the executable ART-9 program plus the
/// renaming decisions and statistics.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The executable ART-9 program (text + initial TDM image).
    pub program: Program,
    /// Where each RV32 register was placed.
    pub allocation: Allocation,
    /// Counts, expansion factor and semantic warnings.
    pub report: SoftwareReport,
    /// ART-9 address where the translation of RV32 instruction `k`
    /// begins; one extra entry marks the end of the program body
    /// (before the linked builtins).
    rv_boundaries: Vec<usize>,
    /// Per-instruction provenance: `provenance[a]` names the source
    /// construct `program.text()[a]` was emitted for.
    provenance: Vec<Origin>,
}

impl Translation {
    /// Reads the value an RV32 register holds after a run, wherever the
    /// renamer placed it (direct ternary register or TDM spill slot).
    ///
    /// # Panics
    ///
    /// Panics if `reg` never appeared in the translated program.
    pub fn read_rv_reg(&self, state: &art9_sim_state::CoreState, reg: Reg) -> i64 {
        match self.allocation.loc(reg) {
            Loc::Zero => 0,
            Loc::Direct(t) => state.reg(t).to_i64(),
            Loc::Spill(s) => state
                .tdm
                .read(s as usize)
                .expect("spill slot in range")
                .to_i64(),
        }
    }

    /// ART-9 address where the translation of RV32 instruction `k`
    /// starts (for setting ternary breakpoints on source lines).
    pub fn address_of_rv(&self, k: usize) -> Option<usize> {
        self.rv_boundaries.get(k).copied()
    }

    /// The provenance map: one [`Origin`] per emitted instruction,
    /// threaded through instruction mapping, redundancy elimination and
    /// relaxation. `provenance()[a]` tells which RV32 instruction (or
    /// prologue / halt / builtin) produced `program.text()[a]` — the
    /// sync-point structure the cross-ISA lockstep oracle drives on.
    pub fn provenance(&self) -> &[Origin] {
        &self.provenance
    }

    /// Provenance of the instruction at ART-9 address `addr`.
    pub fn origin_of(&self, addr: usize) -> Option<Origin> {
        self.provenance.get(addr).copied()
    }

    /// Renders a side-by-side listing: each RV32 instruction followed
    /// by the ternary sequence it mapped to — the inspectable artifact
    /// of the paper's Fig. 2 flow.
    pub fn listing(&self, source: &Rv32Program) -> String {
        let mut out = String::new();
        let text = self.program.text();
        for (k, rv) in source.text().iter().enumerate() {
            let start = self.rv_boundaries.get(k).copied().unwrap_or(0);
            let end = self
                .rv_boundaries
                .get(k + 1)
                .copied()
                .unwrap_or(start)
                .max(start);
            out.push_str(&format!("; rv32 #{k}: {rv}\n"));
            for (addr, instr) in text.iter().enumerate().take(end).skip(start) {
                out.push_str(&format!("  {addr:4}: {instr}\n"));
            }
        }
        let body_end = self.rv_boundaries.last().copied().unwrap_or(text.len());
        if body_end < text.len() {
            out.push_str("; runtime library (__mul/__div/__rem)\n");
            for (addr, instr) in text.iter().enumerate().skip(body_end) {
                out.push_str(&format!("  {addr:4}: {instr}\n"));
            }
        }
        out
    }
}

/// Re-export of the simulator state type used by
/// [`Translation::read_rv_reg`] (kept in a private-looking module path
/// to avoid a hard public dependency elsewhere).
pub mod art9_sim_state {
    pub use art9_sim::CoreState;
}

/// Translates an RV32 program to ART-9 with the default TDM size.
///
/// # Errors
///
/// Any [`CompileError`]: untranslatable constructs are rejected, never
/// silently miscompiled.
pub fn translate(program: &Rv32Program) -> Result<Translation, CompileError> {
    translate_with_tdm(program, DEFAULT_TDM_WORDS)
}

/// Translates with an explicit TDM size (the stack convention and data
/// placement depend on it).
///
/// # Errors
///
/// See [`translate`].
pub fn translate_with_tdm(
    program: &Rv32Program,
    tdm_words: usize,
) -> Result<Translation, CompileError> {
    translate_with_options(
        program,
        TranslateOptions {
            tdm_words,
            redundancy: true,
        },
    )
}

/// Tuning knobs for [`translate_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct TranslateOptions {
    /// TDM size in words (data placement + stack convention).
    pub tdm_words: usize,
    /// Run the redundancy-checking pass (Fig. 2's last stage). Turning
    /// it off quantifies the pass — the ablation benches use this.
    pub redundancy: bool,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        Self {
            tdm_words: DEFAULT_TDM_WORDS,
            redundancy: true,
        }
    }
}

/// Translation with explicit options.
///
/// # Errors
///
/// See [`translate`].
pub fn translate_with_options(
    program: &Rv32Program,
    options: TranslateOptions,
) -> Result<Translation, CompileError> {
    let tdm_words = options.tdm_words;
    let analysis = analyze(program)?;
    let alloc = allocate(program)?;

    // Instruction mapping.
    let mapper = Mapper::new(&alloc, &analysis, tdm_words);
    let mut out = mapper.map_program(program.text())?;

    // Link the runtime builtins the program needs, each body tagged
    // with its builtin origin.
    let body_items = out.items.len();
    for id in out.used_builtins.iter().copied().collect::<Vec<_>>() {
        out.items.extend(
            builtin_items(id, &mut out.labels)
                .into_iter()
                .map(|item| Sourced::new(item, Origin::Builtin(id))),
        );
    }
    let builtin_items_len = out.items.len() - body_items;

    // Redundancy checking.
    let removed = if options.redundancy {
        redundancy::eliminate(&mut out.items)
    } else {
        0
    };

    // Branch re-targeting / relaxation.
    let resolved = resolve(&out.items)?;

    // Data image: runtime scratch + converted data words.
    let mut data = vec![Word9::ZERO; DATA_WORD_BASE as usize];
    for (i, w) in program.data().iter().enumerate() {
        let v = *w as i32 as i64;
        let word =
            Word9::from_i64(v).map_err(|_| CompileError::ConstantRange { at: i, value: v })?;
        data.push(word);
    }

    let total_instructions = resolved.text.len();
    // Approximate the body/builtin split from pre-elimination counts.
    let pre_total: usize = out
        .items
        .iter()
        .filter(|s| !matches!(s.item, Item::Mark(_)))
        .count();
    let builtin_share = if pre_total == 0 {
        0.0
    } else {
        builtin_items_len as f64 / (pre_total + removed) as f64
    };
    let builtin_instructions = (total_instructions as f64 * builtin_share).round() as usize;

    let report = SoftwareReport {
        rv32_instructions: program.text().len(),
        art9_body_instructions: total_instructions - builtin_instructions,
        art9_builtin_instructions: builtin_instructions,
        redundant_removed: removed,
        data_words: program.data().len(),
        warnings: out.warnings.clone(),
    };

    // RV32-index → ART-9-address boundaries (for listings/breakpoints).
    let rv_boundaries: Vec<usize> = (0..=program.text().len())
        .map(|k| {
            resolved
                .addresses
                .get(&crate::items::Label::Rv(k))
                .copied()
                .unwrap_or(resolved.text.len())
        })
        .collect();

    Ok(Translation {
        program: Program::new(resolved.text, data, Default::default(), Vec::new()),
        allocation: alloc,
        report,
        rv_boundaries,
        provenance: resolved.origins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_sim::SimBuilder;
    use rv32::parse_program;

    fn run_translated(src: &str) -> (Translation, art9_sim::FunctionalSim) {
        let rv = parse_program(src).unwrap();
        let t = translate(&rv).unwrap();
        let mut sim = SimBuilder::new(&t.program).build_functional();
        sim.run(1_000_000).unwrap();
        (t, sim)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (t, sim) = run_translated("li a0, 100\nli a1, -42\nadd a2, a0, a1\nebreak\n");
        assert_eq!(t.read_rv_reg(sim.state(), "a2".parse().unwrap()), 58);
    }

    #[test]
    fn loop_matches_rv32() {
        let src = "
            li a0, 10
            li a1, 0
        loop:
            add a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            ebreak
        ";
        let (t, sim) = run_translated(src);
        // Cross-check against the RV32 machine.
        let rv = parse_program(src).unwrap();
        let mut m = rv32::Machine::new(&rv);
        m.run(100_000).unwrap();
        assert_eq!(
            t.read_rv_reg(sim.state(), "a1".parse().unwrap()),
            m.reg("a1".parse().unwrap()) as i64
        );
    }

    #[test]
    fn memory_translation() {
        let src = "
            .data
            arr: .word 5, -3, 9, 0
            .text
            la   a0, arr
            lw   a1, 0(a0)
            lw   a2, 4(a0)
            add  a1, a1, a2
            sw   a1, 12(a0)
            ebreak
        ";
        let (t, sim) = run_translated(src);
        assert_eq!(t.read_rv_reg(sim.state(), "a1".parse().unwrap()), 2);
        // arr[3] lives at TDM word DATA_WORD_BASE + 3.
        assert_eq!(sim.state().tdm.read(16 + 3).unwrap().to_i64(), 2);
    }

    #[test]
    fn multiplication_via_builtin() {
        let (t, sim) = run_translated("li a0, 37\nli a1, -21\nmul a2, a0, a1\nebreak\n");
        assert_eq!(t.read_rv_reg(sim.state(), "a2".parse().unwrap()), -777);
    }

    #[test]
    fn division_via_builtin() {
        let (t, sim) =
            run_translated("li a0, 100\nli a1, 7\ndiv a2, a0, a1\nrem a3, a0, a1\nebreak\n");
        assert_eq!(t.read_rv_reg(sim.state(), "a2".parse().unwrap()), 14);
        assert_eq!(t.read_rv_reg(sim.state(), "a3".parse().unwrap()), 2);
    }

    #[test]
    fn division_signs_match_rv32() {
        for (a, b) in [(-100i64, 7i64), (100, -7), (-100, -7), (99, 9)] {
            let src = format!("li a0, {a}\nli a1, {b}\ndiv a2, a0, a1\nrem a3, a0, a1\nebreak\n");
            let (t, sim) = run_translated(&src);
            assert_eq!(
                t.read_rv_reg(sim.state(), "a2".parse().unwrap()),
                a / b,
                "{a}/{b}"
            );
            assert_eq!(
                t.read_rv_reg(sim.state(), "a3".parse().unwrap()),
                a % b,
                "{a}%{b}"
            );
        }
    }

    #[test]
    fn calls_and_stack() {
        let src = "
            li   a0, 5
            call double
            call double
            ebreak
        double:
            addi sp, sp, -4
            sw   ra, 0(sp)
            add  a0, a0, a0
            lw   ra, 0(sp)
            addi sp, sp, 4
            ret
        ";
        let (t, sim) = run_translated(src);
        assert_eq!(t.read_rv_reg(sim.state(), "a0".parse().unwrap()), 20);
    }

    #[test]
    fn division_by_zero_matches_rv32_convention() {
        // RISC-V: x/0 = -1 (all ones), x%0 = x. The builtin must agree
        // so the cross-ISA lockstep oracle has no blessed divergences.
        for a in [0i64, 7, -7, 100] {
            let src = format!("li a0, {a}\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\nebreak\n");
            let (t, sim) = run_translated(&src);
            assert_eq!(
                t.read_rv_reg(sim.state(), "a2".parse().unwrap()),
                -1,
                "{a}/0"
            );
            assert_eq!(
                t.read_rv_reg(sim.state(), "a3".parse().unwrap()),
                a,
                "{a}%0"
            );
        }
    }

    #[test]
    fn provenance_covers_every_instruction_and_respects_boundaries() {
        let src = "
            addi sp, sp, -4
            li   a0, 3
            li   a1, 4
            mul  a2, a0, a1
            sw   a2, 0(sp)
            ebreak
        ";
        let rv = parse_program(src).unwrap();
        let t = translate(&rv).unwrap();
        let prov = t.provenance();
        assert_eq!(prov.len(), t.program.text().len());

        // The sp prologue precedes the first boundary and is tagged.
        let b0 = t.address_of_rv(0).unwrap();
        assert!(b0 > 0, "uses_sp forces a prologue");
        for (a, o) in prov.iter().enumerate().take(b0) {
            assert_eq!(*o, Origin::Prologue, "address {a}");
        }
        // Between boundaries k and k+1, every instruction is tagged
        // with Rv(k).
        for k in 0..rv.text().len() {
            let (lo, hi) = (t.address_of_rv(k).unwrap(), t.address_of_rv(k + 1).unwrap());
            for (a, o) in prov.iter().enumerate().take(hi).skip(lo) {
                assert_eq!(*o, Origin::Rv(k), "address {a} in rv #{k}");
            }
        }
        // After the body: the halt sequence, then the builtin bodies.
        let body_end = t.address_of_rv(rv.text().len()).unwrap();
        assert!(prov[body_end..]
            .iter()
            .all(|o| matches!(o, Origin::Halt | Origin::Builtin(_))));
        assert!(
            prov.iter()
                .any(|o| matches!(o, Origin::Builtin(items::BuiltinId::Mul))),
            "mul links __mul"
        );
        // origin_of agrees with the slice view.
        assert_eq!(t.origin_of(0), Some(prov[0]));
        assert_eq!(t.origin_of(prov.len()), None);
    }

    #[test]
    fn provenance_survives_redundancy_and_relaxation() {
        // A long program forces branch relaxation (long forms expand to
        // several instructions — all must inherit the branch's origin),
        // and rd==rs1 adds exercise redundancy deletions.
        let mut src = String::from("li a0, 1\nli a1, 0\n");
        src.push_str("top:\n");
        for _ in 0..60 {
            src.push_str("add a1, a1, a0\n");
        }
        src.push_str("addi a0, a0, -1\nbgtz a0, top\nebreak\n");
        let rv = parse_program(&src).unwrap();
        let t = translate(&rv).unwrap();
        assert_eq!(t.provenance().len(), t.program.text().len());
        for k in 0..rv.text().len() {
            let (lo, hi) = (t.address_of_rv(k).unwrap(), t.address_of_rv(k + 1).unwrap());
            for a in lo..hi {
                assert_eq!(t.provenance()[a], Origin::Rv(k));
            }
        }
    }

    #[test]
    fn constant_out_of_range_rejected() {
        let rv = parse_program("li a0, 100000\nebreak\n").unwrap();
        assert!(matches!(
            translate(&rv),
            Err(CompileError::ConstantRange { .. })
        ));
    }

    #[test]
    fn data_out_of_range_rejected() {
        let rv = parse_program(".data\nv: .word 99999\n.text\nnop\nebreak\n").unwrap();
        assert!(matches!(
            translate(&rv),
            Err(CompileError::ConstantRange { .. })
        ));
    }

    #[test]
    fn report_counts_are_consistent() {
        let (t, _) = run_translated("li a0, 3\nli a1, 4\nmul a2, a0, a1\nebreak\n");
        let r = &t.report;
        assert_eq!(r.rv32_instructions, 4);
        assert!(r.art9_builtin_instructions > 0, "mul links __mul");
        assert_eq!(
            r.art9_instructions(),
            t.program.text().len(),
            "report total must match emitted text"
        );
        assert!(r.expansion() > 1.0);
    }

    #[test]
    fn slt_family() {
        let (t, sim) = run_translated(
            "li a0, -3\nli a1, 5\nslt a2, a0, a1\nslt a3, a1, a0\nseqz a4, a2\nebreak\n",
        );
        assert_eq!(t.read_rv_reg(sim.state(), "a2".parse().unwrap()), 1);
        assert_eq!(t.read_rv_reg(sim.state(), "a3".parse().unwrap()), 0);
        assert_eq!(t.read_rv_reg(sim.state(), "a4".parse().unwrap()), 0);
    }

    #[test]
    fn listing_covers_every_instruction_in_order() {
        let src = "li a0, 3\nli a1, 4\nmul a2, a0, a1\nebreak\n";
        let rv = parse_program(src).unwrap();
        let t = translate(&rv).unwrap();
        let listing = t.listing(&rv);
        // Every RV32 source line appears…
        for k in 0..rv.text().len() {
            assert!(listing.contains(&format!("; rv32 #{k}:")), "{listing}");
        }
        // …the runtime section exists (mul links __mul)…
        assert!(listing.contains("runtime library"));
        // …and every emitted ART-9 address appears exactly once.
        for addr in 0..t.program.text().len() {
            assert_eq!(
                listing.matches(&format!("  {addr:4}: ")).count(),
                1,
                "address {addr} in listing"
            );
        }
        // Boundaries are monotone.
        let bounds: Vec<usize> = (0..=rv.text().len())
            .map(|k| t.address_of_rv(k).unwrap())
            .collect();
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn branch_variants_match_rv32() {
        for (op, a, b) in [
            ("beq", 5i64, 5i64),
            ("beq", 5, 6),
            ("bne", 5, 6),
            ("bne", 5, 5),
            ("blt", -1, 1),
            ("blt", 1, -1),
            ("bge", 4, 4),
            ("bge", 3, 4),
        ] {
            let src = format!(
                "li a0, {a}\nli a1, {b}\n{op} a0, a1, yes\nli a2, 0\nebreak\nyes:\nli a2, 1\nebreak\n"
            );
            let rv = parse_program(&src).unwrap();
            let mut m = rv32::Machine::new(&rv);
            m.run(10_000).unwrap();
            let (t, sim) = run_translated(&src);
            assert_eq!(
                t.read_rv_reg(sim.state(), "a2".parse().unwrap()),
                m.reg("a2".parse().unwrap()) as i64,
                "{op} {a} {b}"
            );
        }
    }
}
