//! Errors of the compiling framework.

use std::error::Error;
use std::fmt;

/// Why a translation was rejected.
///
/// The framework performs *semantic narrowing* (DESIGN.md §3.3): the
/// 32-bit program must live within the 9-trit machine's means. Anything
/// it cannot prove translatable is rejected loudly rather than
/// miscompiled silently.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// A constant cannot be represented in a 9-trit word.
    ConstantRange {
        /// Index of the RV32 instruction.
        at: usize,
        /// The constant.
        value: i64,
    },
    /// A register is used both as a pointer and as a scalar — the
    /// flow-insensitive address re-scaling cannot type it.
    MixedPointerUse {
        /// The register's ABI name.
        reg: String,
    },
    /// A memory offset or pointer stride is not a multiple of 4, so it
    /// cannot be re-scaled to word addressing.
    UnalignedAddress {
        /// Index of the RV32 instruction.
        at: usize,
        /// The byte offset/stride in question.
        offset: i64,
    },
    /// A sub-word (byte/halfword) memory access — the ternary TDM is
    /// word-addressed; use word accesses in translatable sources.
    SubWordAccess {
        /// Index of the RV32 instruction.
        at: usize,
        /// The mnemonic.
        mnemonic: &'static str,
    },
    /// More distinct registers are live than direct slots + spill slots.
    TooManyRegisters {
        /// Registers that could not be placed.
        overflow: Vec<String>,
    },
    /// An RV32 instruction the framework does not map.
    Unsupported {
        /// Index of the RV32 instruction.
        at: usize,
        /// The mnemonic.
        mnemonic: &'static str,
    },
    /// Branch relaxation failed to converge (pathological layout).
    RelaxationDiverged,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ConstantRange { at, value } => write!(
                f,
                "instruction {at}: constant {value} exceeds the 9-trit range (-9841..=9841)"
            ),
            CompileError::MixedPointerUse { reg } => write!(
                f,
                "register {reg} is used both as a pointer and as a scalar; \
                 the address re-scaler cannot type it"
            ),
            CompileError::UnalignedAddress { at, offset } => write!(
                f,
                "instruction {at}: byte offset {offset} is not word-aligned"
            ),
            CompileError::SubWordAccess { at, mnemonic } => write!(
                f,
                "instruction {at}: {mnemonic} is a sub-word access; the ternary TDM is word-addressed"
            ),
            CompileError::TooManyRegisters { overflow } => write!(
                f,
                "register pressure exceeds 5 direct + 8 spill slots; unplaced: {}",
                overflow.join(", ")
            ),
            CompileError::Unsupported { at, mnemonic } => {
                write!(f, "instruction {at}: {mnemonic} is not mappable to ART-9")
            }
            CompileError::RelaxationDiverged => {
                write!(f, "branch relaxation did not converge")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CompileError::ConstantRange {
            at: 3,
            value: 100000,
        };
        assert!(e.to_string().contains("100000"));
        assert!(e.to_string().contains("9841"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}
