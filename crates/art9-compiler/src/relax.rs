//! Branch relaxation and label resolution — the framework's
//! "re-calculates the branch target addresses" step.
//!
//! Conditional branches reach ±40 instructions (imm4), JAL ±121
//! (imm5). The relaxer starts optimistic (everything short) and
//! monotonically promotes out-of-range control transfers to their long
//! forms until the layout stabilizes:
//!
//! * long jump: `LUI t8, hi; LI t8, lo; JALR link, t8, 0` (absolute);
//! * long branch: the condition is inverted to skip a long jump.
//!
//! Promotion is monotone, so the fixpoint exists and is reached in at
//! most `items` iterations.

use std::collections::BTreeMap;

use art9_isa::{Instruction, TReg};
use ternary::{Trits, Word9};

use crate::error::CompileError;
use crate::items::{Item, Label, Origin, Sourced};

/// Scratch register used by long forms (also the builtin link).
const SCRATCH: TReg = TReg::T8;

/// Resolved program: final instructions plus the label address map
/// and the per-instruction provenance.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// The final instruction stream.
    pub text: Vec<Instruction>,
    /// Address of every label.
    pub addresses: BTreeMap<Label, usize>,
    /// `origins[a]` is the provenance of `text[a]` — every instruction
    /// a relaxed item expands to inherits that item's origin, so the
    /// map stays exact through short/long form selection.
    pub origins: Vec<Origin>,
}

/// Lengths chosen for each item in the current relaxation state.
fn item_len(item: &Item, long: bool) -> usize {
    match item {
        Item::Mark(_) => 0,
        Item::Ins(_) => 1,
        Item::Branch { .. } => {
            if long {
                4
            } else {
                1
            }
        }
        Item::Jump { .. } => {
            if long {
                3
            } else {
                1
            }
        }
        Item::LabelConst { .. } => 2,
    }
}

/// Relaxes and resolves the item stream into executable instructions.
///
/// # Errors
///
/// [`CompileError::RelaxationDiverged`] if the fixpoint is not reached
/// (cannot happen with monotone promotion; kept as a defensive bound).
pub fn resolve(items: &[Sourced]) -> Result<Resolved, CompileError> {
    let mut long = vec![false; items.len()];

    for _round in 0..items.len().max(4) {
        // Lay out under the current length assignment.
        let mut addr = 0usize;
        let mut addresses: BTreeMap<Label, usize> = BTreeMap::new();
        let mut item_addr = Vec::with_capacity(items.len());
        for (i, sourced) in items.iter().enumerate() {
            item_addr.push(addr);
            if let Item::Mark(l) = &sourced.item {
                addresses.insert(*l, addr);
            }
            addr += item_len(&sourced.item, long[i]);
        }

        // Promote anything out of range.
        let mut changed = false;
        for (i, sourced) in items.iter().enumerate() {
            if long[i] {
                continue;
            }
            let (target, reach): (&Label, i64) = match &sourced.item {
                Item::Branch { target, .. } => (target, 40),
                Item::Jump { target, .. } => (target, 121),
                _ => continue,
            };
            let t = *addresses
                .get(target)
                .unwrap_or_else(|| panic!("unresolved label {target:?}"));
            let delta = t as i64 - item_addr[i] as i64;
            if delta < -reach || delta > reach {
                long[i] = true;
                changed = true;
            }
        }

        if !changed {
            // Stable: emit.
            return Ok(emit(items, &long, &addresses, &item_addr));
        }
    }
    Err(CompileError::RelaxationDiverged)
}

fn emit(
    items: &[Sourced],
    long: &[bool],
    addresses: &BTreeMap<Label, usize>,
    item_addr: &[usize],
) -> Resolved {
    let mut text = Vec::new();
    let mut origins = Vec::new();
    for (i, sourced) in items.iter().enumerate() {
        let here = item_addr[i] as i64;
        match &sourced.item {
            Item::Mark(_) => {}
            Item::Ins(ins) => text.push(*ins),
            Item::LabelConst { reg, target } => {
                let addr = addresses[target] as i64;
                let (hi, lo) = art9_isa::asm::split_hi_lo(addr);
                text.push(Instruction::Lui {
                    a: *reg,
                    imm: Trits::<4>::from_i64(hi).expect("address hi fits"),
                });
                text.push(Instruction::Li {
                    a: *reg,
                    imm: Trits::<5>::from_i64(lo).expect("address lo fits"),
                });
            }
            Item::Jump { link, target } => {
                let t = addresses[target] as i64;
                if long[i] {
                    emit_long_jump(&mut text, *link, t);
                } else {
                    text.push(Instruction::Jal {
                        a: *link,
                        offset: Trits::<5>::from_i64(t - here).expect("short jump fits"),
                    });
                }
            }
            Item::Branch {
                eq,
                breg,
                cond,
                target,
            } => {
                let t = addresses[target] as i64;
                if long[i] {
                    // Inverted branch skips the 3-instruction long jump.
                    let skip = Trits::<4>::from_i64(4).expect("4 fits imm4");
                    let inv = if *eq {
                        Instruction::Bne {
                            b: *breg,
                            cond: *cond,
                            offset: skip,
                        }
                    } else {
                        Instruction::Beq {
                            b: *breg,
                            cond: *cond,
                            offset: skip,
                        }
                    };
                    text.push(inv);
                    emit_long_jump(&mut text, SCRATCH, t);
                } else {
                    let offset = Trits::<4>::from_i64(t - here).expect("short branch fits");
                    let b = if *eq {
                        Instruction::Beq {
                            b: *breg,
                            cond: *cond,
                            offset,
                        }
                    } else {
                        Instruction::Bne {
                            b: *breg,
                            cond: *cond,
                            offset,
                        }
                    };
                    text.push(b);
                }
            }
        }
        // Every instruction the item expanded to inherits its origin.
        origins.resize(text.len(), sourced.origin);
    }
    Resolved {
        text,
        addresses: addresses.clone(),
        origins,
    }
}

fn emit_long_jump(text: &mut Vec<Instruction>, link: TReg, target: i64) {
    debug_assert!((0..=Word9::MAX_VALUE).contains(&target));
    let (hi, lo) = art9_isa::asm::split_hi_lo(target);
    text.push(Instruction::Lui {
        a: SCRATCH,
        imm: Trits::<4>::from_i64(hi).expect("address hi fits"),
    });
    text.push(Instruction::Li {
        a: SCRATCH,
        imm: Trits::<5>::from_i64(lo).expect("address lo fits"),
    });
    text.push(Instruction::Jalr {
        a: link,
        b: SCRATCH,
        offset: Trits::ZERO,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::Label;
    use ternary::Trit;

    fn tag(item: Item) -> Sourced {
        Sourced::new(item, Origin::Rv(0))
    }

    fn nop() -> Sourced {
        tag(Item::Ins(art9_isa::NOP))
    }

    #[test]
    fn short_branch_resolves_directly() {
        let items = vec![
            tag(Item::Mark(Label::Rv(0))),
            nop(),
            tag(Item::Branch {
                eq: true,
                breg: TReg::T3,
                cond: Trit::Z,
                target: Label::Rv(0),
            }),
        ];
        let r = resolve(&items).unwrap();
        assert_eq!(r.text.len(), 2);
        match r.text[1] {
            Instruction::Beq { offset, .. } => assert_eq!(offset.to_i64(), -1),
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn far_branch_promotes_to_long_form() {
        let mut items = vec![tag(Item::Mark(Label::Rv(0)))];
        for _ in 0..100 {
            items.push(nop());
        }
        items.push(tag(Item::Branch {
            eq: true,
            breg: TReg::T3,
            cond: Trit::Z,
            target: Label::Rv(0),
        }));
        let r = resolve(&items).unwrap();
        // 100 nops + inverted branch + LUI/LI/JALR.
        assert_eq!(r.text.len(), 104);
        match r.text[100] {
            Instruction::Bne { offset, .. } => assert_eq!(offset.to_i64(), 4),
            ref other => panic!("expected inverted BNE, got {other}"),
        }
        assert!(matches!(r.text[103], Instruction::Jalr { .. }));
    }

    #[test]
    fn far_jump_promotes() {
        let mut items = vec![tag(Item::Mark(Label::Rv(0)))];
        for _ in 0..200 {
            items.push(nop());
        }
        items.push(tag(Item::Jump {
            link: TReg::T8,
            target: Label::Rv(0),
        }));
        let r = resolve(&items).unwrap();
        assert_eq!(r.text.len(), 203);
        // Long jump lands on address 0 via LUI 0 + LI 0 + JALR.
        match (r.text[200], r.text[201], r.text[202]) {
            (
                Instruction::Lui { imm, .. },
                Instruction::Li { imm: lo, .. },
                Instruction::Jalr { .. },
            ) => {
                assert_eq!(imm.to_i64() * 243 + lo.to_i64(), 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn label_const_materializes_address() {
        let items = vec![
            nop(),
            tag(Item::LabelConst {
                reg: TReg::T8,
                target: Label::Rv(9),
            }),
            nop(),
            tag(Item::Mark(Label::Rv(9))),
            nop(),
        ];
        let r = resolve(&items).unwrap();
        // Addresses: nop=0, const=1..2, nop=3, mark at 4, nop=4.
        match (r.text[1], r.text[2]) {
            (Instruction::Lui { imm, .. }, Instruction::Li { imm: lo, .. }) => {
                assert_eq!(imm.to_i64() * 243 + lo.to_i64(), 4);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.addresses[&Label::Rv(9)], 4);
    }

    #[test]
    fn growth_cascade_converges() {
        // A branch just at the edge: promoting one jump pushes another
        // out of range; relaxation must iterate.
        let mut items = vec![tag(Item::Mark(Label::Rv(0)))];
        for _ in 0..39 {
            items.push(nop());
        }
        items.push(tag(Item::Branch {
            eq: true,
            breg: TReg::T3,
            cond: Trit::Z,
            target: Label::Rv(0),
        }));
        items.push(tag(Item::Branch {
            eq: true,
            breg: TReg::T3,
            cond: Trit::Z,
            target: Label::Rv(0),
        }));
        let r = resolve(&items).unwrap();
        // First branch at 39 (fits: -39), second at 40 (fits exactly -40).
        assert_eq!(r.text.len(), 41);
    }
}
