//! Operand conversion, part 1: address re-scaling analysis.
//!
//! RV32 is byte-addressed; the ART-9 TIM/TDM are word-addressed
//! (paper §IV-A). The framework therefore re-scales every address
//! computation by 4: data symbols move to TDM word addresses, memory
//! offsets divide by 4, and pointer strides divide by 4. To know *what*
//! to re-scale, this pass classifies registers flow-insensitively:
//!
//! * a register is a **pointer** if it is the base of a load/store, is
//!   `sp`, or is copied/derived from a pointer;
//! * a `lui`+`addi` pair materializing an address inside the data
//!   section is an **address constant** (the expansion of `la`) — but
//!   only when its destination is pointer-typed, so numeric constants
//!   that merely look like addresses are left alone;
//! * a register defined by `slli rd, rs, 2` and consumed by a
//!   pointer-add is a **scaled index**; in the word-addressed domain
//!   the scaling disappears (`slli …, 2` becomes a plain move).
//!
//! Anything the classifier cannot type consistently is rejected with
//! [`CompileError::MixedPointerUse`] — translations are refused, never
//! silently wrong.

use std::collections::{BTreeMap, BTreeSet};

use rv32::{AluOp, Instr, Reg, Rv32Program, DATA_BASE};

use crate::error::CompileError;

/// First TDM word available to translated data (below this live the
/// runtime scratch and spill slots — see `regalloc`).
pub const DATA_WORD_BASE: i64 = 16;

/// Re-scaling action attached to an RV32 instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `lui` of an address pair: becomes "materialize word address"
    /// (the matching `addi` is absorbed — [`Action::Absorbed`]).
    AddressPair {
        /// The TDM word address the pair must produce.
        word_addr: i64,
    },
    /// The `addi` half of an address pair: emits nothing.
    Absorbed,
    /// Scale this `addi`'s immediate by 1/4 (pointer stride).
    ScaleStride,
    /// Scale this load/store offset by 1/4.
    ScaleOffset,
    /// This `slli rd, rs, 2` is an index scaling: emit a plain move.
    IndexToMove,
}

/// Result of the classification pass.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Pointer-typed registers.
    pub pointers: BTreeSet<Reg>,
    /// Per-instruction re-scaling actions.
    pub actions: BTreeMap<usize, Action>,
    /// Whether the program reads `sp` (the prologue must initialize it).
    pub uses_sp: bool,
}

/// Classifies registers and derives re-scaling actions.
///
/// # Errors
///
/// * [`CompileError::MixedPointerUse`] when a register is written both
///   as a pointer and as an unrelated scalar;
/// * [`CompileError::UnalignedAddress`] when an offset or stride is not
///   a multiple of 4.
pub fn analyze(program: &Rv32Program) -> Result<Analysis, CompileError> {
    let text = program.text();
    let data_bytes = 4 * program.data().len() as i64;

    // --- seed: pointer evidence ---------------------------------------
    let mut pointers: BTreeSet<Reg> = BTreeSet::new();
    pointers.insert(Reg::SP);
    for i in text {
        match i {
            Instr::Load { rs1, .. } | Instr::Store { rs1, .. } => {
                pointers.insert(*rs1);
            }
            Instr::Jalr { rs1, .. } if *rs1 != Reg::RA => {
                // Indirect jumps through computed addresses are code
                // pointers; they stay in the instruction-index domain
                // and are not rescaled. (Returns through ra are normal.)
            }
            _ => {}
        }
    }

    // --- propagate through copies and adds to fixpoint -----------------
    // Forward: derived-from-pointer is a pointer. Backward: the base a
    // pointer was derived from is a pointer (e.g. `add a3, a0, idx`
    // where a3 is a load base means a0 carries the address).
    loop {
        let mut changed = false;
        for i in text {
            match i {
                // addi rd, rs, k (covers mv): pointer flows both ways.
                Instr::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1,
                    ..
                } if !rs1.is_zero() => {
                    if pointers.contains(rs1) && !pointers.contains(rd) {
                        pointers.insert(*rd);
                        changed = true;
                    }
                    if pointers.contains(rd) && !pointers.contains(rs1) {
                        pointers.insert(*rs1);
                        changed = true;
                    }
                }
                Instr::Alu {
                    op: AluOp::Add,
                    rd,
                    rs1,
                    rs2,
                } => {
                    // Forward.
                    if (pointers.contains(rs1) || pointers.contains(rs2)) && !pointers.contains(rd)
                    {
                        pointers.insert(*rd);
                        changed = true;
                    }
                    // Backward: the addend that is not a scaled index
                    // must be the pointer.
                    if pointers.contains(rd) && !pointers.contains(rs1) && !pointers.contains(rs2) {
                        if defs_are_all_slli2(text, *rs2) && !defs_are_all_slli2(text, *rs1) {
                            pointers.insert(*rs1);
                            changed = true;
                        } else if defs_are_all_slli2(text, *rs1) && !defs_are_all_slli2(text, *rs2)
                        {
                            pointers.insert(*rs2);
                            changed = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // --- find scaled indices: slli rd, rs, 2 feeding pointer adds ------
    let mut index4: BTreeSet<Reg> = BTreeSet::new();
    for (k, i) in text.iter().enumerate() {
        if let Instr::Alu {
            op: AluOp::Add,
            rs1,
            rs2,
            ..
        } = i
        {
            for (p, idx) in [(rs1, rs2), (rs2, rs1)] {
                if pointers.contains(p) && !pointers.contains(idx) {
                    // The non-pointer addend must be a scaled index.
                    if defs_are_all_slli2(text, *idx) {
                        index4.insert(*idx);
                    } else {
                        return Err(CompileError::UnalignedAddress {
                            at: k,
                            offset: -1, // unknown dynamic stride
                        });
                    }
                }
            }
        }
    }

    // --- derive actions -------------------------------------------------
    let mut analysis = Analysis {
        pointers: pointers.clone(),
        actions: BTreeMap::new(),
        uses_sp: text.iter().any(|i| i.reads().contains(&Reg::SP)),
    };

    let mut skip_next_absorbed: Option<usize> = None;
    for (k, i) in text.iter().enumerate() {
        if skip_next_absorbed == Some(k) {
            continue;
        }
        match i {
            // la expansion: lui rd, H; addi rd, rd, L with a data address.
            Instr::Lui { rd, imm20 } if pointers.contains(rd) => {
                if let Some(Instr::AluImm {
                    op: AluOp::Add,
                    rd: rd2,
                    rs1,
                    imm,
                }) = text.get(k + 1)
                {
                    let value = ((*imm20 as i64) << 12) + *imm as i64;
                    let in_data =
                        value >= DATA_BASE as i64 && value <= DATA_BASE as i64 + data_bytes;
                    if rd2 == rd && rs1 == rd && in_data {
                        let byte_off = value - DATA_BASE as i64;
                        if byte_off % 4 != 0 {
                            return Err(CompileError::UnalignedAddress {
                                at: k,
                                offset: byte_off,
                            });
                        }
                        analysis.actions.insert(
                            k,
                            Action::AddressPair {
                                word_addr: DATA_WORD_BASE + byte_off / 4,
                            },
                        );
                        analysis.actions.insert(k + 1, Action::Absorbed);
                        skip_next_absorbed = Some(k + 1);
                        continue;
                    }
                }
                // A lui into a pointer register that is not an la pair
                // cannot be re-scaled.
                return Err(CompileError::MixedPointerUse {
                    reg: rd.abi_name().to_string(),
                });
            }
            Instr::AluImm {
                op: AluOp::Add,
                rd: _,
                rs1,
                imm,
            } if pointers.contains(rs1) && *imm != 0 => {
                if *imm % 4 != 0 {
                    return Err(CompileError::UnalignedAddress {
                        at: k,
                        offset: *imm as i64,
                    });
                }
                analysis.actions.insert(k, Action::ScaleStride);
            }
            Instr::Load { offset, .. } | Instr::Store { offset, .. } => {
                if *offset % 4 != 0 {
                    return Err(CompileError::UnalignedAddress {
                        at: k,
                        offset: *offset as i64,
                    });
                }
                if *offset != 0 {
                    analysis.actions.insert(k, Action::ScaleOffset);
                }
            }
            Instr::AluImm {
                op: AluOp::Sll,
                rd,
                imm: 2,
                ..
            } if index4.contains(rd) => {
                analysis.actions.insert(k, Action::IndexToMove);
            }
            _ => {}
        }
    }

    // --- consistency: pointers must not be produced by scalar ops ------
    for (k, i) in text.iter().enumerate() {
        if let Some(rd) = i.writes() {
            if pointers.contains(&rd) {
                let ok = match i {
                    Instr::AluImm { op: AluOp::Add, .. } => true,
                    Instr::Alu {
                        op: AluOp::Add,
                        rs1,
                        rs2,
                        ..
                    } => pointers.contains(rs1) || pointers.contains(rs2),
                    Instr::Lui { .. } => {
                        matches!(analysis.actions.get(&k), Some(Action::AddressPair { .. }))
                    }
                    Instr::Load { .. } => false, // loading a pointer from memory: untyped
                    _ => false,
                };
                if !ok {
                    return Err(CompileError::MixedPointerUse {
                        reg: rd.abi_name().to_string(),
                    });
                }
            }
        }
    }

    Ok(analysis)
}

/// True when every definition of `reg` in the program is `slli reg, _, 2`.
fn defs_are_all_slli2(text: &[Instr], reg: Reg) -> bool {
    let mut any = false;
    for i in text {
        if i.writes() == Some(reg) {
            match i {
                Instr::AluImm {
                    op: AluOp::Sll,
                    imm: 2,
                    ..
                } => any = true,
                _ => return false,
            }
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv32::parse_program;

    #[test]
    fn classifies_la_and_strides() {
        let p = parse_program(
            "
            .data
            arr: .word 1, 2, 3, 4
            .text
            la   a0, arr
            lw   a1, 4(a0)
            addi a0, a0, 8
            sw   a1, 0(a0)
            ebreak
            ",
        )
        .unwrap();
        let a = analyze(&p).unwrap();
        assert!(a.pointers.contains(&"a0".parse().unwrap()));
        // la = lui(0) + addi(1); lw at 2 scales; addi at 3 scales.
        assert!(matches!(
            a.actions.get(&0),
            Some(Action::AddressPair { word_addr: 16 })
        ));
        assert_eq!(a.actions.get(&1), Some(&Action::Absorbed));
        assert_eq!(a.actions.get(&2), Some(&Action::ScaleOffset));
        assert_eq!(a.actions.get(&3), Some(&Action::ScaleStride));
    }

    #[test]
    fn scaled_index_becomes_move() {
        let p = parse_program(
            "
            .data
            arr: .word 0, 0, 0, 0, 0, 0, 0, 0
            .text
            la   a0, arr
            li   a1, 3
            slli a2, a1, 2
            add  a3, a0, a2
            lw   a4, 0(a3)
            ebreak
            ",
        )
        .unwrap();
        let a = analyze(&p).unwrap();
        assert_eq!(a.actions.get(&3), Some(&Action::IndexToMove));
        assert!(a.pointers.contains(&"a3".parse().unwrap()));
    }

    #[test]
    fn rejects_unaligned_offset() {
        let p = parse_program(".data\nv: .word 0\n.text\nla a0, v\nlw a1, 2(a0)\n").unwrap();
        assert!(matches!(
            analyze(&p),
            Err(CompileError::UnalignedAddress { .. })
        ));
    }

    #[test]
    fn rejects_unaligned_stride() {
        let p = parse_program(".data\nv: .word 0\n.text\nla a0, v\naddi a0, a0, 3\nlw a1, 0(a0)\n")
            .unwrap();
        assert!(matches!(
            analyze(&p),
            Err(CompileError::UnalignedAddress { .. })
        ));
    }

    #[test]
    fn rejects_raw_index_add() {
        // Adding an unscaled loop counter to a pointer cannot be typed.
        let p = parse_program(
            ".data\nv: .word 0\n.text\nla a0, v\nli a1, 1\nadd a0, a0, a1\nlw a2, 0(a0)\n",
        )
        .unwrap();
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn scalar_lookalike_constants_stay_scalar() {
        // 0x2004 looks like an address but is never pointer-used.
        let p = parse_program("li a0, 0x2004\nadd a1, a0, a0\nebreak\n").unwrap();
        let a = analyze(&p).unwrap();
        assert!(!a.pointers.contains(&"a0".parse().unwrap()));
        assert!(a.actions.is_empty());
    }

    #[test]
    fn rejects_pointer_loaded_from_memory() {
        // A pointer fetched from memory is untypeable flow-insensitively:
        // the re-scaler cannot know what scale the stored value has.
        let p =
            parse_program(".data\nptrs: .word 0\n.text\nla a0, ptrs\nlw a1, 0(a0)\nlw a2, 0(a1)\n")
                .unwrap();
        assert!(matches!(
            analyze(&p),
            Err(CompileError::MixedPointerUse { .. })
        ));
    }

    #[test]
    fn chained_pointer_copies_propagate() {
        let p = parse_program(
            ".data\narr: .word 1, 2\n.text\nla a0, arr\nmv a1, a0\nmv a2, a1\nlw a3, 4(a2)\n",
        )
        .unwrap();
        let a = analyze(&p).unwrap();
        for r in ["a0", "a1", "a2"] {
            assert!(a.pointers.contains(&r.parse().unwrap()), "{r} is a pointer");
        }
        assert_eq!(a.actions.get(&4), Some(&Action::ScaleOffset));
    }

    #[test]
    fn negative_strides_scale_too() {
        let p = parse_program(
            ".data\narr: .word 1, 2, 3\n.text\nla a0, arr\naddi a0, a0, 8\nlw a1, 0(a0)\naddi a0, a0, -4\nlw a2, 0(a0)\n",
        )
        .unwrap();
        let a = analyze(&p).unwrap();
        assert_eq!(a.actions.get(&2), Some(&Action::ScaleStride));
        assert_eq!(a.actions.get(&4), Some(&Action::ScaleStride));
    }

    #[test]
    fn sp_is_pointer_and_tracked() {
        let p = parse_program("addi sp, sp, -8\nsw ra, 4(sp)\nlw ra, 4(sp)\naddi sp, sp, 8\nret\n")
            .unwrap();
        let a = analyze(&p).unwrap();
        assert!(a.uses_sp);
        assert_eq!(a.actions.get(&0), Some(&Action::ScaleStride));
        assert_eq!(a.actions.get(&1), Some(&Action::ScaleOffset));
    }
}
