//! Instruction mapping: each RV32 instruction becomes a sequence of
//! ART-9 instructions (paper Fig. 2, "instruction mapping" +
//! "operand conversion").
//!
//! Highlights of the mapping (full table in DESIGN.md):
//!
//! * three-address RV32 ALU ops fold onto the two-address ART-9 forms
//!   with staging moves only when the destination differs from a source;
//! * compare-and-branch becomes the paper's COMP idiom: copy, `COMP`,
//!   then `BEQ`/`BNE` on the sign trit;
//! * `slt`-family results materialize the sign word into a 0/1 boolean
//!   with `AND t, t0` + `STI` (min-with-zero, negate);
//! * binary shifts are **not** ternary shifts: `slli k` expands to
//!   doubling `ADD`s (or a `__mul` call), `srli`/`srai` become `__div`
//!   calls — each recorded as a warning because the rounding of `srai`
//!   on negatives differs (trunc vs floor);
//! * `mul`/`div`/`rem` call the runtime library;
//! * constants materialize as `LUI`+`LI` (or `SUB r,r` zeroing + `LI`),
//!   exactly the paper's large-constant scheme (§IV-A).

use std::collections::BTreeSet;

use art9_isa::{Instruction, TReg};
use rv32::{AluOp, BranchOp, Instr, MulOp, Reg};
use ternary::{Trit, Trits};

use crate::analysis::{Action, Analysis};
use crate::error::CompileError;
use crate::items::{BuiltinId, Item, Label, Origin, Sourced};
use crate::regalloc::{Allocation, Loc, CALL_SAVE_T3, CALL_SAVE_T4};
use crate::report::{Warning, WarningKind};
use crate::runtime::LocalLabels;

/// Scratch register for operand staging and addresses.
const SCRATCH_A: TReg = TReg::T7;
/// Scratch register for branch compares, builtin linkage and results.
const SCRATCH_B: TReg = TReg::T8;

/// The mapper: walks the RV32 text and emits symbolic ART-9 items.
pub struct Mapper<'a> {
    alloc: &'a Allocation,
    analysis: &'a Analysis,
    tdm_words: usize,
    items: Vec<Sourced>,
    /// Provenance tag applied to every item pushed from here on.
    origin: Origin,
    pub(crate) used_builtins: BTreeSet<BuiltinId>,
    pub(crate) warnings: Vec<Warning>,
    pub(crate) labels: LocalLabels,
    warned: BTreeSet<WarningKind>,
}

impl<'a> Mapper<'a> {
    /// Creates a mapper over the given allocation/analysis.
    pub fn new(alloc: &'a Allocation, analysis: &'a Analysis, tdm_words: usize) -> Self {
        Self {
            alloc,
            analysis,
            tdm_words,
            items: Vec::new(),
            origin: Origin::Prologue,
            used_builtins: BTreeSet::new(),
            warnings: Vec::new(),
            labels: LocalLabels::new(),
            warned: BTreeSet::new(),
        }
    }

    /// Maps the whole program; returns the symbolic item stream
    /// (without the builtin bodies — the caller links those).
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] from unmappable instructions or constants.
    pub fn map_program(mut self, text: &[Instr]) -> Result<MapOutput, CompileError> {
        self.prologue();
        for (k, instr) in text.iter().enumerate() {
            self.origin = Origin::Rv(k);
            self.emit(Item::Mark(Label::Rv(k)));
            if self.analysis.actions.get(&k) == Some(&Action::Absorbed) {
                continue;
            }
            self.map_one(k, instr)?;
        }
        // A trailing mark so jumps past the last instruction resolve.
        self.origin = Origin::Halt;
        self.emit(Item::Mark(Label::Rv(text.len())));
        // Falling off the end halts (matches the RV32 machine).
        let halt = self.labels.fresh();
        self.emit(Item::Mark(halt));
        self.emit(Item::Jump {
            link: SCRATCH_B,
            target: halt,
        });
        Ok(MapOutput {
            items: self.items,
            used_builtins: self.used_builtins,
            warnings: self.warnings,
            labels: self.labels,
        })
    }

    /// Software conventions the translated program relies on: `t2` (sp)
    /// points at the top of TDM when the source uses a stack. (`t0`
    /// is zero because the TRF resets to zero and nothing writes it.)
    fn prologue(&mut self) {
        if self.analysis.uses_sp {
            self.emit_const(TReg::T2, self.tdm_words as i64);
        }
    }

    fn warn_once(&mut self, at: usize, kind: WarningKind) {
        if self.warned.insert(kind) {
            self.warnings.push(Warning { at, kind });
        }
    }

    /// Appends one item tagged with the current provenance origin.
    fn emit(&mut self, item: Item) {
        let origin = self.origin;
        self.items.push(Sourced::new(item, origin));
    }

    fn ins(&mut self, i: Instruction) {
        self.emit(Item::Ins(i));
    }

    /// Emits a staging move *unconditionally* — including `MV x, x`.
    /// The paper's flow is deliberately mechanical here: "the mapping
    /// and conversion steps may utilize additional instructions, the
    /// final redundancy checking phase finds the meaningless
    /// instructions" (§III-A). The self-moves this produces are exactly
    /// what the redundancy pass removes.
    fn mv(&mut self, a: TReg, b: TReg) {
        self.ins(Instruction::Mv { a, b });
    }

    fn imm3(v: i64) -> Trits<3> {
        Trits::<3>::from_i64(v).expect("imm3 range checked by caller")
    }

    /// Materializes an arbitrary in-range constant into `reg`
    /// (2 instructions; 1 for zero). LUI zeroes the low trits, LI
    /// splices the low five — the paper's large-constant scheme.
    fn emit_const(&mut self, reg: TReg, value: i64) {
        debug_assert!((-9841..=9841).contains(&value));
        if value == 0 {
            self.ins(Instruction::Sub { a: reg, b: reg });
            return;
        }
        let (hi, lo) = art9_isa::asm::split_hi_lo(value);
        if hi == 0 {
            self.ins(Instruction::Sub { a: reg, b: reg });
        } else {
            self.ins(Instruction::Lui {
                a: reg,
                imm: Trits::<4>::from_i64(hi).expect("hi fits imm4"),
            });
        }
        if lo != 0 || hi == 0 {
            self.ins(Instruction::Li {
                a: reg,
                imm: Trits::<5>::from_i64(lo).expect("lo fits imm5"),
            });
        }
    }

    /// Adds a (possibly large) constant to `reg` in place.
    fn emit_add_const(&mut self, reg: TReg, value: i64, scratch: TReg) {
        if value == 0 {
            return;
        }
        if (-13..=13).contains(&value) {
            self.ins(Instruction::Addi {
                a: reg,
                imm: Self::imm3(value),
            });
        } else if (-26..=26).contains(&value) {
            let half = value / 2;
            self.ins(Instruction::Addi {
                a: reg,
                imm: Self::imm3(half),
            });
            self.ins(Instruction::Addi {
                a: reg,
                imm: Self::imm3(value - half),
            });
        } else {
            self.emit_const(scratch, value);
            self.ins(Instruction::Add { a: reg, b: scratch });
        }
    }

    /// Stages the value of RV32 register `rv` into physical `phys`.
    fn read_to(&mut self, phys: TReg, rv: Reg) {
        match self.alloc.loc(rv) {
            Loc::Zero => self.mv(phys, TReg::T0),
            Loc::Direct(r) => self.mv(phys, r),
            Loc::Spill(s) => self.ins(Instruction::Load {
                a: phys,
                b: TReg::T0,
                offset: Self::imm3(s),
            }),
        }
    }

    /// The physical register already holding `rv`, or `fallback` after
    /// staging code. Zero maps to `t0` directly.
    fn read_in_place(&mut self, rv: Reg, fallback: TReg) -> TReg {
        match self.alloc.loc(rv) {
            Loc::Zero => TReg::T0,
            Loc::Direct(r) => r,
            Loc::Spill(s) => {
                self.ins(Instruction::Load {
                    a: fallback,
                    b: TReg::T0,
                    offset: Self::imm3(s),
                });
                fallback
            }
        }
    }

    /// Writes `phys` back to RV32 register `rv`'s home.
    fn write_from(&mut self, rv: Reg, phys: TReg) {
        match self.alloc.loc(rv) {
            Loc::Zero => {}
            Loc::Direct(r) => self.mv(r, phys),
            Loc::Spill(s) => self.ins(Instruction::Store {
                a: phys,
                b: TReg::T0,
                offset: Self::imm3(s),
            }),
        }
    }

    /// The register new results for `rv` should be computed in.
    fn dest_phys(&mut self, rv: Reg) -> TReg {
        match self.alloc.loc(rv) {
            Loc::Direct(r) => r,
            _ => SCRATCH_B,
        }
    }

    fn map_one(&mut self, k: usize, instr: &Instr) -> Result<(), CompileError> {
        use Instr::*;
        match instr {
            Lui { rd, imm20 } => {
                if let Some(Action::AddressPair { word_addr }) = self.analysis.actions.get(&k) {
                    let w = self.dest_phys(*rd);
                    self.emit_const(w, *word_addr);
                    self.write_from(*rd, w);
                    return Ok(());
                }
                let value = (*imm20 as i64) << 12;
                if !(-9841..=9841).contains(&value) {
                    return Err(CompileError::ConstantRange { at: k, value });
                }
                let w = self.dest_phys(*rd);
                self.emit_const(w, value);
                self.write_from(*rd, w);
            }
            Auipc { .. } => {
                return Err(CompileError::Unsupported {
                    at: k,
                    mnemonic: "auipc",
                });
            }
            AluImm { op, rd, rs1, imm } => self.map_alu_imm(k, *op, *rd, *rs1, *imm as i64)?,
            Alu { op, rd, rs1, rs2 } => self.map_alu(k, *op, *rd, *rs1, *rs2)?,
            MulDiv { op, rd, rs1, rs2 } => {
                let builtin = match op {
                    MulOp::Mul => BuiltinId::Mul,
                    MulOp::Div | MulOp::Divu => BuiltinId::Div,
                    MulOp::Rem | MulOp::Remu => BuiltinId::Rem,
                    MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => {
                        return Err(CompileError::Unsupported {
                            at: k,
                            mnemonic: "mulh",
                        })
                    }
                };
                if matches!(op, MulOp::Divu | MulOp::Remu) {
                    self.warn_once(k, WarningKind::UnsignedAsSigned);
                }
                self.call_builtin(builtin, *rd, *rs1, *rs2);
            }
            Load {
                op: rv32::LoadOp::Lw,
                rd,
                rs1,
                offset,
            } => {
                let off = self.scaled_offset(k, *offset)?;
                let base = self.read_in_place(*rs1, SCRATCH_A);
                let w = self.dest_phys(*rd);
                let (base, off) = self.fit_mem_offset(base, off);
                self.ins(Instruction::Load {
                    a: w,
                    b: base,
                    offset: Self::imm3(off),
                });
                self.write_from(*rd, w);
            }
            Load { op, .. } => {
                return Err(CompileError::SubWordAccess {
                    at: k,
                    mnemonic: match op {
                        rv32::LoadOp::Lb => "lb",
                        rv32::LoadOp::Lh => "lh",
                        rv32::LoadOp::Lbu => "lbu",
                        rv32::LoadOp::Lhu => "lhu",
                        rv32::LoadOp::Lw => unreachable!("handled above"),
                    },
                });
            }
            Store {
                op: rv32::StoreOp::Sw,
                rs2,
                rs1,
                offset,
            } => {
                let off = self.scaled_offset(k, *offset)?;
                // Address first (offset folding may use t8), datum last.
                let base = self.read_in_place(*rs1, SCRATCH_A);
                let (base, off) = self.fit_mem_offset(base, off);
                self.read_to(SCRATCH_B, *rs2);
                self.ins(Instruction::Store {
                    a: SCRATCH_B,
                    b: base,
                    offset: Self::imm3(off),
                });
            }
            Store { op, .. } => {
                return Err(CompileError::SubWordAccess {
                    at: k,
                    mnemonic: match op {
                        rv32::StoreOp::Sb => "sb",
                        rv32::StoreOp::Sh => "sh",
                        rv32::StoreOp::Sw => unreachable!("handled above"),
                    },
                });
            }
            Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let target = Label::Rv(target_index(k, *offset));
                self.read_to(SCRATCH_B, *rs1);
                let rhs = self.read_in_place(*rs2, SCRATCH_A);
                self.ins(Instruction::Comp {
                    a: SCRATCH_B,
                    b: rhs,
                });
                let (eq, cond) = match op {
                    BranchOp::Eq => (true, Trit::Z),
                    BranchOp::Ne => (false, Trit::Z),
                    BranchOp::Lt => (true, Trit::N),
                    BranchOp::Ge => (false, Trit::N),
                    BranchOp::Ltu => {
                        self.warn_once(k, WarningKind::UnsignedAsSigned);
                        (true, Trit::N)
                    }
                    BranchOp::Geu => {
                        self.warn_once(k, WarningKind::UnsignedAsSigned);
                        (false, Trit::N)
                    }
                };
                self.emit(Item::Branch {
                    eq,
                    breg: SCRATCH_B,
                    cond,
                    target,
                });
            }
            Jal { rd, offset } => {
                let target = Label::Rv(target_index(k, *offset));
                match self.alloc.loc(*rd) {
                    Loc::Zero => self.emit(Item::Jump {
                        link: SCRATCH_B,
                        target,
                    }),
                    Loc::Direct(r) => self.emit(Item::Jump { link: r, target }),
                    Loc::Spill(s) => {
                        // Code after a jump never runs: the return
                        // address must reach the spill slot first.
                        self.emit(Item::LabelConst {
                            reg: SCRATCH_B,
                            target: Label::Rv(k + 1),
                        });
                        self.ins(Instruction::Store {
                            a: SCRATCH_B,
                            b: TReg::T0,
                            offset: Self::imm3(s),
                        });
                        self.emit(Item::Jump {
                            link: SCRATCH_B,
                            target,
                        });
                    }
                }
            }
            Jalr { rd, rs1, offset } => {
                if *offset != 0 {
                    return Err(CompileError::Unsupported {
                        at: k,
                        mnemonic: "jalr+off",
                    });
                }
                let base = self.read_in_place(*rs1, SCRATCH_A);
                match self.alloc.loc(*rd) {
                    Loc::Zero => {
                        self.ins(Instruction::Jalr {
                            a: SCRATCH_B,
                            b: base,
                            offset: Trits::ZERO,
                        });
                    }
                    Loc::Direct(r) => {
                        // JALR reads Tb before writing Ta, so link == base
                        // is architecturally fine.
                        self.ins(Instruction::Jalr {
                            a: r,
                            b: base,
                            offset: Trits::ZERO,
                        });
                    }
                    Loc::Spill(s) => {
                        self.emit(Item::LabelConst {
                            reg: SCRATCH_B,
                            target: Label::Rv(k + 1),
                        });
                        self.ins(Instruction::Store {
                            a: SCRATCH_B,
                            b: TReg::T0,
                            offset: Self::imm3(s),
                        });
                        self.ins(Instruction::Jalr {
                            a: SCRATCH_B,
                            b: base,
                            offset: Trits::ZERO,
                        });
                    }
                }
            }
            Fence => {}
            Ecall | Ebreak => {
                // Halt: jump-to-self.
                let here = self.labels.fresh();
                self.emit(Item::Mark(here));
                self.emit(Item::Jump {
                    link: SCRATCH_B,
                    target: here,
                });
            }
        }
        Ok(())
    }

    fn scaled_offset(&mut self, k: usize, offset: i32) -> Result<i64, CompileError> {
        match self.analysis.actions.get(&k) {
            Some(Action::ScaleOffset) => Ok(offset as i64 / 4),
            _ if offset == 0 => Ok(0),
            _ => Err(CompileError::UnalignedAddress {
                at: k,
                offset: offset as i64,
            }),
        }
    }

    /// Folds an out-of-range memory offset into the address register.
    fn fit_mem_offset(&mut self, base: TReg, off: i64) -> (TReg, i64) {
        if (-13..=13).contains(&off) {
            (base, off)
        } else {
            self.mv(SCRATCH_A, base);
            self.emit_add_const(SCRATCH_A, off, SCRATCH_B);
            (SCRATCH_A, 0)
        }
    }

    fn map_alu_imm(
        &mut self,
        k: usize,
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    ) -> Result<(), CompileError> {
        if rd.is_zero() {
            return Ok(()); // writes to x0 are dead; operands are pure
        }
        match op {
            AluOp::Add => {
                if rs1.is_zero() {
                    // li
                    if !(-9841..=9841).contains(&imm) {
                        return Err(CompileError::ConstantRange { at: k, value: imm });
                    }
                    let w = self.dest_phys(rd);
                    self.emit_const(w, imm);
                    self.write_from(rd, w);
                    return Ok(());
                }
                let imm = if self.analysis.actions.get(&k) == Some(&Action::ScaleStride) {
                    imm / 4
                } else {
                    imm
                };
                if !(-9841..=9841).contains(&imm) {
                    return Err(CompileError::ConstantRange { at: k, value: imm });
                }
                let w = self.dest_phys(rd);
                self.read_to(w, rs1);
                self.emit_add_const(w, imm, SCRATCH_A);
                self.write_from(rd, w);
            }
            AluOp::And | AluOp::Or | AluOp::Xor => {
                self.warn_once(k, WarningKind::BitwiseSemantics);
                let w = self.dest_phys(rd);
                // ANDI has a native imm3 form.
                if op == AluOp::And
                    && (-13..=13).contains(&imm)
                    && self.alloc.loc(rd) == self.alloc.loc(rs1)
                {
                    if let Loc::Direct(r) = self.alloc.loc(rd) {
                        self.ins(Instruction::Andi {
                            a: r,
                            imm: Self::imm3(imm),
                        });
                        return Ok(());
                    }
                }
                self.emit_const(SCRATCH_A, imm);
                self.read_to(w, rs1);
                let i = match op {
                    AluOp::And => Instruction::And { a: w, b: SCRATCH_A },
                    AluOp::Or => Instruction::Or { a: w, b: SCRATCH_A },
                    _ => Instruction::Xor { a: w, b: SCRATCH_A },
                };
                self.ins(i);
                self.write_from(rd, w);
            }
            AluOp::Sll => {
                if self.analysis.actions.get(&k) == Some(&Action::IndexToMove) {
                    // Scaled index: ×4 in bytes is ×1 in words.
                    let w = self.dest_phys(rd);
                    self.read_to(w, rs1);
                    self.write_from(rd, w);
                    return Ok(());
                }
                self.emit_shift_left(k, rd, rs1, imm as u32)?;
            }
            AluOp::Srl | AluOp::Sra => {
                self.warn_once(k, WarningKind::ShiftAsDivision);
                // 2^14 already exceeds the 9-trit window: reject rather
                // than silently dividing by a clamped power.
                let amount = (imm as u32).min(31);
                if amount > 13 {
                    return Err(CompileError::ConstantRange {
                        at: k,
                        value: 1i64 << amount,
                    });
                }
                self.call_builtin_imm(BuiltinId::Div, rd, rs1, 1i64 << amount);
            }
            AluOp::Slt | AluOp::Sltu => {
                if op == AluOp::Sltu {
                    self.warn_once(k, WarningKind::UnsignedAsSigned);
                    // seqz idiom: sltiu rd, rs, 1  ==  rd = (rs == 0).
                    if imm == 1 {
                        self.emit_is_zero(rd, rs1);
                        return Ok(());
                    }
                }
                self.read_to(SCRATCH_B, rs1);
                self.emit_const(SCRATCH_A, imm);
                self.emit_slt_tail(rd);
            }
            AluOp::Sub => {
                return Err(CompileError::Unsupported {
                    at: k,
                    mnemonic: "subi",
                });
            }
        }
        Ok(())
    }

    /// `rd = (rs == 0)` — COMP against zero, square the sign with XOR,
    /// add one: {0→1, ±1→0}.
    fn emit_is_zero(&mut self, rd: Reg, rs: Reg) {
        self.read_to(SCRATCH_B, rs);
        self.ins(Instruction::Comp {
            a: SCRATCH_B,
            b: TReg::T0,
        });
        self.ins(Instruction::Xor {
            a: SCRATCH_B,
            b: SCRATCH_B,
        }); // -|sign|
        self.ins(Instruction::Addi {
            a: SCRATCH_B,
            imm: Self::imm3(1),
        });
        self.write_from(rd, SCRATCH_B);
    }

    /// Shared tail for `slt*`: `t8` holds lhs, `t7` rhs; computes the
    /// 0/1 boolean into `rd`.
    fn emit_slt_tail(&mut self, rd: Reg) {
        self.ins(Instruction::Comp {
            a: SCRATCH_B,
            b: SCRATCH_A,
        });
        self.ins(Instruction::And {
            a: SCRATCH_B,
            b: TReg::T0,
        }); // min(sign, 0)
        self.ins(Instruction::Sti {
            a: SCRATCH_B,
            b: SCRATCH_B,
        }); // negate
        self.write_from(rd, SCRATCH_B);
    }

    fn emit_shift_left(
        &mut self,
        k: usize,
        rd: Reg,
        rs1: Reg,
        amount: u32,
    ) -> Result<(), CompileError> {
        self.warn_once(k, WarningKind::ShiftAsMultiply);
        if amount <= 3 {
            let w = self.dest_phys(rd);
            self.read_to(w, rs1);
            for _ in 0..amount {
                self.ins(Instruction::Add { a: w, b: w });
            }
            self.write_from(rd, w);
            Ok(())
        } else {
            let pow = 1i64 << amount.min(14);
            if pow > 9841 {
                return Err(CompileError::ConstantRange { at: k, value: pow });
            }
            self.call_builtin_imm(BuiltinId::Mul, rd, rs1, pow);
            Ok(())
        }
    }

    fn map_alu(
        &mut self,
        k: usize,
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    ) -> Result<(), CompileError> {
        if rd.is_zero() {
            return Ok(());
        }
        match op {
            AluOp::Add | AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor => {
                if matches!(op, AluOp::And | AluOp::Or | AluOp::Xor) {
                    self.warn_once(k, WarningKind::BitwiseSemantics);
                }
                self.emit_binop(op, rd, rs1, rs2);
            }
            AluOp::Slt | AluOp::Sltu => {
                if op == AluOp::Sltu {
                    self.warn_once(k, WarningKind::UnsignedAsSigned);
                    // snez idiom: sltu rd, x0, rs == (rs != 0).
                    if rs1.is_zero() {
                        self.emit_is_zero(rd, rs2);
                        // invert: rd = 1 - rd … XOR trick: (rd==0) gives
                        // 1 on zero; subtract from 1:
                        let w = self.dest_phys(rd);
                        self.read_to(w, rd);
                        self.ins(Instruction::Sti { a: w, b: w });
                        self.ins(Instruction::Addi {
                            a: w,
                            imm: Self::imm3(1),
                        });
                        self.write_from(rd, w);
                        return Ok(());
                    }
                }
                self.read_to(SCRATCH_B, rs1);
                let rhs = self.read_in_place(rs2, SCRATCH_A);
                self.mv(SCRATCH_A, rhs);
                self.emit_slt_tail(rd);
            }
            AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                return Err(CompileError::Unsupported {
                    at: k,
                    mnemonic: "dynamic shift",
                });
            }
        }
        Ok(())
    }

    /// Two-address folding of `rd = rs1 op rs2`.
    fn emit_binop(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        let commutative = matches!(op, AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor);
        let emit_op = |m: &mut Self, a: TReg, b: TReg| {
            let i = match op {
                AluOp::Add => Instruction::Add { a, b },
                AluOp::Sub => Instruction::Sub { a, b },
                AluOp::And => Instruction::And { a, b },
                AluOp::Or => Instruction::Or { a, b },
                AluOp::Xor => Instruction::Xor { a, b },
                _ => unreachable!("emit_binop covers the five two-address ops"),
            };
            m.ins(i);
        };

        let w = self.dest_phys(rd);
        let rd_is_rs2 = self.alloc.loc(rd) == self.alloc.loc(rs2) && !rs2.is_zero();
        let rd_is_rs1 = self.alloc.loc(rd) == self.alloc.loc(rs1) && !rs1.is_zero();

        if rd_is_rs2 && !rd_is_rs1 {
            if commutative {
                // w already holds rs2; fold rs1 in.
                let lhs = self.read_in_place(rs1, SCRATCH_A);
                if matches!(self.alloc.loc(rd), Loc::Direct(_)) {
                    emit_op(self, w, lhs);
                } else {
                    self.read_to(w, rs2);
                    emit_op(self, w, lhs);
                }
                self.write_from(rd, w);
            } else {
                // rd = rs1 - rd  ==  -(rd - rs1).
                if matches!(self.alloc.loc(rd), Loc::Direct(_)) {
                    let lhs = self.read_in_place(rs1, SCRATCH_A);
                    emit_op(self, w, lhs); // w = rd - rs1
                    self.ins(Instruction::Sti { a: w, b: w });
                } else {
                    self.read_to(w, rs2);
                    let lhs = self.read_in_place(rs1, SCRATCH_A);
                    emit_op(self, w, lhs);
                    self.ins(Instruction::Sti { a: w, b: w });
                }
                self.write_from(rd, w);
            }
        } else {
            self.read_to(w, rs1);
            let rhs = self.read_in_place(rs2, SCRATCH_A);
            emit_op(self, w, rhs);
            self.write_from(rd, w);
        }
    }

    /// Emits the save/stage/call/restore dance for `rd = rs1 ⊗ rs2`.
    fn call_builtin(&mut self, id: BuiltinId, rd: Reg, rs1: Reg, rs2: Reg) {
        self.used_builtins.insert(id);
        // Save program t3/t4 (they may hold live allocated registers).
        self.ins(Instruction::Store {
            a: TReg::T3,
            b: TReg::T0,
            offset: Self::imm3(CALL_SAVE_T3),
        });
        self.ins(Instruction::Store {
            a: TReg::T4,
            b: TReg::T0,
            offset: Self::imm3(CALL_SAVE_T4),
        });
        // Stage arg1 into t3 (t3/t4 still hold their program values).
        match self.alloc.loc(rs1) {
            Loc::Direct(TReg::T3) => {}
            Loc::Direct(r) => self.mv(TReg::T3, r),
            Loc::Zero => self.mv(TReg::T3, TReg::T0),
            Loc::Spill(s) => self.ins(Instruction::Load {
                a: TReg::T3,
                b: TReg::T0,
                offset: Self::imm3(s),
            }),
        }
        // Stage arg2 into t4; if it lived in t3 use the saved copy.
        match self.alloc.loc(rs2) {
            Loc::Direct(TReg::T4) => {}
            Loc::Direct(TReg::T3) => self.ins(Instruction::Load {
                a: TReg::T4,
                b: TReg::T0,
                offset: Self::imm3(CALL_SAVE_T3),
            }),
            Loc::Direct(r) => self.mv(TReg::T4, r),
            Loc::Zero => self.mv(TReg::T4, TReg::T0),
            Loc::Spill(s) => self.ins(Instruction::Load {
                a: TReg::T4,
                b: TReg::T0,
                offset: Self::imm3(s),
            }),
        }
        self.emit(Item::Jump {
            link: SCRATCH_B,
            target: Label::Builtin(id),
        });
        self.finish_builtin_result(rd);
    }

    /// Builtin call with an immediate second operand (shift expansion).
    fn call_builtin_imm(&mut self, id: BuiltinId, rd: Reg, rs1: Reg, imm: i64) {
        self.used_builtins.insert(id);
        self.ins(Instruction::Store {
            a: TReg::T3,
            b: TReg::T0,
            offset: Self::imm3(CALL_SAVE_T3),
        });
        self.ins(Instruction::Store {
            a: TReg::T4,
            b: TReg::T0,
            offset: Self::imm3(CALL_SAVE_T4),
        });
        match self.alloc.loc(rs1) {
            Loc::Direct(TReg::T3) => {}
            Loc::Direct(r) => self.mv(TReg::T3, r),
            Loc::Zero => self.mv(TReg::T3, TReg::T0),
            Loc::Spill(s) => self.ins(Instruction::Load {
                a: TReg::T3,
                b: TReg::T0,
                offset: Self::imm3(s),
            }),
        }
        self.emit_const(TReg::T4, imm);
        self.emit(Item::Jump {
            link: SCRATCH_B,
            target: Label::Builtin(id),
        });
        self.finish_builtin_result(rd);
    }

    /// Moves the builtin result (t3) to `rd` and restores t3/t4.
    fn finish_builtin_result(&mut self, rd: Reg) {
        let rd_loc = self.alloc.loc(rd);
        match rd_loc {
            Loc::Direct(TReg::T3) => {
                // Result already home; restore only t4.
                self.ins(Instruction::Load {
                    a: TReg::T4,
                    b: TReg::T0,
                    offset: Self::imm3(CALL_SAVE_T4),
                });
            }
            Loc::Direct(TReg::T4) => {
                self.mv(TReg::T4, TReg::T3);
                self.ins(Instruction::Load {
                    a: TReg::T3,
                    b: TReg::T0,
                    offset: Self::imm3(CALL_SAVE_T3),
                });
            }
            Loc::Direct(r) => {
                self.mv(r, TReg::T3);
                self.restore_t3_t4();
            }
            Loc::Spill(s) => {
                self.ins(Instruction::Store {
                    a: TReg::T3,
                    b: TReg::T0,
                    offset: Self::imm3(s),
                });
                self.restore_t3_t4();
            }
            Loc::Zero => self.restore_t3_t4(),
        }
    }

    fn restore_t3_t4(&mut self) {
        self.ins(Instruction::Load {
            a: TReg::T3,
            b: TReg::T0,
            offset: Self::imm3(CALL_SAVE_T3),
        });
        self.ins(Instruction::Load {
            a: TReg::T4,
            b: TReg::T0,
            offset: Self::imm3(CALL_SAVE_T4),
        });
    }
}

/// Output of the mapping pass.
#[derive(Debug)]
pub struct MapOutput {
    /// Symbolic item stream (program body, before builtin linkage),
    /// each item tagged with the RV32 instruction it was emitted for.
    pub items: Vec<Sourced>,
    /// Builtins the program calls.
    pub used_builtins: BTreeSet<BuiltinId>,
    /// Semantic-difference warnings.
    pub warnings: Vec<Warning>,
    /// Label allocator (continued by the linker for builtin bodies).
    pub labels: LocalLabels,
}

/// RV32 branch target: instruction index from byte offset.
fn target_index(at: usize, byte_offset: i32) -> usize {
    (at as i64 + byte_offset as i64 / 4) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::regalloc::allocate;
    use rv32::parse_program;

    fn map(src: &str) -> MapOutput {
        let p = parse_program(src).unwrap();
        let analysis = analyze(&p).unwrap();
        let alloc = allocate(&p).unwrap();
        Mapper::new(&alloc, &analysis, 256)
            .map_program(p.text())
            .unwrap()
    }

    fn count_ins(items: &[Sourced]) -> usize {
        items
            .iter()
            .filter(|s| !matches!(s.item, Item::Mark(_)))
            .count()
    }

    #[test]
    fn small_li_is_two_instructions_max() {
        let out = map("li a0, 5\nebreak\n");
        let mut items = out.items;
        crate::redundancy::eliminate(&mut items);
        // const (<=2) + halt jump, once the staging moves are cleaned.
        assert!(count_ins(&items) <= 4);
    }

    #[test]
    fn in_place_add_folds_to_one_op_after_redundancy() {
        let out = map("add a0, a0, a1\nebreak\n");
        let adds = out
            .items
            .iter()
            .filter(|s| matches!(s.item, Item::Ins(Instruction::Add { .. })))
            .count();
        assert_eq!(adds, 1);
        // The mechanical mapper stages rd == rs1 with a self-move…
        let self_mv = out
            .items
            .iter()
            .any(|s| matches!(s.item, Item::Ins(Instruction::Mv { a, b }) if a == b));
        assert!(self_mv, "mapper emits the staging move mechanically");
        // …and the redundancy pass removes it (Fig. 2's last stage).
        let mut items = out.items.clone();
        let removed = crate::redundancy::eliminate(&mut items);
        assert!(removed >= 1);
        assert!(!items
            .iter()
            .any(|s| matches!(s.item, Item::Ins(Instruction::Mv { a, b }) if a == b)));
    }

    #[test]
    fn branch_uses_comp_idiom() {
        let out = map("x: blt a0, a1, x\nebreak\n");
        assert!(out
            .items
            .iter()
            .any(|s| matches!(s.item, Item::Ins(Instruction::Comp { .. }))));
        assert!(out.items.iter().any(|s| matches!(
            s.item,
            Item::Branch {
                eq: true,
                cond: Trit::N,
                ..
            }
        )));
    }

    #[test]
    fn mul_emits_builtin_call() {
        let out = map("mul a0, a1, a2\nebreak\n");
        assert!(out.used_builtins.contains(&BuiltinId::Mul));
        assert!(out.items.iter().any(|s| matches!(
            s.item,
            Item::Jump {
                target: Label::Builtin(BuiltinId::Mul),
                ..
            }
        )));
    }

    #[test]
    fn slli_expands_to_adds() {
        let out = map("slli a0, a1, 2\nebreak\n");
        let adds = out
            .items
            .iter()
            .filter(|s| matches!(s.item, Item::Ins(Instruction::Add { .. })))
            .count();
        assert_eq!(adds, 2, "x4 = two doublings");
        assert!(out
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::ShiftAsMultiply));
    }

    #[test]
    fn srai_calls_div_with_warning() {
        let out = map("srai a0, a0, 1\nebreak\n");
        assert!(out.used_builtins.contains(&BuiltinId::Div));
        assert!(out
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::ShiftAsDivision));
    }

    #[test]
    fn subword_access_rejected() {
        let p = parse_program(".data\nv: .word 0\n.text\nla a0, v\nlb a1, 0(a0)\n").unwrap();
        let analysis = analyze(&p).unwrap();
        let alloc = allocate(&p).unwrap();
        let e = Mapper::new(&alloc, &analysis, 256)
            .map_program(p.text())
            .unwrap_err();
        assert!(matches!(e, CompileError::SubWordAccess { .. }));
    }

    #[test]
    fn ebreak_becomes_jump_to_self() {
        let out = map("ebreak\n");
        let has_self_jump = out.items.windows(2).any(|w| {
            matches!(
                (&w[0].item, &w[1].item),
                (Item::Mark(a), Item::Jump { target: b, .. }) if a == b
            )
        });
        assert!(has_self_jump);
    }

    #[test]
    fn sp_prologue_emitted_when_used() {
        let out = map("addi sp, sp, -8\nsw ra, 4(sp)\nebreak\n");
        // First instruction materializes the TDM top into t2.
        let first_ins = out
            .items
            .iter()
            .find_map(|s| match &s.item {
                Item::Ins(ins) => Some(ins),
                _ => None,
            })
            .unwrap();
        assert!(
            matches!(first_ins, Instruction::Lui { a: TReg::T2, .. })
                || matches!(first_ins, Instruction::Sub { a: TReg::T2, .. }),
            "{first_ins}"
        );
    }
}
