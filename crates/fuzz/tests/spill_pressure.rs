//! Register-pressure property test: programs touching 11 renameable
//! registers force the 32→9 renamer to use every TDM spill slot, and
//! `Translation::read_rv_reg` must still read correct values **at
//! every RV32 instruction boundary** — not just at halt. The
//! cross-ISA lockstep harness ([`CoSim`]) provides exactly that check:
//! it compares all allocated registers (spill slots included) against
//! the `rv32` machine after every retired source instruction.

use proptest::prelude::*;

use art9_compiler::{translate_with_tdm, RegisterLocation};
use art9_fuzz::{CoSim, OracleStats, COSIM_TDM_WORDS};
use art9_sim::SimBuilder;
use rv32::parse_program;

/// Eleven renameable registers: 4 go direct (t3..t6), 7 spill — the
/// renamer's full capacity.
const REGS: [&str; 11] = [
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4",
];

#[derive(Debug, Clone)]
enum Op {
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    AddI(u8, u8, i32),
    Slt(u8, u8, u8),
    Mv(u8, u8),
}

fn op() -> impl Strategy<Value = Op> {
    let r = 0u8..11;
    prop_oneof![
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Add(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Sub(a, b, c)),
        (r.clone(), r.clone(), -13i32..=13).prop_map(|(a, b, i)| Op::AddI(a, b, i)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Slt(a, b, c)),
        (r.clone(), r).prop_map(|(a, b)| Op::Mv(a, b)),
    ]
}

fn program() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(-100i32..=100, 11),
        proptest::collection::vec(op(), 1..12),
    )
        .prop_map(|(init, ops)| {
            let mut src = String::new();
            // Touch all 11 registers so every spill slot is in play.
            for (r, v) in REGS.iter().zip(&init) {
                src.push_str(&format!("li {r}, {v}\n"));
            }
            for o in &ops {
                let r = |i: &u8| REGS[*i as usize];
                match o {
                    Op::Add(a, b, c) => {
                        src.push_str(&format!("add {}, {}, {}\n", r(a), r(b), r(c)))
                    }
                    Op::Sub(a, b, c) => {
                        src.push_str(&format!("sub {}, {}, {}\n", r(a), r(b), r(c)))
                    }
                    Op::AddI(a, b, i) => src.push_str(&format!("addi {}, {}, {i}\n", r(a), r(b))),
                    Op::Slt(a, b, c) => {
                        src.push_str(&format!("slt {}, {}, {}\n", r(a), r(b), r(c)))
                    }
                    Op::Mv(a, b) => src.push_str(&format!("mv {}, {}\n", r(a), r(b))),
                }
            }
            src.push_str("ebreak\n");
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn spilled_registers_read_correctly_at_every_boundary(src in program()) {
        // Magnitudes stay inside the window: |init| ≤ 100, ≤ 11 ops,
        // each at most doubling — 100·2^11 would overflow, but adds
        // only combine two prior values, so worst case is ≤ 100·2^11;
        // keep ops ≤ 11 and rely on the harness: any out-of-window
        // value would make the rv32 and ternary sides diverge, which
        // proptest would report with the program attached. In practice
        // the op mix (slt/mv/addi) keeps values far below the window.
        let rv = parse_program(&src).expect("generated source parses");
        let t = translate_with_tdm(&rv, COSIM_TDM_WORDS).expect("translates");

        // The renamer must actually be under pressure: all 7 spill
        // slots in use, 11 renameable registers placed.
        prop_assert_eq!(t.allocation.spill_count(), 7, "{}", src);
        prop_assert_eq!(t.allocation.direct_count(), 4 + 2, "{}", src); // + ra/sp
        let spilled: Vec<_> = t
            .allocation
            .iter()
            .filter(|(_, loc)| matches!(loc, RegisterLocation::Spill(_)))
            .map(|(r, _)| *r)
            .collect();
        prop_assert_eq!(spilled.len(), 7);

        // Lockstep: every allocated register — the spilled seven
        // included — is compared against the rv32 machine after every
        // source instruction, mid-program, via read_rv_reg.
        let cosim = CoSim::new(&rv, &t, 100_000).expect("plan builds");
        let mut stats = OracleStats::default();
        let mut core = SimBuilder::new(&t.program)
            .tdm_words(cosim.tdm_words())
            .build_functional();
        let d = cosim.run(&mut core, &mut stats);
        prop_assert!(d.is_none(), "{}\n{}", d.unwrap(), src);
        // One sync point per executed instruction plus the reset state:
        // the comparisons really happened mid-program.
        prop_assert!(stats.cosim_sync_points as usize >= 12, "{}", src);
    }
}

/// A value can sit in a spill slot *while* out-of-window values pass
/// through other registers — the contract only covers the compared
/// window, which `CoSim` enforces per register. This deterministic
/// companion pins one concrete spill round-trip mid-program.
#[test]
fn concrete_spill_roundtrip_mid_program() {
    let mut src = String::new();
    for (k, r) in REGS.iter().enumerate() {
        src.push_str(&format!("li {r}, {}\n", (k as i64 + 1) * 7));
    }
    // Overwrite and read back through arithmetic touching every reg.
    for w in REGS.windows(2) {
        src.push_str(&format!("add {}, {}, {}\n", w[1], w[1], w[0]));
    }
    src.push_str("ebreak\n");

    let rv = parse_program(&src).unwrap();
    let t = translate_with_tdm(&rv, COSIM_TDM_WORDS).unwrap();
    assert_eq!(t.allocation.spill_count(), 7);
    let cosim = CoSim::new(&rv, &t, 100_000).unwrap();
    let mut stats = OracleStats::default();
    let mut core = SimBuilder::new(&t.program)
        .tdm_words(cosim.tdm_words())
        .build_functional();
    assert!(cosim.run(&mut core, &mut stats).is_none());
    assert!(stats.cosim_sync_points >= 22);
}
