//! The cross-ISA **compiler-lockstep** oracle: translation validation
//! by co-simulating the RV32 source machine and the translated ART-9
//! program side by side, at **RV32-instruction granularity**.
//!
//! This is the evaluation methodology behind the paper's Tables II–V —
//! the same workload executed on the binary baseline and on the ternary
//! machine must agree — turned into a generative check over random
//! programs. After every retired RV32 instruction the ART-9 core is
//! advanced through exactly the instructions the compiler's
//! [provenance map](art9_compiler::Translation::provenance) attributes
//! to that source instruction (runtime-builtin calls included), and the
//! full RV32-visible architectural state is compared:
//!
//! * every allocated register, read through
//!   [`Translation::read_rv_reg`] (direct ternary register or TDM
//!   spill slot) and compared **in its value domain** — plain data
//!   equals the sign-extended RV32 value; pointers map through the
//!   affine byte→word address re-scaling; link registers map through
//!   the RV32-index → ART-9-address boundary table; scaled indices
//!   (`slli ×4`) are the RV32 value divided by 4;
//! * every data word the RV32 side wrote since the last sync point
//!   (the dirty set), through the same address map — plus the whole
//!   memory window once at halt.
//!
//! The pointer domains line up because the RV32 machine is given
//! exactly [`cosim_mem_bytes`] bytes of memory: one affine map
//! `word = (byte − DATA_BASE)/4 + DATA_WORD_BASE` then covers the data
//! section *and* the descending stack.
//!
//! The architectural backends (functional, reference, threaded) are
//! compared state-for-state at every sync point. The pipelined backend exposes
//! architectural state only at retirement, so it runs to halt under a
//! [`SyncPoints`](art9_sim::observers::SyncPoints) observer instead:
//! the sequence of RV32-boundary crossings it retires must equal the
//! boundary sequence the RV32 machine's own execution path predicts,
//! and the final state must match in full.

use std::collections::BTreeSet;

use art9_compiler::analysis::{analyze, Action, Analysis, DATA_WORD_BASE};
use art9_compiler::{translate_with_tdm, Origin, Translation};
use art9_sim::{Backend, Budget, Core, SimBuilder};
use rv32::{parse_program, Instr, Machine, Reg, Rv32Program, DATA_BASE};

use crate::oracle::{Divergence, Oracle, OracleStats};

/// TDM size the oracle translates and simulates with.
pub const COSIM_TDM_WORDS: usize = 256;

/// ART-9 step budget per RV32 instruction: generous enough for the
/// worst runtime-builtin call (`__div` is O(|dividend|) with in-window
/// operands) plus the mapped sequence itself.
const PER_SYNC_BUDGET: u64 = 250_000;

/// Marker prefix for harness-level failures (parse/translate errors)
/// as opposed to genuine state divergences — the minimizer refuses to
/// trade one for the other.
pub(crate) const HARNESS_MARKER: &str = "harness:";

/// The RV32 data-memory size that makes one affine map cover both the
/// data section and the stack: bytes `DATA_BASE..mem_bytes` correspond
/// exactly to TDM words `DATA_WORD_BASE..tdm_words`.
pub fn cosim_mem_bytes(tdm_words: usize) -> usize {
    DATA_BASE as usize + 4 * (tdm_words - DATA_WORD_BASE as usize)
}

/// How an RV32 register's value maps into the ART-9 domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegClass {
    /// Plain data: equal as sign-extended integers.
    Data,
    /// Byte address: maps through the affine byte→word re-scaling.
    Pointer,
    /// Code address (link register): maps through the RV32-index →
    /// ART-9-address boundary table.
    Link,
    /// Scaled index (`slli …, 2` feeding a pointer add): the RV32 value
    /// is 4× the ART-9 word index.
    Index4,
}

/// The memory words written so far and the value domain of the last
/// register stored to each (a spilled `ra` holds a code address on
/// both sides, in different domains).
#[derive(Default)]
struct MemTracker {
    dirty: BTreeSet<usize>,
    class: std::collections::BTreeMap<usize, RegClass>,
}

impl MemTracker {
    fn record(&mut self, word: usize, class: RegClass) {
        self.dirty.insert(word);
        self.class.insert(word, class);
    }

    fn class_of(&self, word: usize) -> RegClass {
        self.class.get(&word).copied().unwrap_or(RegClass::Data)
    }
}

/// The per-program comparison plan: which registers to compare and in
/// which value domain, plus the analysis actions (needed to skip the
/// half-materialized destination of a split `la` pair).
struct Plan {
    entries: Vec<(Reg, RegClass)>,
    analysis: Analysis,
    tdm_words: usize,
}

fn build_plan(rv: &Rv32Program, t: &Translation, tdm_words: usize) -> Result<Plan, String> {
    let analysis = analyze(rv).map_err(|e| format!("analysis failed after translate: {e}"))?;

    let mut link_regs: BTreeSet<Reg> = BTreeSet::new();
    link_regs.insert(Reg::RA);
    let mut index_regs: BTreeSet<Reg> = BTreeSet::new();
    for (k, i) in rv.text().iter().enumerate() {
        match i {
            Instr::Jal { rd, .. } | Instr::Jalr { rd, .. } if !rd.is_zero() => {
                link_regs.insert(*rd);
            }
            Instr::AluImm { rd, .. } if analysis.actions.get(&k) == Some(&Action::IndexToMove) => {
                index_regs.insert(*rd);
            }
            _ => {}
        }
    }

    let mut entries = Vec::new();
    for (reg, _loc) in t.allocation.iter() {
        if *reg == Reg::SP && !analysis.uses_sp {
            // sp differs at reset (rv32 initializes it in hardware, the
            // translation only when the program uses a stack).
            continue;
        }
        let class = if analysis.pointers.contains(reg) {
            if link_regs.contains(reg) {
                return Err(format!("{reg} is both pointer- and link-typed"));
            }
            RegClass::Pointer
        } else if index_regs.contains(reg) {
            RegClass::Index4
        } else if link_regs.contains(reg) {
            RegClass::Link
        } else {
            RegClass::Data
        };
        entries.push((*reg, class));
    }
    Ok(Plan {
        entries,
        analysis,
        tdm_words,
    })
}

impl Plan {
    /// Expected ART-9 value for an RV32 register value, or `None` when
    /// the value has no image in the ternary domain.
    fn expected(&self, class: RegClass, rv_val: u32, t: &Translation) -> Option<i64> {
        let signed = rv_val as i32 as i64;
        match class {
            RegClass::Data => Some(signed),
            RegClass::Index4 => Some(signed / 4),
            RegClass::Pointer => {
                if rv_val == 0 {
                    Some(0) // never materialized on either side
                } else {
                    Some((signed - DATA_BASE as i64) / 4 + DATA_WORD_BASE)
                }
            }
            RegClass::Link => {
                if rv_val == 0 {
                    Some(0)
                } else {
                    t.address_of_rv((rv_val / 4) as usize).map(|a| a as i64)
                }
            }
        }
    }

    /// The static value domain of a register (Data when unallocated —
    /// e.g. `x0` — whose stores carry plain zeros).
    fn class_of(&self, reg: Reg) -> RegClass {
        self.entries
            .iter()
            .find(|(r, _)| *r == reg)
            .map(|(_, c)| *c)
            .unwrap_or(RegClass::Data)
    }

    /// Compares every planned register plus the dirty memory words.
    /// `just_executed` is the RV32 instruction that retired into this
    /// sync point (`None` for the initial and final states).
    fn compare(
        &self,
        t: &Translation,
        rv_text: &[Instr],
        core: &dyn Core,
        m: &Machine,
        mem: &MemTracker,
        just_executed: Option<usize>,
    ) -> Option<String> {
        // A split `la` (lui+addi AddressPair) holds the full word
        // address on the ART-9 side after the lui half alone — skip its
        // destination until the absorbed addi completes the pair.
        let mid_pair: Option<Reg> = just_executed.and_then(|k| {
            if let Some(Action::AddressPair { .. }) = self.analysis.actions.get(&k) {
                if let Some(Instr::Lui { rd, .. }) = rv_text.get(k) {
                    return Some(*rd);
                }
            }
            None
        });

        let state = core.state();
        for (reg, class) in &self.entries {
            if mid_pair == Some(*reg) {
                continue;
            }
            let rv_val = m.reg(*reg);
            let art_val = t.read_rv_reg(state, *reg);
            match self.expected(*class, rv_val, t) {
                Some(expected) if expected == art_val => {}
                Some(expected) => {
                    return Some(format!(
                        "{reg} ({class:?}) = {art_val} (art9) vs {} (rv32, expects {expected})",
                        rv_val as i32
                    ));
                }
                None => {
                    return Some(format!(
                        "{reg} ({class:?}) holds untranslatable rv32 value {}",
                        rv_val as i32
                    ));
                }
            }
        }

        for &word in &mem.dirty {
            if let Some(d) = self.compare_word(word, mem.class_of(word), t, core, m) {
                return Some(d);
            }
        }
        None
    }

    /// Compares one TDM word against its RV32 memory image, in the
    /// value domain of the register last stored there (a spilled `ra`
    /// holds a code address on both sides — in different domains).
    fn compare_word(
        &self,
        word: usize,
        class: RegClass,
        t: &Translation,
        core: &dyn Core,
        m: &Machine,
    ) -> Option<String> {
        let byte = DATA_BASE as usize + 4 * (word - DATA_WORD_BASE as usize);
        let rv_val = match m.load_word(byte as u32) {
            Ok(v) => v,
            Err(e) => return Some(format!("rv32 memory read at {byte:#x} failed: {e}")),
        };
        let art_val = match core.state().tdm.read(word) {
            Ok(w) => w.to_i64(),
            Err(e) => return Some(format!("art9 TDM read at word {word} failed: {e}")),
        };
        match self.expected(class, rv_val, t) {
            Some(expected) if expected == art_val => None,
            Some(expected) => Some(format!(
                "mem word {word} (byte {byte:#x}, {class:?}) = {art_val} (art9) vs {} \
                 (rv32, expects {expected})",
                rv_val as i32
            )),
            None => Some(format!(
                "mem word {word} (byte {byte:#x}, {class:?}) holds untranslatable rv32 \
                 value {}",
                rv_val as i32
            )),
        }
    }

    /// Compares the whole RV32-visible memory window (at halt).
    fn compare_memory_window(
        &self,
        t: &Translation,
        mem: &MemTracker,
        core: &dyn Core,
        m: &Machine,
    ) -> Option<String> {
        for word in DATA_WORD_BASE as usize..self.tdm_words {
            if let Some(d) = self.compare_word(word, mem.class_of(word), t, core, m) {
                return Some(d);
            }
        }
        None
    }
}

/// One full co-simulation of an RV32 source program against its
/// translation.
pub struct CoSim<'a> {
    rv: &'a Rv32Program,
    t: &'a Translation,
    plan: Plan,
    budget: u64,
}

impl<'a> CoSim<'a> {
    /// Builds the co-simulator for a source program and its translation
    /// (use [`check_compiler_lockstep`] for the one-call
    /// source-to-verdict path).
    ///
    /// # Errors
    ///
    /// Returns a harness-level description when the comparison plan
    /// cannot be built (e.g. a register is both pointer- and
    /// link-typed).
    pub fn new(rv: &'a Rv32Program, t: &'a Translation, rv32_budget: u64) -> Result<Self, String> {
        let tdm_words = COSIM_TDM_WORDS.max(t.program.data().len());
        let plan = build_plan(rv, t, tdm_words)?;
        Ok(Self {
            rv,
            t,
            plan,
            budget: rv32_budget,
        })
    }

    /// The TDM size the comparison plan assumes (pass it to
    /// [`SimBuilder::tdm_words`] when building the core yourself).
    pub fn tdm_words(&self) -> usize {
        self.plan.tdm_words
    }

    /// The RV32 machine sized so byte and word address domains line up.
    pub fn machine(&self) -> Machine {
        Machine::with_mem_size(self.rv, cosim_mem_bytes(self.plan.tdm_words))
    }

    /// Records the TDM word an RV32 store is about to write (computed
    /// *before* the step, from the pre-state registers) together with
    /// the stored register's value domain.
    fn dirty_word_of(&self, m: &Machine, k: usize) -> Option<(usize, RegClass)> {
        if let Some(Instr::Store {
            rs2, rs1, offset, ..
        }) = self.rv.text().get(k)
        {
            let byte = m.reg(*rs1).wrapping_add(*offset as u32) as i64;
            let word = (byte - DATA_BASE as i64) / 4 + DATA_WORD_BASE;
            if (DATA_WORD_BASE..self.plan.tdm_words as i64).contains(&word) {
                return Some((word as usize, self.plan.class_of(*rs2)));
            }
        }
        None
    }

    /// Runs the lockstep comparison on an architectural core
    /// (functional or reference backend). Returns the first divergence.
    pub fn run(&self, core: &mut dyn Core, stats: &mut OracleStats) -> Option<Divergence> {
        let fail = |detail: String| {
            Some(Divergence {
                oracle: Oracle::CompilerLockstep,
                detail,
            })
        };
        if core.backend() == Backend::Pipelined {
            return fail(format!(
                "{HARNESS_MARKER} the pipelined backend cannot step at instruction \
                 granularity; use run_pipelined"
            ));
        }
        let mut m = self.machine();
        let mut mem = MemTracker::default();

        // Run the translator prologue (sp init) up to the first
        // boundary, then compare the reset states.
        if let Some(d) = self.advance(core, |o| o == Origin::Prologue) {
            return fail(d);
        }
        stats.cosim_sync_points += 1;
        if let Some(d) = self
            .plan
            .compare(self.t, self.rv.text(), core, &m, &mem, None)
        {
            return fail(format!("at reset: {d}"));
        }

        for _ in 0..self.budget {
            let k = (m.pc() / 4) as usize;
            let store_word = self.dirty_word_of(&m, k);
            match m.step() {
                Err(e) => return fail(format!("{HARNESS_MARKER} rv32 machine faulted: {e}")),
                Ok(Err(_halt)) => return self.finish(core, &m, &mem, stats),
                Ok(Ok(_retire)) => {
                    stats.cosim_rv32_instructions += 1;
                    if let Some((w, class)) = store_word {
                        mem.record(w, class);
                    }
                    // Advance the ART-9 core through everything the
                    // compiler attributes to source instruction k.
                    let inside = |o: Origin| matches!(o, Origin::Builtin(_)) || o == Origin::Rv(k);
                    if let Some(d) = self.advance(core, inside) {
                        return fail(format!("during rv32 #{k} ({}): {d}", self.rv.text()[k]));
                    }
                    if core.halted().is_some() {
                        return fail(format!(
                            "art9 halted after rv32 #{k} while the rv32 machine continues"
                        ));
                    }
                    // The core must now sit exactly at the boundary of
                    // the next source instruction.
                    let next_k = (m.pc() / 4) as usize;
                    let expected = self.t.address_of_rv(next_k);
                    if expected != Some(core.state().pc) {
                        return fail(format!(
                            "after rv32 #{k} ({}): art9 pc {} is not the boundary of rv32 \
                             #{next_k} ({expected:?})",
                            self.rv.text()[k],
                            core.state().pc
                        ));
                    }
                    stats.cosim_sync_points += 1;
                    if let Some(d) =
                        self.plan
                            .compare(self.t, self.rv.text(), core, &m, &mem, Some(k))
                    {
                        return fail(format!("after rv32 #{k} ({}): {d}", self.rv.text()[k]));
                    }
                    if m.halted().is_some() {
                        // FellOffEnd is detected eagerly after a retire.
                        return self.finish(core, &m, &mem, stats);
                    }
                }
            }
        }
        fail(format!(
            "rv32 program {} {} steps",
            Divergence::BUDGET_MARKER,
            self.budget
        ))
    }

    /// Steps the core while the instruction at its PC satisfies
    /// `inside` (and it has not halted). Returns a description on fault
    /// or budget exhaustion.
    fn advance(&self, core: &mut dyn Core, inside: impl Fn(Origin) -> bool) -> Option<String> {
        let prov = self.t.provenance();
        for _ in 0..PER_SYNC_BUDGET {
            if core.halted().is_some() {
                return None; // callers decide whether halting is legal
            }
            let pc = core.state().pc;
            match prov.get(pc) {
                Some(o) if inside(*o) => {}
                _ => return None, // reached foreign territory: a boundary
            }
            if let Err(e) = core.step() {
                return Some(format!("art9 core faulted: {e}"));
            }
        }
        Some(format!(
            "art9 sequence {} {PER_SYNC_BUDGET} steps",
            Divergence::BUDGET_MARKER
        ))
    }

    /// The RV32 machine halted: drive the ART-9 core to its own halt
    /// and compare the complete final state.
    fn finish(
        &self,
        core: &mut dyn Core,
        m: &Machine,
        mem: &MemTracker,
        stats: &mut OracleStats,
    ) -> Option<Divergence> {
        let fail = |detail: String| {
            Some(Divergence {
                oracle: Oracle::CompilerLockstep,
                detail,
            })
        };
        if core.halted().is_none() {
            match core.run_for(Budget::Steps(PER_SYNC_BUDGET)) {
                Ok(summary) if summary.halt.is_some() => {}
                Ok(_) => {
                    return fail(format!(
                        "art9 {} {PER_SYNC_BUDGET} steps after the rv32 machine halted ({:?})",
                        Divergence::BUDGET_MARKER,
                        m.halted()
                    ));
                }
                Err(e) => return fail(format!("art9 core faulted while halting: {e}")),
            }
        }
        stats.cosim_art9_instructions += core.retired();
        if let Some(d) = self
            .plan
            .compare(self.t, self.rv.text(), core, m, mem, None)
        {
            return fail(format!("at halt ({:?}): {d}", m.halted()));
        }
        if let Some(d) = self.plan.compare_memory_window(self.t, mem, core, m) {
            return fail(format!("at halt ({:?}): {d}", m.halted()));
        }
        None
    }

    /// The pipelined variant: runs the RV32 machine to halt to predict
    /// the sequence of boundary addresses the translated program must
    /// enter, then runs the pipelined core to halt under a
    /// [`SyncPoints`](art9_sim::observers::SyncPoints) observer and
    /// compares the crossing trace plus the full final state.
    pub fn run_pipelined(&self, stats: &mut OracleStats) -> Option<Divergence> {
        use std::sync::{Arc, Mutex};

        let fail = |detail: String| {
            Some(Divergence {
                oracle: Oracle::CompilerLockstep,
                detail,
            })
        };
        let len = self.rv.text().len();
        let b = |k: usize| self.t.address_of_rv(k).expect("boundary in range");
        // Watch every distinct boundary except the halt sequence's own
        // address (the final jump-to-self would record spurious entries
        // there).
        let watched: BTreeSet<usize> = (0..len).map(b).filter(|a| *a != b(len)).collect();

        // Predict the crossing sequence from the RV32 execution path.
        let mut expected: Vec<usize> = Vec::new();
        if b(0) != 0 && watched.contains(&b(0)) {
            expected.push(b(0)); // entered from the prologue
        }
        let nonempty = |k: usize| b(k) != b(k + 1);
        let mut m = self.machine();
        let mut mem = MemTracker::default();
        let mut halt = None;
        for _ in 0..self.budget {
            let k = (m.pc() / 4) as usize;
            if let Some((w, class)) = self.dirty_word_of(&m, k) {
                mem.record(w, class);
            }
            match m.step() {
                Err(e) => return fail(format!("{HARNESS_MARKER} rv32 machine faulted: {e}")),
                Ok(Err(reason)) => {
                    // ebreak maps to a jump-to-self at its own boundary:
                    // that retirement re-enters b(k).
                    if matches!(
                        reason,
                        rv32::HaltReason::Break | rv32::HaltReason::JumpToSelf
                    ) && nonempty(k)
                        && watched.contains(&b(k))
                    {
                        expected.push(b(k));
                    }
                    halt = Some(reason);
                    break;
                }
                Ok(Ok(_)) => {
                    stats.cosim_rv32_instructions += 1;
                    let next_k = (m.pc() / 4) as usize;
                    if nonempty(k) && watched.contains(&b(next_k)) {
                        expected.push(b(next_k));
                    }
                    if m.halted().is_some() {
                        halt = m.halted();
                        break;
                    }
                }
            }
        }
        if halt.is_none() {
            return fail(format!(
                "rv32 program {} {} steps",
                Divergence::BUDGET_MARKER,
                self.budget
            ));
        }

        let sync = Arc::new(Mutex::new(art9_sim::observers::SyncPoints::new(
            watched.iter().copied(),
        )));
        let mut core = SimBuilder::new(&self.t.program)
            .tdm_words(self.plan.tdm_words)
            .backend(Backend::Pipelined)
            .observer(sync.clone())
            .build();
        match core.run_for(Budget::Steps(
            PER_SYNC_BUDGET.saturating_mul(4).max(1 << 20),
        )) {
            Ok(summary) if summary.halt.is_some() => {}
            Ok(_) => {
                return fail(format!(
                    "pipelined art9 {} its cycle budget",
                    Divergence::BUDGET_MARKER
                ))
            }
            Err(e) => return fail(format!("pipelined art9 faulted: {e}")),
        }
        stats.cosim_art9_instructions += core.retired();

        let crossings = sync.lock().unwrap().crossings().to_vec();
        if crossings != expected {
            let first = crossings
                .iter()
                .zip(expected.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| crossings.len().min(expected.len()));
            return fail(format!(
                "boundary-crossing trace diverges at entry {first}: pipelined {:?} vs rv32 \
                 path {:?} ({} vs {} crossings)",
                crossings.get(first),
                expected.get(first),
                crossings.len(),
                expected.len()
            ));
        }
        stats.cosim_sync_points += crossings.len() as u64;

        if let Some(d) = self
            .plan
            .compare(self.t, self.rv.text(), &*core, &m, &mem, None)
        {
            return fail(format!("at halt: {d}"));
        }
        if let Some(d) = self.plan.compare_memory_window(self.t, &mem, &*core, &m) {
            return fail(format!("at halt: {d}"));
        }
        None
    }
}

/// Translates `src` and runs the compiler-lockstep oracle on the
/// functional backend, then again with the direct-threaded backend as
/// the architectural core — the campaign entry point. Parse/translate
/// failures are reported as harness-marked divergences (the generator
/// is supposed to make them impossible).
pub fn check_compiler_lockstep(
    src: &str,
    rv32_budget: u64,
    stats: &mut OracleStats,
) -> Option<Divergence> {
    let fail = |detail: String| {
        Some(Divergence {
            oracle: Oracle::CompilerLockstep,
            detail,
        })
    };
    let rv = match parse_program(src) {
        Ok(p) => p,
        Err(e) => return fail(format!("{HARNESS_MARKER} source failed to parse: {e}")),
    };
    let t = match translate_with_tdm(&rv, COSIM_TDM_WORDS) {
        Ok(t) => t,
        Err(e) => return fail(format!("{HARNESS_MARKER} translation failed: {e}")),
    };
    let cosim = match CoSim::new(&rv, &t, rv32_budget) {
        Ok(c) => c,
        Err(e) => return fail(format!("{HARNESS_MARKER} {e}")),
    };
    let builder = SimBuilder::new(&t.program).tdm_words(cosim.tdm_words());
    let mut core = builder.build_functional();
    if let Some(d) = cosim.run(&mut core, stats) {
        return Some(d);
    }
    // Second pass with the threaded backend: translation validation at
    // RV32-instruction granularity doubles as a conformance check of
    // its compiled-op stepping path on real (non-random) control flow.
    let mut threaded = builder.build_threaded();
    cosim.run(&mut threaded, stats).map(|d| Divergence {
        oracle: d.oracle,
        detail: format!("threaded backend: {}", d.detail),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv32gen::{generate_rv32, rv32_step_budget, Rv32GenConfig, Rv32Mix};
    use crate::FuzzRng;
    use art9_isa::{Instruction, Program};

    fn clean(src: &str) {
        let mut stats = OracleStats::default();
        let d = check_compiler_lockstep(src, 100_000, &mut stats);
        assert!(d.is_none(), "{}\n{src}", d.unwrap());
        assert!(stats.cosim_sync_points > 0);
    }

    #[test]
    fn straight_line_and_control_flow_agree() {
        clean("li a0, 100\nli a1, -42\nadd a2, a0, a1\nebreak\n");
        clean(
            "li a0, 10\nli a1, 0\nloop:\nadd a1, a1, a0\naddi a0, a0, -1\n\
             bnez a0, loop\nebreak\n",
        );
        clean("li a0, 37\nli a1, -21\nmul a2, a0, a1\ndiv a3, a0, a1\nrem a4, a0, a1\nebreak\n");
        // Division by zero: both sides must agree on the RISC-V corner.
        clean("li a0, 55\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\nebreak\n");
        // Calls, the stack, and falling off the end.
        clean(
            "li a0, 5\ncall double\nebreak\ndouble:\naddi sp, sp, -4\nsw ra, 0(sp)\n\
             add a0, a0, a0\nlw ra, 0(sp)\naddi sp, sp, 4\nret\n",
        );
        clean("li a0, 1\nli a1, 2\nadd a2, a0, a1\n");
        // Memory plus the scaled-index conversion.
        clean(
            ".data\narr: .word 5, -3, 9, 0\n.text\nla a5, arr\nlw a1, 0(a5)\n\
             li a0, 2\nslli a7, a0, 2\nadd a6, a5, a7\nlw a2, 0(a6)\n\
             add a1, a1, a2\nsw a1, 12(a5)\nebreak\n",
        );
    }

    #[test]
    fn generated_programs_are_clean_on_every_architectural_backend() {
        for mix in Rv32Mix::ALL {
            let cfg = Rv32GenConfig {
                mix,
                ..Rv32GenConfig::default()
            };
            for i in 0..8 {
                let src = generate_rv32(&mut FuzzRng::for_iteration(13, i), &cfg);
                let rv = parse_program(&src).unwrap();
                let t = translate_with_tdm(&rv, COSIM_TDM_WORDS).unwrap();
                let cosim = CoSim::new(&rv, &t, rv32_step_budget(&cfg)).unwrap();
                for backend in [Backend::Functional, Backend::Reference, Backend::Threaded] {
                    let mut stats = OracleStats::default();
                    let mut core = SimBuilder::new(&t.program)
                        .tdm_words(cosim.tdm_words())
                        .backend(backend)
                        .build();
                    let d = cosim.run(&mut *core, &mut stats);
                    assert!(
                        d.is_none(),
                        "{} iter {i} on {backend}: {}\n{src}",
                        mix.name(),
                        d.unwrap()
                    );
                }
                let mut stats = OracleStats::default();
                let d = cosim.run_pipelined(&mut stats);
                assert!(
                    d.is_none(),
                    "{} iter {i} pipelined: {}\n{src}",
                    mix.name(),
                    d.unwrap()
                );
                assert!(stats.cosim_sync_points > 0);
            }
        }
    }

    /// Rebuilds a translation's program with one instruction mutated —
    /// a stand-in for a mapping/redundancy/relaxation bug downstream of
    /// the provenance map.
    fn corrupt(t: &Translation, pick: impl Fn(&Instruction) -> Option<Instruction>) -> Translation {
        let mut t = t.clone();
        let mut text = t.program.text().to_vec();
        let at = text
            .iter()
            .position(|i| pick(i).is_some())
            .expect("mutable instruction present");
        text[at] = pick(&text[at]).unwrap();
        t.program = Program::new(
            text,
            t.program.data().to_vec(),
            Default::default(),
            Vec::new(),
        );
        t
    }

    #[test]
    fn injected_wrong_immediate_is_caught_at_the_first_sync_point() {
        let src = "li a0, 5\nli a1, 7\nadd a2, a0, a1\nebreak\n";
        let rv = parse_program(src).unwrap();
        let t = translate_with_tdm(&rv, COSIM_TDM_WORDS).unwrap();
        // Flip the first LI immediate: 5 materializes as 6.
        let bad = corrupt(&t, |i| match i {
            Instruction::Li { a, imm } if imm.to_i64() == 5 => Some(Instruction::Li {
                a: *a,
                imm: ternary::Trits::from_i64(6).unwrap(),
            }),
            _ => None,
        });
        let cosim = CoSim::new(&rv, &bad, 10_000).unwrap();
        let mut stats = OracleStats::default();
        let mut core = SimBuilder::new(&bad.program)
            .tdm_words(cosim.tdm_words())
            .build_functional();
        let d = cosim
            .run(&mut core, &mut stats)
            .expect("bug must be caught");
        assert_eq!(d.oracle, Oracle::CompilerLockstep);
        assert!(d.detail.contains("a0"), "{d}");
        assert!(d.detail.contains("rv32 #0"), "flagged at the boundary: {d}");
    }

    #[test]
    fn injected_memory_bug_is_caught() {
        let src = ".data\narr: .word 1, 2, 3, 4\n.text\nla a5, arr\nli a0, 9\n\
                   sw a0, 4(a5)\nlw a1, 4(a5)\nebreak\n";
        let rv = parse_program(src).unwrap();
        let t = translate_with_tdm(&rv, COSIM_TDM_WORDS).unwrap();
        // Shift the translated store's displacement by one word.
        let bad = corrupt(&t, |i| match i {
            Instruction::Store { a, b, offset } if offset.to_i64() == 1 => {
                Some(Instruction::Store {
                    a: *a,
                    b: *b,
                    offset: ternary::Trits::from_i64(2).unwrap(),
                })
            }
            _ => None,
        });
        let cosim = CoSim::new(&rv, &bad, 10_000).unwrap();
        let mut stats = OracleStats::default();
        let mut core = SimBuilder::new(&bad.program)
            .tdm_words(cosim.tdm_words())
            .build_functional();
        let d = cosim
            .run(&mut core, &mut stats)
            .expect("bug must be caught");
        assert!(
            d.detail.contains("mem word") || d.detail.contains("a1"),
            "{d}"
        );
    }

    #[test]
    fn injected_control_bug_is_caught_by_the_pipelined_trace() {
        let src = "li a0, 3\nli a1, 0\nloop:\nadd a1, a1, a0\naddi a0, a0, -1\n\
                   bnez a0, loop\nebreak\n";
        let rv = parse_program(src).unwrap();
        let t = translate_with_tdm(&rv, COSIM_TDM_WORDS).unwrap();
        // Invert the translated loop branch (bnez maps to a BNE).
        let bad = corrupt(&t, |i| match i {
            Instruction::Bne { b, cond, offset } if offset.to_i64() < 0 => Some(Instruction::Beq {
                b: *b,
                cond: *cond,
                offset: *offset,
            }),
            _ => None,
        });
        let cosim = CoSim::new(&rv, &bad, 10_000).unwrap();
        let mut stats = OracleStats::default();
        let d = cosim.run_pipelined(&mut stats).expect("bug must be caught");
        assert!(
            d.detail.contains("trace") || d.detail.contains("crossings") || d.detail.contains("a1"),
            "{d}"
        );
    }

    #[test]
    fn harness_failures_are_marked() {
        let mut stats = OracleStats::default();
        let d = check_compiler_lockstep("not rv32 at all\n", 1_000, &mut stats).unwrap();
        assert!(d.detail.starts_with(HARNESS_MARKER), "{d}");
        // auipc parses but cannot translate.
        let d = check_compiler_lockstep("auipc a0, 1\nebreak\n", 1_000, &mut stats).unwrap();
        assert!(d.detail.starts_with(HARNESS_MARKER), "{d}");
        assert!(d.detail.contains("translation failed"), "{d}");
    }

    #[test]
    fn memory_map_constants_line_up() {
        // The affine map must send DATA_BASE to DATA_WORD_BASE and the
        // top of rv32 memory to the top of the TDM.
        let bytes = cosim_mem_bytes(COSIM_TDM_WORDS);
        assert_eq!(
            (bytes - DATA_BASE as usize) / 4 + DATA_WORD_BASE as usize,
            COSIM_TDM_WORDS
        );
    }
}
