//! Seeded random **RV32IM** program generation for the cross-ISA
//! compiler-lockstep oracle.
//!
//! Where [`generate`](crate::generate) produces ART-9 programs to
//! cross-check the three simulators against each other, this generator
//! produces *RV32 assembly* to cross-check the §III-A compiling
//! framework against the `rv32` machine. Programs are:
//!
//! * **accepted by `translate` by construction** — only the faithful
//!   subset is emitted (no `auipc`, no sub-word memory, no dynamic
//!   shifts, no `mulh`, ≤ 11 renameable registers), and address-typed
//!   registers follow the flow-insensitive pointer discipline the
//!   operand-conversion analysis requires;
//! * **terminating by construction** — backward branches exist only in
//!   a counted-loop template whose counter register nothing else
//!   writes, `jalr` only in a call template, so every run halts within
//!   [`rv32_step_budget`];
//! * **value-bounded by construction** — the translation contract is
//!   faithfulness for programs whose live values fit the 9-trit window
//!   (±9841), so the generator tracks a static magnitude bound per
//!   register (iterating loop effects through the known trip count) and
//!   falls back to a fresh `li` whenever an operation could overflow.
//!   Divergences are therefore always compiler bugs, never contract
//!   violations.
//!
//! The output is assembly **source** (one instruction per line, labels
//! on their own lines), which doubles as the replay format: a minimized
//! failing case is a valid `.s` file `rv32::parse_program` accepts.

use std::collections::{BTreeMap, BTreeSet};

use crate::rng::FuzzRng;

/// Magnitude cap on every tracked register value: comfortably inside
/// the ±9841 Word9 window, with headroom for one more add.
const CAP: i64 = 4500;

/// Magnitude of initial data words (keeps loaded values combinable).
const DATA_MAG: i64 = 500;

/// Maximum counted-loop trip count.
const LOOP_COUNT_MAX: i64 = 6;
/// Maximum instructions in a loop body (before bookkeeping).
const LOOP_BODY_MAX: usize = 10;
/// Maximum instructions in a call-template sub body.
const CALL_BODY_MAX: usize = 6;
/// Maximum instructions skipped over by a forward-branch template.
const SKIP_SPAN_MAX: usize = 5;

/// The loop counter register; written only by the loop template.
const COUNTER: &str = "s1";
/// The `la`-established base pointer register.
const PTR: &str = "a5";
/// The derived pointer of the scaled-index template.
const PTR_IDX: &str = "a6";
/// The scaled index register (written only by `slli …, 2`).
const IDX: &str = "a7";

/// Action classes the [`Rv32Mix`] weights against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// One register/immediate ALU instruction (add/sub/slt/mul/div/…).
    Alu,
    /// A constant materialization (`li`, small `lui`).
    Imm,
    /// A `lw`/`sw` through the `la`-established pointer.
    Mem,
    /// A conditional forward branch over freshly generated filler.
    Skip,
    /// A counted loop.
    Loop,
    /// A `jal`/`ret` call template.
    Call,
    /// A balanced `sp`-relative push/pop template.
    Stack,
    /// A `slli ×4` scaled-index access (the operand-conversion
    /// index-to-move path).
    Index,
}

const ACTIONS: [Action; 8] = [
    Action::Alu,
    Action::Imm,
    Action::Mem,
    Action::Skip,
    Action::Loop,
    Action::Call,
    Action::Stack,
    Action::Index,
];

/// A weighted RV32 instruction mix.
///
/// # Examples
///
/// ```
/// use art9_fuzz::Rv32Mix;
///
/// let mix: Rv32Mix = "rv-spill".parse()?;
/// assert_eq!(mix.name(), "rv-spill");
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rv32Mix {
    name: &'static str,
    /// Relative weight per [`Action`], in `ACTIONS` order.
    weights: [u32; 8],
    /// Data registers random instructions may use.
    pool: &'static [&'static str],
    /// Whether the scaled-index template is available (costs two extra
    /// dedicated registers).
    use_index: bool,
}

/// The default five-register data pool.
const POOL5: &[&str] = &["a0", "a1", "a2", "a3", "a4"];
/// The spill-pressure pool: with the four dedicated template registers
/// this reaches the renamer's 4-direct + 7-spill capacity exactly.
const POOL8: &[&str] = &["a0", "a1", "a2", "a3", "a4", "s2", "s3", "s4"];

impl Rv32Mix {
    /// Even coverage of every construct (the default).
    pub const BALANCED: Rv32Mix = Rv32Mix {
        name: "rv-balanced",
        weights: [6, 4, 3, 2, 2, 1, 1, 1],
        pool: POOL5,
        use_index: true,
    };
    /// Mostly arithmetic: stresses the two-address folding, the slt
    /// idioms and the mul/div runtime calls.
    pub const ALU: Rv32Mix = Rv32Mix {
        name: "rv-alu",
        weights: [12, 6, 1, 1, 1, 0, 0, 0],
        pool: POOL5,
        use_index: true,
    };
    /// Mostly memory: stresses address re-scaling, offset folding and
    /// the scaled-index conversion.
    pub const MEMORY: Rv32Mix = Rv32Mix {
        name: "rv-memory",
        weights: [2, 3, 9, 1, 2, 0, 2, 3],
        pool: POOL5,
        use_index: true,
    };
    /// Mostly branches, loops and calls: stresses branch relaxation and
    /// the link-register paths.
    pub const CONTROL: Rv32Mix = Rv32Mix {
        name: "rv-control",
        weights: [2, 2, 1, 6, 4, 3, 1, 0],
        pool: POOL5,
        use_index: false,
    };
    /// Eight-register pool: forces the 32→9 renamer into TDM spill
    /// slots on nearly every program.
    pub const SPILL: Rv32Mix = Rv32Mix {
        name: "rv-spill",
        weights: [8, 5, 3, 2, 2, 1, 1, 0],
        pool: POOL8,
        use_index: false,
    };

    /// Every named mix.
    pub const ALL: [Rv32Mix; 5] = [
        Rv32Mix::BALANCED,
        Rv32Mix::ALU,
        Rv32Mix::MEMORY,
        Rv32Mix::CONTROL,
        Rv32Mix::SPILL,
    ];

    /// The mix's name (accepted back by `FromStr`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn pick(&self, rng: &mut FuzzRng) -> Action {
        let total: u32 = self.weights.iter().sum();
        let mut roll = rng.below(u64::from(total)) as u32;
        for (action, w) in ACTIONS.iter().zip(self.weights) {
            if roll < w {
                return *action;
            }
            roll -= w;
        }
        Action::Alu
    }
}

impl std::str::FromStr for Rv32Mix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Rv32Mix::ALL
            .iter()
            .find(|m| m.name == s)
            .copied()
            .ok_or_else(|| {
                let names: Vec<&str> = Rv32Mix::ALL.iter().map(|m| m.name).collect();
                format!(
                    "unknown rv32 mix {s:?} (expected one of {})",
                    names.join(", ")
                )
            })
    }
}

/// Tuning knobs for the RV32 generator.
#[derive(Debug, Clone, Copy)]
pub struct Rv32GenConfig {
    /// Upper bound on generated source instructions (excluding labels
    /// and the final `ebreak`).
    pub max_len: usize,
    /// The weighted construct mix.
    pub mix: Rv32Mix,
    /// Maximum counted loops per program.
    pub loop_budget: usize,
    /// Maximum `.word` entries in the data section.
    pub max_data_words: usize,
}

impl Default for Rv32GenConfig {
    fn default() -> Self {
        Self {
            max_len: 60,
            mix: Rv32Mix::BALANCED,
            loop_budget: 4,
            max_data_words: 24,
        }
    }
}

/// Worst-case RV32 instructions a generated program executes, plus
/// slack — the `rv32::Machine` step budget (exceeding it is itself
/// reported as a divergence).
pub fn rv32_step_budget(cfg: &Rv32GenConfig) -> u64 {
    let per_loop = (LOOP_BODY_MAX as u64 * 3 + 4) * LOOP_COUNT_MAX as u64;
    256 + 4 * cfg.max_len as u64 + cfg.loop_budget as u64 * per_loop
}

/// The incremental generator state.
struct Gen<'a> {
    rng: &'a mut FuzzRng,
    lines: Vec<String>,
    emitted: usize,
    next_label: u32,
    mix: Rv32Mix,
    /// Static magnitude bound per data register.
    bound: BTreeMap<&'static str, i64>,
    /// Upper bound on any value the data array can hold.
    mem_bound: i64,
    /// Data words in the `.data` section (0 disables memory templates).
    data_words: usize,
    /// Whether `la PTR, arr` has been emitted with offset 0 since the
    /// last invalidation (loop bodies invalidate it).
    ptr_established: bool,
}

impl Gen<'_> {
    fn label(&mut self) -> String {
        let l = self.next_label;
        self.next_label += 1;
        format!("L{l}")
    }

    fn put(&mut self, line: String) {
        self.emitted += 1;
        self.lines.push(line);
    }

    fn put_label(&mut self, l: &str) {
        self.lines.push(format!("{l}:"));
    }

    fn reg(&mut self) -> &'static str {
        self.mix.pool[self.rng.index(self.mix.pool.len())]
    }

    /// `li r, v` and record the bound.
    fn li(&mut self, r: &'static str, v: i64) {
        self.put(format!("li {r}, {v}"));
        self.bound.insert(r, v.abs().max(1));
    }

    fn small(&mut self) -> i64 {
        self.rng.range_i64(-100, 100)
    }

    /// One ALU-class instruction whose result provably stays in the
    /// window, given the current bounds. `writable` restricts the
    /// destination; `readable` the sources; `None` means the whole pool.
    fn alu(&mut self, writable: &[&'static str], readable: &[&'static str]) {
        let rd = writable[self.rng.index(writable.len())];
        let rs1 = readable[self.rng.index(readable.len())];
        let rs2 = readable[self.rng.index(readable.len())];
        let (b1, b2) = (self.bound_of(rs1), self.bound_of(rs2));
        let choice = self.rng.below(12);
        match choice {
            0..=2 if b1 + b2 <= CAP => {
                let op = if self.rng.chance(1, 2) { "add" } else { "sub" };
                self.put(format!("{op} {rd}, {rs1}, {rs2}"));
                self.bound.insert(rd, b1 + b2);
            }
            3..=4 => {
                let imm = self.rng.range_i64(-60, 60);
                if b1 + imm.abs() <= CAP {
                    self.put(format!("addi {rd}, {rs1}, {imm}"));
                    self.bound.insert(rd, b1 + imm.abs());
                } else {
                    let v = self.small();
                    self.li(rd, v);
                }
            }
            5 => {
                self.put(format!("slt {rd}, {rs1}, {rs2}"));
                self.bound.insert(rd, 1);
            }
            6 => {
                let imm = self.rng.range_i64(-60, 60);
                self.put(format!("slti {rd}, {rs1}, {imm}"));
                self.bound.insert(rd, 1);
            }
            7 => {
                let op = if self.rng.chance(1, 2) {
                    "seqz"
                } else {
                    "snez"
                };
                self.put(format!("{op} {rd}, {rs1}"));
                self.bound.insert(rd, 1);
            }
            8 if b1 * b2 <= CAP && b1 > 0 && b2 > 0 => {
                self.put(format!("mul {rd}, {rs1}, {rs2}"));
                self.bound.insert(rd, b1 * b2);
            }
            9 => {
                // div/rem cover the divide-by-zero corner whenever rs2
                // happens to hold zero: |q| <= max(|a|, 1), |r| <= |a|.
                let op = if self.rng.chance(1, 2) { "div" } else { "rem" };
                self.put(format!("{op} {rd}, {rs1}, {rs2}"));
                self.bound.insert(rd, b1.max(1));
            }
            10 => {
                let k = self.rng.range_i64(1, 3) as u32;
                if b1 << k <= CAP {
                    self.put(format!("slli {rd}, {rs1}, {k}"));
                    self.bound.insert(rd, b1 << k);
                } else {
                    let v = self.small();
                    self.li(rd, v);
                }
            }
            _ => {
                let op = if self.rng.chance(1, 2) { "neg" } else { "mv" };
                self.put(format!("{op} {rd}, {rs1}"));
                self.bound.insert(rd, b1);
            }
        }
    }

    fn bound_of(&self, r: &str) -> i64 {
        self.bound.get(r).copied().unwrap_or(0).max(1)
    }

    /// A constant materialization: `li` (occasionally large) or a small
    /// `lui`.
    fn imm(&mut self) {
        let rd = self.reg();
        if self.rng.chance(1, 6) {
            let h = self.rng.range_i64(-2, 2);
            self.put(format!("lui {rd}, {h}"));
            self.bound.insert(rd, h.abs() * 4096);
        } else if self.rng.chance(1, 5) {
            let v = self.rng.range_i64(-2000, 2000);
            self.li(rd, v);
        } else {
            let v = self.small();
            self.li(rd, v);
        }
    }

    /// Ensures `PTR` holds the data-array base (byte offset 0).
    fn ensure_ptr(&mut self) {
        if !self.ptr_established || self.rng.chance(1, 6) {
            self.put(format!("la {PTR}, arr"));
            self.ptr_established = true;
        }
    }

    /// A `lw`/`sw` through `PTR`. Inside loop bodies (`body` set) two
    /// extra rules keep the static bounds sound across iterations:
    /// loads write only body-*locals* (an outer written mid-body would
    /// feed next iteration's earlier reads a value its recorded bound
    /// never covered), and stores must not store a memory-derived
    /// (tainted) value, or the static memory bound would grow per
    /// iteration.
    fn mem(&mut self, body: Option<(&[&'static str], &mut BTreeSet<&'static str>)>) {
        if self.data_words == 0 {
            self.imm();
            return;
        }
        self.ensure_ptr();
        let j = self.rng.index(self.data_words) as i64;
        match body {
            Some((locals, tainted)) => {
                let rd = locals[self.rng.index(locals.len())];
                if self.rng.chance(1, 2) || tainted.contains(rd) {
                    self.put(format!("lw {rd}, {}({PTR})", 4 * j));
                    self.bound.insert(rd, self.mem_bound);
                    tainted.insert(rd);
                } else {
                    self.put(format!("sw {rd}, {}({PTR})", 4 * j));
                    self.mem_bound = self.mem_bound.max(self.bound_of(rd));
                }
            }
            None => {
                let rd = self.reg();
                if self.rng.chance(1, 2) {
                    self.put(format!("lw {rd}, {}({PTR})", 4 * j));
                    self.bound.insert(rd, self.mem_bound);
                } else {
                    self.put(format!("sw {rd}, {}({PTR})", 4 * j));
                    self.mem_bound = self.mem_bound.max(self.bound_of(rd));
                }
            }
        }
    }

    /// The scaled-index template: `li` an index, `slli ×4`, add to the
    /// base pointer, access through the derived pointer — the exact
    /// shape the operand-conversion analysis turns into a plain move.
    fn index_access(&mut self) {
        if self.data_words < 2 || !self.mix.use_index {
            self.mem(None);
            return;
        }
        self.ensure_ptr();
        let j = self.rng.index(self.data_words - 1) as i64;
        let d = self.reg();
        self.li(d, j);
        self.put(format!("slli {IDX}, {d}, 2"));
        self.put(format!("add {PTR_IDX}, {PTR}, {IDX}"));
        let rd = self.reg();
        if self.rng.chance(1, 2) {
            self.put(format!("lw {rd}, 0({PTR_IDX})"));
            self.bound.insert(rd, self.mem_bound);
        } else {
            self.put(format!("sw {rd}, 0({PTR_IDX})"));
            self.mem_bound = self.mem_bound.max(self.bound_of(rd));
        }
    }

    /// A conditional forward branch over freshly generated filler.
    /// Register bounds after the template are the join (max) of both
    /// paths.
    fn skip(&mut self) {
        let rs1 = self.reg();
        let rs2 = self.reg();
        let op = ["beq", "bne", "blt", "bge"][self.rng.index(4)];
        let l = self.label();
        self.put(format!("{op} {rs1}, {rs2}, {l}"));
        let snapshot = self.bound.clone();
        let span = 1 + self.rng.index(SKIP_SPAN_MAX);
        for _ in 0..span {
            let pool = self.mix.pool;
            self.alu(pool, pool);
        }
        self.put_label(&l);
        // Join: either path may have run.
        for (r, b) in snapshot {
            let e = self.bound.entry(r).or_insert(b);
            *e = (*e).max(b);
        }
    }

    /// A counted loop. The body partitions the pool into *locals*
    /// (re-`li`'d every iteration — no accumulation) and read-only
    /// *outers*, plus one optional accumulator with statically bounded
    /// per-iteration growth; memory stores only untainted values. Every
    /// per-iteration effect is therefore idempotent or pre-multiplied
    /// by the trip count, so the static bounds stay sound.
    fn counted_loop(&mut self) {
        let k = self.rng.range_i64(1, LOOP_COUNT_MAX);
        self.put(format!("li {COUNTER}, {k}"));
        let top = self.label();
        self.put_label(&top);
        self.ptr_established = false; // the backward edge must re-`la`

        // Partition: 1..=3 locals, the rest outers.
        let mut pool: Vec<&'static str> = self.mix.pool.to_vec();
        for i in (1..pool.len()).rev() {
            let j = self.rng.index(i + 1);
            pool.swap(i, j);
        }
        let n_locals = 1 + self.rng.index(3.min(pool.len()));
        let locals: Vec<&'static str> = pool[..n_locals].to_vec();
        let outers: Vec<&'static str> = pool[n_locals..].to_vec();

        // Accumulator: one outer, bounded growth per iteration.
        let acc = (!outers.is_empty() && self.rng.chance(1, 2))
            .then(|| outers[self.rng.index(outers.len())]);

        // Locals are defined before use, every iteration.
        for r in &locals {
            let v = self.small();
            self.li(r, v);
        }
        let mut tainted: BTreeSet<&'static str> = BTreeSet::new();
        // Sources: locals plus outers, except the accumulator — its
        // mid-loop value exceeds its recorded (pre-loop) bound.
        let readable: Vec<&'static str> = locals
            .iter()
            .chain(outers.iter())
            .copied()
            .filter(|r| Some(*r) != acc)
            .collect();

        let body_len = 1 + self.rng.index(LOOP_BODY_MAX - 1);
        let mut acc_growth = 0i64;
        for _ in 0..body_len {
            let roll = self.rng.below(10);
            if roll < 2 && self.data_words > 0 {
                self.mem(Some((&locals, &mut tainted)));
            } else if roll < 4 && acc.is_some() {
                // Accumulator update: growth per iteration is capped at
                // 100, and the guard keeps bound + k·growth inside the
                // window — emitting a reset instead when it would not.
                let a = acc.expect("checked");
                let small_local = locals
                    .iter()
                    .copied()
                    .find(|r| !tainted.contains(r) && self.bound_of(r) <= 100);
                let (line, g) = match small_local {
                    Some(src) if self.rng.chance(1, 2) => {
                        (format!("add {a}, {a}, {src}"), self.bound_of(src))
                    }
                    _ => {
                        let imm = self.rng.range_i64(-40, 40);
                        (format!("addi {a}, {a}, {imm}"), imm.abs())
                    }
                };
                if self.bound_of(a) + (acc_growth + g) * k > CAP {
                    // Would overflow across the remaining iterations:
                    // re-zero instead (runs every iteration, so the
                    // accumulation restarts from the reset point).
                    self.li(a, 0);
                    acc_growth = 0;
                } else {
                    self.put(line);
                    acc_growth += g;
                }
            } else {
                self.alu(&locals, &readable);
                if !tainted.is_empty() {
                    // Conservative: once anything is memory-derived,
                    // treat every local as memory-derived (stores of
                    // tainted values are what must not repeat).
                    tainted.extend(locals.iter().copied());
                }
            }
        }
        if let Some(a) = acc {
            let b = self.bound_of(a) + acc_growth * k;
            self.bound.insert(a, b.min(CAP));
        }

        self.put(format!("addi {COUNTER}, {COUNTER}, -1"));
        self.put(format!("bgtz {COUNTER}, {top}"));
        self.ptr_established = false;
    }

    /// The call template:
    ///
    /// ```text
    ///     jal  ra, Lsub
    ///     j    Lafter         # on return, skip the sub body
    /// Lsub:
    ///     <straight-line body>
    ///     ret
    /// Lafter:
    /// ```
    fn call(&mut self) {
        let sub = self.label();
        let after = self.label();
        self.put(format!("jal ra, {sub}"));
        self.put(format!("j {after}"));
        self.put_label(&sub);
        let n = 1 + self.rng.index(CALL_BODY_MAX);
        for _ in 0..n {
            let pool = self.mix.pool;
            self.alu(pool, pool);
        }
        self.put("ret".into());
        self.put_label(&after);
    }

    /// A balanced push/pop through `sp` — exercises the stack
    /// convention and the `sp` re-scaling.
    fn stack(&mut self) {
        let x = self.reg();
        let y = self.reg();
        self.put("addi sp, sp, -8".into());
        self.put(format!("sw {x}, 0(sp)"));
        self.put(format!("sw {y}, 4(sp)"));
        let (bx, by) = (self.bound_of(x), self.bound_of(y));
        let pool = self.mix.pool;
        self.alu(pool, pool);
        let rd = self.reg();
        // The reload observes the stored bound, not the current one.
        if self.rng.chance(1, 2) {
            self.put(format!("lw {rd}, 0(sp)"));
            self.bound.insert(rd, bx);
        } else {
            self.put(format!("lw {rd}, 4(sp)"));
            self.bound.insert(rd, by);
        }
        self.put("addi sp, sp, 8".into());
    }
}

/// Generates one random, translatable, terminating RV32 program as
/// assembly source.
///
/// # Examples
///
/// ```
/// use art9_fuzz::{generate_rv32, FuzzRng, Rv32GenConfig};
///
/// let cfg = Rv32GenConfig::default();
/// let a = generate_rv32(&mut FuzzRng::for_iteration(42, 0), &cfg);
/// let b = generate_rv32(&mut FuzzRng::for_iteration(42, 0), &cfg);
/// assert_eq!(a, b); // same (seed, index) => same program
/// rv32::parse_program(&a)?;
/// # Ok::<(), rv32::Rv32Error>(())
/// ```
pub fn generate_rv32(rng: &mut FuzzRng, cfg: &Rv32GenConfig) -> String {
    let data_words = if cfg.max_data_words >= 4 {
        4 + rng.index(cfg.max_data_words - 3)
    } else {
        0
    };
    let mut g = Gen {
        rng,
        lines: Vec::new(),
        emitted: 0,
        next_label: 0,
        mix: cfg.mix,
        bound: BTreeMap::new(),
        mem_bound: DATA_MAG,
        data_words,
        ptr_established: false,
    };

    // Data section.
    let mut header = Vec::new();
    if data_words > 0 {
        let vals: Vec<String> = (0..data_words)
            .map(|_| g.rng.range_i64(-DATA_MAG, DATA_MAG).to_string())
            .collect();
        header.push(".data".to_string());
        header.push(format!("arr: .word {}", vals.join(", ")));
        header.push(".text".to_string());
    }

    // Prologue: seed a few registers with known small values.
    let seeded = 2 + g.rng.index(3);
    for _ in 0..seeded {
        let r = g.reg();
        let v = g.small();
        g.li(r, v);
    }

    let target = 12 + g.rng.index(cfg.max_len.max(13) - 12);
    let mut loops_left = cfg.loop_budget;
    while g.emitted < target {
        match cfg.mix.pick(g.rng) {
            Action::Alu => {
                let pool = g.mix.pool;
                g.alu(pool, pool);
            }
            Action::Imm => g.imm(),
            Action::Mem => g.mem(None),
            Action::Skip => g.skip(),
            Action::Loop => {
                if loops_left > 0 {
                    loops_left -= 1;
                    g.counted_loop();
                } else {
                    let pool = g.mix.pool;
                    g.alu(pool, pool);
                }
            }
            Action::Call => g.call(),
            Action::Stack => g.stack(),
            Action::Index => g.index_access(),
        }
    }

    // Epilogue: explicit halt, or (rarely) fall off the end — both are
    // halt conditions the translation preserves.
    if g.rng.chance(9, 10) {
        g.put("ebreak".into());
    }

    let mut out = header;
    out.extend(g.lines);
    out.join("\n") + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv32::parse_program;

    fn gen(seed: u64, i: u64, cfg: &Rv32GenConfig) -> String {
        generate_rv32(&mut FuzzRng::for_iteration(seed, i), cfg)
    }

    #[test]
    fn reproducible_and_seed_sensitive() {
        let cfg = Rv32GenConfig::default();
        for i in 0..10 {
            assert_eq!(gen(42, i, &cfg), gen(42, i, &cfg));
        }
        assert_ne!(gen(42, 0, &cfg), gen(43, 0, &cfg));
    }

    #[test]
    fn every_mix_parses_translates_and_terminates() {
        for mix in Rv32Mix::ALL {
            let cfg = Rv32GenConfig {
                mix,
                ..Rv32GenConfig::default()
            };
            for i in 0..25 {
                let src = gen(7, i, &cfg);
                let p = parse_program(&src)
                    .unwrap_or_else(|e| panic!("{} iter {i}: {e}\n{src}", mix.name()));
                art9_compiler::translate(&p)
                    .unwrap_or_else(|e| panic!("{} iter {i}: {e}\n{src}", mix.name()));
                let mut m = rv32::Machine::new(&p);
                m.run(rv32_step_budget(&cfg))
                    .unwrap_or_else(|e| panic!("{} iter {i}: {e}\n{src}", mix.name()));
            }
        }
    }

    #[test]
    fn rv32_values_stay_inside_the_ternary_window() {
        // The faithfulness contract: every architectural value of every
        // generated program must fit ±9841 at every step.
        let cfg = Rv32GenConfig::default();
        for i in 0..25 {
            let src = gen(11, i, &cfg);
            let p = parse_program(&src).unwrap();
            let mut m = rv32::Machine::new(&p);
            loop {
                match m.step().unwrap() {
                    Err(_) => break,
                    Ok(_) => {
                        for r in 0..32 {
                            if r == rv32::Reg::SP.index() || r == rv32::Reg::RA.index() {
                                continue; // address-domain registers
                            }
                            let v = m.regs()[r] as i32 as i64;
                            let is_ptr = matches!(r, 15 | 16) // a5, a6
                                && v >= rv32::DATA_BASE as i64;
                            assert!(
                                v.abs() <= 9841 || is_ptr,
                                "iteration {i}: x{r} = {v}\n{src}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn spill_mix_reaches_the_spill_slots() {
        let cfg = Rv32GenConfig {
            mix: Rv32Mix::SPILL,
            max_len: 80,
            ..Rv32GenConfig::default()
        };
        let mut spilled = 0;
        for i in 0..10 {
            let src = gen(3, i, &cfg);
            let p = parse_program(&src).unwrap();
            let t = art9_compiler::translate(&p).unwrap();
            spilled += t.allocation.spill_count();
        }
        assert!(spilled > 0, "spill mix never spilled");
    }

    #[test]
    fn mix_names_parse_back() {
        for m in Rv32Mix::ALL {
            assert_eq!(m.name().parse::<Rv32Mix>().unwrap(), m);
        }
        assert!("bogus".parse::<Rv32Mix>().is_err());
    }
}
