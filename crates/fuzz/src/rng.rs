//! The fuzzer's deterministic random number generator.
//!
//! A SplitMix64 stream: tiny, fast, full-period over its 64-bit state,
//! and — crucially for a differential fuzzer — *splittable*. Every fuzz
//! iteration derives its own independent stream from `(seed, index)`
//! via [`FuzzRng::for_iteration`], so the programs generated for
//! iteration `i` are identical whether iterations run serially or fan
//! out across `rayon` worker threads in any order.

/// A deterministic SplitMix64 random number generator.
///
/// # Examples
///
/// ```
/// use art9_fuzz::FuzzRng;
///
/// let mut a = FuzzRng::new(42);
/// let mut b = FuzzRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

/// Weyl-sequence increment of SplitMix64 (the golden-ratio constant).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl FuzzRng {
    /// A generator seeded directly from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The independent stream for fuzz iteration `index` under `seed`.
    ///
    /// The derivation runs the iteration index through one extra mixing
    /// round so neighbouring iterations land in unrelated regions of
    /// the state space.
    pub fn for_iteration(seed: u64, index: u64) -> Self {
        let mut rng = Self::new(seed ^ mix(index.wrapping_mul(GAMMA).wrapping_add(GAMMA)));
        // Discard one output so `seed == 0, index == 0` does not start
        // from the all-zero state.
        rng.next_u64();
        rng
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// A uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) has no valid result");
        // Multiply-shift range reduction; the modulo bias at 64 bits is
        // far below anything a fuzzer could observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniformly random `i64` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// A uniformly random index into a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// The SplitMix64 finalizer (also used to derive iteration streams).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = FuzzRng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FuzzRng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = FuzzRng::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn iteration_streams_are_independent() {
        let mut a = FuzzRng::for_iteration(42, 0);
        let mut b = FuzzRng::for_iteration(42, 1);
        // Same seed, different index: unrelated streams.
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
        // Re-derivation reproduces the stream exactly.
        let mut a2 = FuzzRng::for_iteration(42, 0);
        let mut a3 = FuzzRng::for_iteration(42, 0);
        assert_eq!(a2.next_u64(), a3.next_u64());
    }

    #[test]
    fn range_and_below_stay_in_bounds() {
        let mut r = FuzzRng::new(1);
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            let w = r.range_i64(-13, 13);
            assert!((-13..=13).contains(&w));
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = FuzzRng::for_iteration(0, 0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|v| *v != 0));
    }
}
