//! Automatic test-case minimization: greedy instruction deletion.
//!
//! Instructions are *replaced with the canonical NOP* rather than
//! removed — deleting a word would shift every later address and break
//! the PC-relative control flow of the very structure that exposed the
//! bug. After the NOP pass reaches a fixpoint the trailing NOPs (and
//! any unused data words) are truncated when the divergence survives
//! the cut.

use art9_isa::{Instruction, Program, NOP};
use ternary::Word9;

use crate::oracle::Divergence;

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The reduced program (still diverging).
    pub program: Program,
    /// The divergence the reduced program still exhibits.
    pub divergence: Divergence,
    /// Instructions in the original program.
    pub original_len: usize,
    /// Non-NOP instructions that survived.
    pub active_len: usize,
}

/// Greedily minimizes `program` while `check` keeps reporting **the
/// same kind of** divergence.
///
/// `check` must be the same oracle that flagged the original program;
/// it is re-run after every candidate edit, so the reduced program is
/// guaranteed to still diverge. An edit is only kept when the new
/// divergence comes from the same oracle as the original *and*
/// preserves its budget-exhaustion status — otherwise a NOP that, say,
/// breaks a counted loop's decrement would turn a real pipelined bug
/// into an unrelated infinite-loop timeout and minimize *that*
/// instead. Returns `None` when the original program does not diverge
/// under `check` (nothing to minimize).
pub fn minimize<F>(program: &Program, check: F) -> Option<Minimized>
where
    F: Fn(&Program) -> Option<Divergence>,
{
    let mut divergence = check(program)?;
    let original_len = program.text().len();
    let mut text: Vec<Instruction> = program.text().to_vec();
    let mut data: Vec<Word9> = program.data().to_vec();

    // A candidate edit must reproduce the same failure kind, not just
    // *a* failure.
    let same_kind = |d: &Divergence, original: &Divergence| {
        d.oracle == original.oracle && d.is_budget_exhaustion() == original.is_budget_exhaustion()
    };

    // Pass 1: NOP substitution to fixpoint. Scanning back-to-front
    // tends to release dependent chains faster (consumers go first).
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..text.len()).rev() {
            if text[i] == NOP {
                continue;
            }
            let saved = text[i];
            text[i] = NOP;
            match check(&rebuild(&text, &data)) {
                Some(d) if same_kind(&d, &divergence) => {
                    divergence = d;
                    changed = true;
                }
                _ => text[i] = saved,
            }
        }
    }

    // Pass 2: truncate trailing NOPs (one by one — an earlier branch
    // may legally target the instruction just past the end).
    while text.last() == Some(&NOP) {
        let saved = text.pop().expect("nonempty");
        match check(&rebuild(&text, &data)) {
            Some(d) if same_kind(&d, &divergence) => divergence = d,
            _ => {
                text.push(saved);
                break;
            }
        }
    }

    // Pass 3: drop the data image if the divergence is not about it.
    if !data.is_empty() {
        let saved = std::mem::take(&mut data);
        match check(&rebuild(&text, &data)) {
            Some(d) if same_kind(&d, &divergence) => divergence = d,
            _ => data = saved,
        }
    }

    let active_len = text.iter().filter(|i| **i != NOP).count();
    Some(Minimized {
        program: rebuild(&text, &data),
        divergence,
        original_len,
        active_len,
    })
}

/// Outcome of an RV32 source-level minimization run (the
/// compiler-lockstep oracle's counterpart of [`Minimized`]).
#[derive(Debug, Clone)]
pub struct MinimizedRv32 {
    /// The reduced source (still diverging; still a valid `.s` file).
    pub source: String,
    /// The divergence the reduced source still exhibits.
    pub divergence: Divergence,
    /// Instruction lines in the original source.
    pub original_instructions: usize,
    /// Non-`nop` instruction lines that survived.
    pub active_instructions: usize,
}

/// `true` for a source line that is an instruction (not a label,
/// directive, comment or blank) — the only lines minimization edits.
/// A `label: .word …` data line is a directive, not an instruction.
fn is_instruction_line(line: &str) -> bool {
    let mut t = line.trim();
    if let Some((head, rest)) = t.split_once(':') {
        if !head.contains(char::is_whitespace) {
            t = rest.trim(); // inline label prefix
        }
    }
    !(t.is_empty() || t.starts_with('#') || t.starts_with('.'))
}

/// Lines the NOP pass never touches: `la` pointer establishment.
/// NOPing it leaves a null pointer whose dereference compares memory
/// the two machines address differently — the reduced case would
/// diverge for a contract-violating reason instead of the real bug.
fn is_protected_line(line: &str) -> bool {
    let t = line.trim();
    t == "la" || t.starts_with("la ") || t.starts_with("la\t")
}

/// Greedily minimizes RV32 assembly `source` while `check` keeps
/// reporting the same kind of divergence.
///
/// The reduction is line-based: instruction lines are replaced with
/// `nop` (labels stay, so control flow cannot dangle), then trailing
/// `nop`s are dropped. As with [`minimize`], an edit is kept only when
/// the divergence keeps its oracle, its budget-exhaustion status *and*
/// its harness status — a `nop` that breaks a loop's decrement (an
/// infinite loop) or splits an `la` pair (a translate rejection) must
/// not replace the real finding.
pub fn minimize_rv32<F>(source: &str, check: F) -> Option<MinimizedRv32>
where
    F: Fn(&str) -> Option<Divergence>,
{
    let mut divergence = check(source)?;
    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    let original_instructions = lines.iter().filter(|l| is_instruction_line(l)).count();

    let same_kind = |d: &Divergence, original: &Divergence| {
        d.oracle == original.oracle
            && d.is_budget_exhaustion() == original.is_budget_exhaustion()
            && d.detail.contains(crate::cosim::HARNESS_MARKER)
                == original.detail.contains(crate::cosim::HARNESS_MARKER)
    };
    let render = |lines: &[String]| lines.join("\n") + "\n";

    // Pass 1: nop substitution to fixpoint, consumers first.
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..lines.len()).rev() {
            if !is_instruction_line(&lines[i])
                || is_protected_line(&lines[i])
                || lines[i].trim() == "nop"
            {
                continue;
            }
            let saved = std::mem::replace(&mut lines[i], "nop".to_string());
            match check(&render(&lines)) {
                Some(d) if same_kind(&d, &divergence) => {
                    divergence = d;
                    changed = true;
                }
                _ => lines[i] = saved,
            }
        }
    }

    // Pass 2: drop trailing nops (labels at the end may go with them).
    while let Some(last) = lines.iter().rposition(|l| is_instruction_line(l)) {
        if lines[last].trim() != "nop" {
            break;
        }
        let saved = lines.clone();
        lines.truncate(last);
        match check(&render(&lines)) {
            Some(d) if same_kind(&d, &divergence) => divergence = d,
            _ => {
                lines = saved;
                break;
            }
        }
    }

    let active_instructions = lines
        .iter()
        .filter(|l| is_instruction_line(l) && l.trim() != "nop")
        .count();
    Some(MinimizedRv32 {
        source: render(&lines),
        divergence,
        original_instructions,
        active_instructions,
    })
}

/// Builds a bare program from reduced parts.
fn rebuild(text: &[Instruction], data: &[Word9]) -> Program {
    Program::new(
        text.to_vec(),
        data.to_vec(),
        std::collections::BTreeMap::new(),
        Vec::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use art9_isa::assemble;
    use art9_sim::SimBuilder;
    use ternary::Word9;

    /// A synthetic oracle: "diverges" whenever the program leaves 42 in
    /// t3 at halt — stands in for a real simulator disagreement so the
    /// minimizer's contract can be tested without planting a bug.
    fn t3_is_42(p: &Program) -> Option<Divergence> {
        let mut sim = SimBuilder::new(p).build_functional();
        sim.run(10_000).ok()?;
        if sim.state().reg(art9_isa::TReg::T3) == Word9::from_i64(42).unwrap() {
            Some(Divergence {
                oracle: Oracle::FunctionalVsReference,
                detail: "t3 == 42".into(),
            })
        } else {
            None
        }
    }

    #[test]
    fn strips_irrelevant_instructions() {
        // Only `LI t3, 42` matters; the rest is noise the minimizer
        // must remove.
        let p = assemble(
            ".data\n.word 7, 8, 9\n.text\nLI t4, 3\nADD t4, t4\nLI t3, 42\n\
             LI t5, 9\nSUB t5, t4\nXOR t5, t5\nJAL t0, 0\n",
        )
        .unwrap();
        let m = minimize(&p, t3_is_42).expect("diverges");
        assert_eq!(m.original_len, 7);
        // LI t3,42 must survive; the halt jump may or may not (falling
        // off the end halts too).
        assert!(m.active_len <= 2, "kept {} instructions", m.active_len);
        assert!(m
            .program
            .text()
            .iter()
            .any(|i| matches!(i, Instruction::Li { a, .. } if *a == art9_isa::TReg::T3)));
        assert!(m.program.data().is_empty(), "unused data image kept");
        assert!(
            t3_is_42(&m.program).is_some(),
            "reduction no longer diverges"
        );
    }

    #[test]
    fn refuses_to_trade_the_failure_kind_during_reduction() {
        use art9_isa::TReg;
        // Synthetic oracle keyed on which marker instructions survive:
        // `ADDI t5, 1` present => the "real" state divergence;
        // otherwise `ADDI t5, 2` present => a budget-exhaustion
        // divergence (as if the edit made the program non-terminating).
        fn marker(p: &Program, imm: i64) -> bool {
            p.text().iter().any(
                |i| matches!(i, Instruction::Addi { a: TReg::T5, imm: v } if v.to_i64() == imm),
            )
        }
        fn oracle(p: &Program) -> Option<Divergence> {
            if marker(p, 1) {
                Some(Divergence {
                    oracle: Oracle::FunctionalVsReference,
                    detail: "t5 state mismatch".into(),
                })
            } else if marker(p, 2) {
                Some(Divergence {
                    oracle: Oracle::FunctionalVsReference,
                    detail: format!("program {} 100 steps", Divergence::BUDGET_MARKER),
                })
            } else {
                None
            }
        }
        // Back-to-front scanning tries to NOP `ADDI t5, 1` first; that
        // edit flips the divergence to budget exhaustion and must be
        // rejected, or the minimizer would happily minimize the wrong
        // failure.
        let p = assemble("ADDI t5, 2\nADDI t5, 1\nJAL t0, 0\n").unwrap();
        let m = minimize(&p, oracle).expect("diverges");
        assert!(!m.divergence.is_budget_exhaustion(), "{}", m.divergence);
        assert!(marker(&m.program, 1), "real-failure marker was lost");
        assert!(!marker(&m.program, 2), "noise instruction kept");
    }

    #[test]
    fn non_diverging_program_returns_none() {
        let p = assemble("LI t3, 1\nJAL t0, 0\n").unwrap();
        assert!(minimize(&p, t3_is_42).is_none());
    }

    #[test]
    fn preserves_control_flow_structure() {
        // The 42 is produced inside a loop; the loop scaffolding must
        // survive minimization since removing it changes the result.
        let p = assemble(
            "LUI t7, 0\nLI t7, 6\nLI t3, 0\nloop:\nADDI t3, 7\nADDI t7, -1\n\
             MV t6, t7\nCOMP t6, t8\nBEQ t6, +, loop\nJAL t0, 0\n",
        )
        .unwrap();
        let m = minimize(&p, t3_is_42).expect("diverges: 6 * 7 == 42");
        assert!(t3_is_42(&m.program).is_some());
        // The backward branch must still be there.
        assert!(m.program.text().iter().any(|i| i.is_conditional_branch()));
    }
}
