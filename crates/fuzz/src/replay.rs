//! Replay files: any fuzz failure is a one-command repro.
//!
//! A replay file is plain ART-9 assembly (the assembler's own syntax,
//! produced by [`Program`]'s `Display`) preceded by `;`-comment
//! headers recording how the case was found. Re-running it needs no
//! generator state:
//!
//! ```sh
//! cargo run --release -p art9-fuzz -- --replay fuzz-failures/case-000.art9
//! ```

use std::fmt::Write as _;
use std::path::Path;

use art9_isa::{assemble, IsaError, Program};

use crate::oracle::Divergence;

/// Format marker written as the first header line.
pub const REPLAY_MAGIC: &str = "; art9-fuzz replay v1";

/// Format marker of the RV32-flavored replay files the
/// compiler-lockstep oracle writes. The headers use `#` comments (the
/// RV32 assembler's syntax), so the whole file feeds straight into
/// `rv32::parse_program` — an RV32 replay is also a valid `.s` source.
pub const REPLAY_MAGIC_RV32: &str = "# art9-fuzz replay v2 (rv32 compiler-lockstep)";

/// `true` when `text` is an RV32-flavored replay file (the
/// compiler-lockstep format) rather than ART-9 assembly.
pub fn is_rv32_replay(text: &str) -> bool {
    text.starts_with(REPLAY_MAGIC_RV32)
}

/// Provenance recorded in a replay file's header.
#[derive(Debug, Clone)]
pub struct ReplayMeta {
    /// The fuzzer seed the case was found under.
    pub seed: u64,
    /// The iteration index within that seed.
    pub iteration: u64,
    /// The oracle that flagged it and the first difference observed.
    pub divergence: Divergence,
}

/// Renders a replay file for `program`.
///
/// # Examples
///
/// ```
/// use art9_fuzz::{render_replay, parse_replay, ReplayMeta, Divergence, Oracle};
///
/// let program = art9_isa::assemble("LI t3, 7\nJAL t0, 0\n")?;
/// let meta = ReplayMeta {
///     seed: 42,
///     iteration: 17,
///     divergence: Divergence {
///         oracle: Oracle::PipelinedForwarding,
///         detail: "t3 = 7 vs 8".into(),
///     },
/// };
/// let text = render_replay(&meta, &program);
/// let back = parse_replay(&text)?;
/// assert_eq!(back.text(), program.text());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_replay(meta: &ReplayMeta, program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{REPLAY_MAGIC}");
    let _ = writeln!(out, "; seed={} iteration={}", meta.seed, meta.iteration);
    let _ = writeln!(out, "; oracle={}", meta.divergence.oracle.name());
    for line in meta.divergence.detail.lines() {
        let _ = writeln!(out, "; {line}");
    }
    let _ = writeln!(out);
    let _ = write!(out, "{program}");
    out
}

/// Parses a replay file back into a program.
///
/// The headers are ordinary `;` comments, so the whole file goes
/// straight through the assembler — a replay file is also a valid
/// assembly source.
///
/// # Errors
///
/// Propagates assembler errors for malformed files.
pub fn parse_replay(text: &str) -> Result<Program, IsaError> {
    assemble(text)
}

/// Renders an RV32-flavored replay file for the compiler-lockstep
/// oracle: `#`-comment headers followed by the RV32 assembly source.
///
/// # Examples
///
/// ```
/// use art9_fuzz::{render_replay_rv32, is_rv32_replay, ReplayMeta, Divergence, Oracle};
///
/// let meta = ReplayMeta {
///     seed: 42,
///     iteration: 3,
///     divergence: Divergence {
///         oracle: Oracle::CompilerLockstep,
///         detail: "a0 (Data) = 7 (art9) vs 8 (rv32)".into(),
///     },
/// };
/// let text = render_replay_rv32(&meta, "li a0, 8\nebreak\n");
/// assert!(is_rv32_replay(&text));
/// rv32::parse_program(&text)?; // headers are ordinary comments
/// # Ok::<(), rv32::Rv32Error>(())
/// ```
pub fn render_replay_rv32(meta: &ReplayMeta, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{REPLAY_MAGIC_RV32}");
    let _ = writeln!(out, "# seed={} iteration={}", meta.seed, meta.iteration);
    let _ = writeln!(out, "# oracle={}", meta.divergence.oracle.name());
    for line in meta.divergence.detail.lines() {
        let _ = writeln!(out, "# {line}");
    }
    let _ = writeln!(out);
    out.push_str(source);
    if !source.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Writes `content` under `dir` as `case-<n>.<ext>` with the first
/// free `n` across *both* extensions (so `.art9` and `.rv32` cases
/// share one numbering).
fn write_case(dir: &Path, ext: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    for n in 0..10_000 {
        let path = dir.join(format!("case-{n:03}.{ext}"));
        let sibling = dir.join(format!(
            "case-{n:03}.{}",
            if ext == "art9" { "rv32" } else { "art9" }
        ));
        if path.exists() || sibling.exists() {
            continue;
        }
        std::fs::write(&path, content)?;
        return Ok(path);
    }
    Err(std::io::Error::other("no free replay slot under 10000"))
}

/// Writes a replay file under `dir`, named `case-<n>.art9` with the
/// first free `n`. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation included).
pub fn write_replay(
    dir: &Path,
    meta: &ReplayMeta,
    program: &Program,
) -> std::io::Result<std::path::PathBuf> {
    write_case(dir, "art9", &render_replay(meta, program))
}

/// Writes an RV32-flavored replay file under `dir`, named
/// `case-<n>.rv32`. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation included).
pub fn write_replay_rv32(
    dir: &Path,
    meta: &ReplayMeta,
    source: &str,
) -> std::io::Result<std::path::PathBuf> {
    write_case(dir, "rv32", &render_replay_rv32(meta, source))
}

/// The provenance recorded in a replay file's headers, parsed back out
/// (either flavor) — the `--replay` triage summary prints it next to
/// the freshly observed divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedMeta {
    /// The recorded seed, when present.
    pub seed: Option<u64>,
    /// The recorded iteration, when present.
    pub iteration: Option<u64>,
    /// The recorded flagging oracle, when present and recognizable.
    pub oracle: Option<crate::oracle::Oracle>,
}

/// Extracts the recorded seed/iteration/oracle from a replay file's
/// comment headers (either flavor). Unrecognized or absent fields are
/// `None` — hand-edited files stay replayable.
pub fn parse_replay_header(text: &str) -> RecordedMeta {
    let mut meta = RecordedMeta {
        seed: None,
        iteration: None,
        oracle: None,
    };
    for line in text.lines().take(16) {
        let Some(body) = line.strip_prefix("; ").or_else(|| line.strip_prefix("# ")) else {
            continue;
        };
        for token in body.split_whitespace() {
            if let Some(v) = token.strip_prefix("seed=") {
                meta.seed = v.parse().ok();
            } else if let Some(v) = token.strip_prefix("iteration=") {
                meta.iteration = v.parse().ok();
            } else if let Some(v) = token.strip_prefix("oracle=") {
                meta.oracle = v.parse().ok();
            }
        }
    }
    meta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;

    fn meta() -> ReplayMeta {
        ReplayMeta {
            seed: 7,
            iteration: 3,
            divergence: Divergence {
                oracle: Oracle::FunctionalVsReference,
                detail: "t4 = 1 vs 2\nsecond line".into(),
            },
        }
    }

    #[test]
    fn roundtrips_text_and_data() {
        let p = assemble(".data\nv: .word 5, -5, 0\n.text\nLI t3, 1\nLOAD t4, t3, 0\nJAL t0, 0\n")
            .unwrap();
        let text = render_replay(&meta(), &p);
        assert!(text.starts_with(REPLAY_MAGIC));
        assert!(text.contains("; seed=7 iteration=3"));
        assert!(text.contains("; oracle=functional-vs-reference"));
        let back = parse_replay(&text).unwrap();
        assert_eq!(back.text(), p.text());
        assert_eq!(back.data(), p.data());
    }

    #[test]
    fn multiline_detail_stays_commented() {
        let p = assemble("NOP\n").unwrap();
        let text = render_replay(&meta(), &p);
        // Every detail line must be a comment, or reassembly would fail.
        assert!(text.contains("; second line"));
        parse_replay(&text).unwrap();
    }

    #[test]
    fn writes_sequential_case_files() {
        let dir = std::env::temp_dir().join(format!("art9-fuzz-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = assemble("NOP\n").unwrap();
        let first = write_replay(&dir, &meta(), &p).unwrap();
        let second = write_replay(&dir, &meta(), &p).unwrap();
        assert_ne!(first, second);
        assert!(first.ends_with("case-000.art9"));
        assert!(second.ends_with("case-001.art9"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
