//! Seeded random program generation over the full 24-instruction ISA.
//!
//! Generated programs are **terminating and fault-free by
//! construction**, so any simulator error or any disagreement between
//! simulators is a real finding, never generator noise:
//!
//! * **Control flow** — forward branches are emitted as self-contained
//!   *skip templates* (a conditional branch over freshly generated
//!   filler), backward branches only as *counted-loop templates* whose
//!   trip count lives in a register the loop body can never write, and
//!   `JALR` only inside a *call template* whose link register is
//!   protected. Every backward edge therefore executes a bounded
//!   number of times (the "bounded backward-branch budget").
//! * **Memory** — `LOAD`/`STORE` go through a tracked base register
//!   established with a `LUI 0` + `LI` pair, keeping every effective
//!   address inside the TDM window for any 3-trit displacement.
//! * **Register discipline** — the generator reserves `T7` (loop
//!   counter) and `T8` (pinned zero) and uses `T6` as template
//!   scratch; random instructions write only `T0..=T5` (and read
//!   anything), so the termination invariants survive arbitrary bodies.
//!
//! Everything else — operands, immediates, branch polarities, data
//! images, program length — is uniformly random under the weighted
//! [`Mix`], driven by a [`FuzzRng`] stream: the same `(seed, index)`
//! always yields the same program.

use art9_isa::{Imm3, Imm4, Imm5, Instruction, Program, TReg};
use ternary::{Trit, Trits, Word9};

use crate::rng::FuzzRng;

/// Registers random instructions may write (`T6..T8` are reserved for
/// the termination templates).
const BODY_REGS: [TReg; 6] = [TReg::T0, TReg::T1, TReg::T2, TReg::T3, TReg::T4, TReg::T5];

/// Template scratch: call link register, loop compare scratch, halt link.
const SCRATCH: TReg = TReg::T6;
/// The loop counter register; never written by generated bodies.
const COUNTER: TReg = TReg::T7;
/// Pinned to zero in the prologue; never written again.
const ZERO: TReg = TReg::T8;

/// Lowest value a memory base register is set to: any 3-trit
/// displacement (−13..=13) stays non-negative.
const BASE_LO: i64 = 13;
/// Highest base value (`LI` can splice at most ±121); `BASE_HI + 13`
/// must stay inside the TDM window.
const BASE_HI: i64 = 108;

/// Smallest TDM (in words) a generated program can touch:
/// `BASE_HI + 13 + 1`.
pub const MIN_TDM_WORDS: usize = (BASE_HI + 13 + 1) as usize;

/// The generator action classes a [`Mix`] weights against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// One R-type register-register instruction.
    Alu,
    /// One I-type immediate instruction.
    Imm,
    /// A `LOAD`/`STORE` through the tracked base register (establishing
    /// it first when needed).
    Mem,
    /// A conditional forward branch over freshly generated filler.
    Skip,
    /// A counted loop with a straight-line body.
    Loop,
    /// A `JAL`/`JALR` call-and-return template.
    Call,
}

const ACTIONS: [Action; 6] = [
    Action::Alu,
    Action::Imm,
    Action::Mem,
    Action::Skip,
    Action::Loop,
    Action::Call,
];

/// A weighted instruction mix: how often the generator picks each
/// action class. Weights are relative, not percentages.
///
/// # Examples
///
/// ```
/// use art9_fuzz::Mix;
///
/// let mix: Mix = "memory".parse()?;
/// assert_eq!(mix.name(), "memory");
/// assert!("bogus".parse::<Mix>().is_err());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    name: &'static str,
    /// Relative weight per [`Action`], in `ACTIONS` order.
    weights: [u32; 6],
}

impl Mix {
    /// Even coverage of every instruction class (the default).
    pub const BALANCED: Mix = Mix {
        name: "balanced",
        weights: [6, 5, 4, 2, 2, 1],
    };
    /// Mostly register-register arithmetic and logic: stresses the
    /// packed-bitplane TALU against the per-trit reference.
    pub const ALU: Mix = Mix {
        name: "alu",
        weights: [10, 6, 1, 1, 1, 0],
    };
    /// Mostly `LOAD`/`STORE`: stresses TDM addressing and the pipeline's
    /// load-use hazard paths.
    pub const MEMORY: Mix = Mix {
        name: "memory",
        weights: [2, 3, 10, 1, 2, 0],
    };
    /// Mostly branches, loops and calls: stresses the ID-stage branch
    /// unit, flush behaviour and the link-register paths.
    pub const CONTROL: Mix = Mix {
        name: "control",
        weights: [2, 2, 1, 6, 4, 3],
    };

    /// Every named mix.
    pub const ALL: [Mix; 4] = [Mix::BALANCED, Mix::ALU, Mix::MEMORY, Mix::CONTROL];

    /// The mix's name (accepted back by `FromStr`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Picks one action according to the weights.
    fn pick(&self, rng: &mut FuzzRng) -> Action {
        let total: u32 = self.weights.iter().sum();
        let mut roll = rng.below(u64::from(total)) as u32;
        for (action, w) in ACTIONS.iter().zip(self.weights) {
            if roll < w {
                return *action;
            }
            roll -= w;
        }
        Action::Alu
    }
}

impl std::str::FromStr for Mix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Mix::ALL
            .iter()
            .find(|m| m.name == s)
            .copied()
            .ok_or_else(|| {
                let names: Vec<&str> = Mix::ALL.iter().map(|m| m.name).collect();
                format!("unknown mix {s:?} (expected one of {})", names.join(", "))
            })
    }
}

/// Tuning knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Upper bound on generated body length (instructions, excluding
    /// the prologue and the halt).
    pub max_len: usize,
    /// The weighted instruction mix.
    pub mix: Mix,
    /// Maximum counted loops per program (the backward-branch budget).
    pub loop_budget: usize,
    /// Maximum random words in the initial TDM image.
    pub max_data_words: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            max_len: 160,
            mix: Mix::BALANCED,
            loop_budget: 6,
            max_data_words: 48,
        }
    }
}

/// Worst-case *executed* instructions for a program from `cfg`
/// (prologue + body, with every loop at its maximum trip count), plus
/// slack. Use it as the functional-simulator step budget.
pub fn step_budget(cfg: &GenConfig) -> u64 {
    // Each loop-body slot can emit up to 3 instructions (a memory
    // access re-establishing its base costs LUI + LI + LOAD/STORE),
    // plus 4 of loop bookkeeping, and the whole body runs up to
    // LOOP_COUNT_MAX times. Straight-line text executes at most once
    // per instruction; templates can overshoot `max_len` by one
    // template, covered by doubling the term.
    let per_loop = (LOOP_BODY_MAX as u64 * 3 + 4) * LOOP_COUNT_MAX as u64;
    128 + 2 * cfg.max_len as u64 + cfg.loop_budget as u64 * per_loop
}

const LOOP_BODY_MAX: usize = 12;
const LOOP_COUNT_MAX: i64 = 6;
const CALL_BODY_MAX: usize = 8;
const SKIP_SPAN_MAX: i64 = 6;

/// The incremental generator state.
struct Gen<'a> {
    rng: &'a mut FuzzRng,
    text: Vec<Instruction>,
    /// Register currently holding a known in-window memory base, if any.
    base: Option<TReg>,
}

impl Gen<'_> {
    /// Appends one instruction, invalidating the tracked memory base if
    /// the instruction overwrites it.
    fn push(&mut self, i: Instruction) {
        if let (Some(base), Some(dest)) = (self.base, i.writes()) {
            if base == dest {
                self.base = None;
            }
        }
        self.text.push(i);
    }

    fn body_reg(&mut self) -> TReg {
        BODY_REGS[self.rng.index(BODY_REGS.len())]
    }

    fn any_reg(&mut self) -> TReg {
        art9_isa::ALL_REGS[self.rng.index(9)]
    }

    fn trit(&mut self) -> Trit {
        match self.rng.below(3) {
            0 => Trit::N,
            1 => Trit::Z,
            _ => Trit::P,
        }
    }

    fn imm<const N: usize>(&mut self) -> Trits<N> {
        let max = Trits::<N>::MAX_VALUE;
        Trits::from_i64(self.rng.range_i64(-max, max)).expect("in range by construction")
    }

    /// One random R-type instruction (writes a body register, reads
    /// anything).
    fn alu(&mut self) -> Instruction {
        use Instruction::*;
        let a = self.body_reg();
        let b = self.any_reg();
        match self.rng.below(12) {
            0 => Mv { a, b },
            1 => Pti { a, b },
            2 => Nti { a, b },
            3 => Sti { a, b },
            4 => And { a, b },
            5 => Or { a, b },
            6 => Xor { a, b },
            7 => Add { a, b },
            8 => Sub { a, b },
            9 => Sr { a, b },
            10 => Sl { a, b },
            _ => Comp { a, b },
        }
    }

    /// One random I-type instruction.
    fn imm_instr(&mut self) -> Instruction {
        use Instruction::*;
        let a = self.body_reg();
        match self.rng.below(6) {
            0 => Andi { a, imm: self.imm() },
            1 => Addi { a, imm: self.imm() },
            2 => Sri { a, imm: self.imm() },
            3 => Sli { a, imm: self.imm() },
            4 => Lui { a, imm: self.imm() },
            _ => Li { a, imm: self.imm() },
        }
    }

    /// A straight-line instruction (no control flow, no memory).
    fn plain(&mut self) -> Instruction {
        if self.rng.chance(1, 2) {
            self.alu()
        } else {
            self.imm_instr()
        }
    }

    /// Ensures a register holds a known in-window memory base,
    /// emitting `LUI r, 0` + `LI r, k` when none is tracked.
    fn ensure_base(&mut self) -> TReg {
        if let Some(b) = self.base {
            // Occasionally re-establish anyway, to vary the base value.
            if !self.rng.chance(1, 8) {
                return b;
            }
        }
        let r = self.body_reg();
        let k = self.rng.range_i64(BASE_LO, BASE_HI);
        // LUI fully defines the word (upper = imm, lower = 0); LI then
        // splices the low five trits, so `r == k` exactly.
        self.push(Instruction::Lui {
            a: r,
            imm: Imm4::ZERO,
        });
        self.push(Instruction::Li {
            a: r,
            imm: Imm5::from_i64(k).expect("base in LI range"),
        });
        self.base = Some(r);
        r
    }

    /// A `LOAD` or `STORE` through the tracked base.
    fn mem(&mut self) {
        let b = self.ensure_base();
        let offset: Imm3 = self.imm();
        let a = self.body_reg();
        let instr = if self.rng.chance(1, 2) {
            Instruction::Load { a, b, offset }
        } else {
            Instruction::Store { a, b, offset }
        };
        self.push(instr);
    }

    /// A conditional forward branch over `d − 1` freshly generated
    /// filler instructions — self-contained, so the target always
    /// exists and is always forward.
    fn skip(&mut self) {
        let d = self.rng.range_i64(2, SKIP_SPAN_MAX);
        let b = self.any_reg();
        let cond = self.trit();
        let offset = Imm4::from_i64(d).expect("skip span fits Imm4");
        let branch = if self.rng.chance(1, 2) {
            Instruction::Beq { b, cond, offset }
        } else {
            Instruction::Bne { b, cond, offset }
        };
        self.push(branch);
        for _ in 0..d - 1 {
            let filler = self.plain();
            self.push(filler);
        }
    }

    /// A counted loop:
    ///
    /// ```text
    ///         LUI  t7, 0         ; counter := k (fully defined)
    ///         LI   t7, k
    /// top:    <body: straight-line / memory instructions>
    ///         ADDI t7, -1
    ///         MV   t6, t7
    ///         COMP t6, t8        ; t6 := sign(counter)
    ///         BEQ  t6, +, top    ; loop while counter > 0
    /// ```
    ///
    /// The body cannot write `t7`/`t8`, so the counter strictly
    /// decreases and the backward branch runs at most `k` times.
    fn counted_loop(&mut self) {
        let k = self.rng.range_i64(1, LOOP_COUNT_MAX);
        self.push(Instruction::Lui {
            a: COUNTER,
            imm: Imm4::ZERO,
        });
        self.push(Instruction::Li {
            a: COUNTER,
            imm: Imm5::from_i64(k).expect("small count"),
        });
        let top = self.text.len() as i64;
        // A base tracked from before the loop must not be trusted
        // inside it: a body instruction could clobber it and the
        // backward edge would re-run an earlier LOAD/STORE with the
        // clobbered value. Forcing re-establishment *inside* the body
        // keeps every access preceded by its own LUI/LI pair on every
        // iteration.
        self.base = None;
        let body_len = self.rng.range_i64(1, LOOP_BODY_MAX as i64);
        for _ in 0..body_len {
            if self.rng.chance(1, 4) {
                self.mem();
            } else {
                let i = self.plain();
                self.push(i);
            }
        }
        self.push(Instruction::Addi {
            a: COUNTER,
            imm: Imm3::from_i64(-1).expect("-1"),
        });
        self.push(Instruction::Mv {
            a: SCRATCH,
            b: COUNTER,
        });
        self.push(Instruction::Comp {
            a: SCRATCH,
            b: ZERO,
        });
        let offset = top - self.text.len() as i64;
        debug_assert!(offset >= -(Imm4::MAX_VALUE), "loop body too long: {offset}");
        self.push(Instruction::Beq {
            b: SCRATCH,
            cond: Trit::P,
            offset: Imm4::from_i64(offset).expect("loop offset fits Imm4"),
        });
    }

    /// A call-and-return template:
    ///
    /// ```text
    /// c:      JAL  t6, 2         ; call the sub at c+2, link in t6
    /// c+1:    JAL  rS, m+2       ; on return, jump past the sub
    /// c+2:    <sub body: m straight-line instructions>
    /// c+2+m:  JALR rL, t6, 0     ; return to c+1
    /// ```
    ///
    /// Every instruction executes exactly once; the sub cannot be
    /// re-entered because the return lands on the jump that skips it.
    fn call(&mut self) {
        let m = self.rng.range_i64(1, CALL_BODY_MAX as i64);
        let skip_link = self.body_reg();
        let ret_link = self.body_reg();
        self.push(Instruction::Jal {
            a: SCRATCH,
            offset: Imm5::from_i64(2).expect("2"),
        });
        self.push(Instruction::Jal {
            a: skip_link,
            offset: Imm5::from_i64(m + 2).expect("call span fits Imm5"),
        });
        for _ in 0..m {
            let i = self.plain();
            self.push(i);
        }
        self.push(Instruction::Jalr {
            a: ret_link,
            b: SCRATCH,
            offset: Imm3::ZERO,
        });
    }
}

/// Generates one random, terminating, fault-free ART-9 program.
///
/// # Examples
///
/// ```
/// use art9_fuzz::{generate, FuzzRng, GenConfig};
///
/// let cfg = GenConfig::default();
/// let a = generate(&mut FuzzRng::for_iteration(42, 0), &cfg);
/// let b = generate(&mut FuzzRng::for_iteration(42, 0), &cfg);
/// assert_eq!(a.text(), b.text()); // same (seed, index) => same program
/// assert!(!a.text().is_empty());
/// ```
pub fn generate(rng: &mut FuzzRng, cfg: &GenConfig) -> Program {
    let target = 8 + rng.index(cfg.max_len.max(9) - 8);
    let mut g = Gen {
        rng,
        text: Vec::with_capacity(target + 16),
        base: None,
    };

    // Prologue: pin the zero register, then give a few body registers
    // fully defined random values (LUI defines all nine trits, LI
    // splices the low five).
    g.push(Instruction::Lui {
        a: ZERO,
        imm: Imm4::ZERO,
    });
    let seeded = 2 + g.rng.index(4);
    for _ in 0..seeded {
        let r = g.body_reg();
        let hi: Imm4 = g.imm();
        let lo: Imm5 = g.imm();
        g.push(Instruction::Lui { a: r, imm: hi });
        g.push(Instruction::Li { a: r, imm: lo });
    }

    let mut loops_left = cfg.loop_budget;
    while g.text.len() < target {
        match cfg.mix.pick(g.rng) {
            Action::Alu => {
                let i = g.alu();
                g.push(i);
            }
            Action::Imm => {
                let i = g.imm_instr();
                g.push(i);
            }
            Action::Mem => g.mem(),
            Action::Skip => g.skip(),
            Action::Loop => {
                if loops_left > 0 {
                    loops_left -= 1;
                    g.counted_loop();
                } else {
                    let i = g.plain();
                    g.push(i);
                }
            }
            Action::Call => g.call(),
        }
    }

    // Epilogue: either an explicit jump-to-self halt or a clean fall
    // off the end (both are architectural halt conditions).
    if g.rng.chance(3, 4) {
        g.push(Instruction::Jal {
            a: SCRATCH,
            offset: Imm5::ZERO,
        });
    }

    let data_words = g.rng.index(cfg.max_data_words + 1);
    let data: Vec<Word9> = (0..data_words)
        .map(|_| Word9::from_i64_wrapping(g.rng.range_i64(-9841, 9841)))
        .collect();

    let text = g.text;
    Program::new(text, data, std::collections::BTreeMap::new(), Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(seed: u64, i: u64) -> Program {
        generate(&mut FuzzRng::for_iteration(seed, i), &GenConfig::default())
    }

    #[test]
    fn reproducible_per_seed_and_iteration() {
        for i in 0..20 {
            let a = gen(42, i);
            let b = gen(42, i);
            assert_eq!(a.text(), b.text());
            assert_eq!(a.data(), b.data());
        }
        assert_ne!(gen(42, 0).text(), gen(43, 0).text());
    }

    #[test]
    fn reserved_registers_only_written_by_templates() {
        // T8 is written exactly once (the prologue LUI); T7 only by the
        // loop template's LUI/LI/ADDI.
        for i in 0..50 {
            let p = gen(7, i);
            let zero_writes = p
                .text()
                .iter()
                .filter(|ins| ins.writes() == Some(ZERO))
                .count();
            assert_eq!(zero_writes, 1, "iteration {i}");
            for ins in p.text() {
                if ins.writes() == Some(COUNTER) {
                    assert!(
                        matches!(
                            ins,
                            Instruction::Lui { .. }
                                | Instruction::Li { .. }
                                | Instruction::Addi { .. }
                        ),
                        "unexpected counter writer {ins} in iteration {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn branch_targets_stay_in_bounds() {
        use art9_sim::control_target;
        for i in 0..50 {
            let p = gen(11, i);
            let len = p.text().len() as i64;
            for (pc, ins) in p.text().iter().enumerate() {
                if !ins.is_control_flow() || matches!(ins, Instruction::Jalr { .. }) {
                    continue;
                }
                // Both branch polarities must land inside [0, len].
                for lst in [Trit::N, Trit::Z, Trit::P] {
                    if let Some(t) = control_target(ins, pc, lst, Word9::ZERO) {
                        assert!(
                            (0..=len).contains(&t),
                            "iteration {i}: {ins} at {pc} targets {t} (len {len})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_mix_parses_and_generates() {
        for mix in Mix::ALL {
            let parsed: Mix = mix.name().parse().unwrap();
            assert_eq!(parsed, mix);
            let cfg = GenConfig {
                mix,
                ..GenConfig::default()
            };
            let p = generate(&mut FuzzRng::for_iteration(1, 0), &cfg);
            assert!(p.text().len() >= 8);
        }
        assert!("nope".parse::<Mix>().is_err());
    }

    #[test]
    fn memory_mix_emits_loads_and_stores() {
        let cfg = GenConfig {
            mix: Mix::MEMORY,
            ..GenConfig::default()
        };
        let mut mem_ops = 0;
        for i in 0..10 {
            let p = generate(&mut FuzzRng::for_iteration(3, i), &cfg);
            mem_ops += p
                .text()
                .iter()
                .filter(|ins| matches!(ins, Instruction::Load { .. } | Instruction::Store { .. }))
                .count();
        }
        assert!(
            mem_ops > 10,
            "memory mix produced only {mem_ops} memory ops"
        );
    }

    #[test]
    fn generated_programs_terminate_within_budget() {
        let cfg = GenConfig::default();
        let budget = step_budget(&cfg);
        for i in 0..30 {
            let p = generate(&mut FuzzRng::for_iteration(99, i), &cfg);
            let mut sim = art9_sim::SimBuilder::new(&p)
                .tdm_words(MIN_TDM_WORDS.max(256))
                .build_functional();
            sim.run(budget)
                .unwrap_or_else(|e| panic!("iteration {i} failed: {e}\n{p}"));
        }
    }
}
