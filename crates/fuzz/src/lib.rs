//! # `art9-fuzz` — differential fuzzing for the ART-9 frameworks
//!
//! The paper's evaluation rests on executions of the same program
//! agreeing across machines — the functional model, the pipelined
//! model, the ternary arithmetic layer, and (its headline §III-A
//! claim) the RV32 source a translation came from. This crate turns
//! those claims into generative checks: a seeded random
//! [ART-9 program generator](generate) over the full 24-instruction
//! ISA, co-simulated in lockstep through five
//! [oracles](check_program) (functional vs a per-trit
//! [`ReferenceSim`], functional vs the direct-threaded
//! [`art9_sim::ThreadedSim`], pipelined with forwarding on and off,
//! and the encode/decode/disassemble/reassemble toolchain), a direct
//! packed-vs-tritwise [arithmetic oracle](check_arith), and a seeded
//! [RV32 generator](generate_rv32) whose output runs on the
//! `rv32::Machine` and — translated by `art9-compiler` — on an ART-9
//! core, compared at every RV32 instruction boundary by the
//! [compiler-lockstep oracle](CoSim). Failures are
//! [minimized](minimize) by greedy NOP substitution (at the RV32
//! source level for cross-ISA cases) and written as one-command
//! [replay files](render_replay).
//!
//! Design notes (generator invariants, the oracle matrix, the replay
//! format) live in `docs/FUZZING.md` at the repository root.
//!
//! ## Quick start
//!
//! ```
//! use art9_fuzz::{run_fuzz, FuzzConfig};
//!
//! let mut cfg = FuzzConfig::default();
//! cfg.iterations = 10;
//! let report = run_fuzz(&cfg);
//! assert_eq!(report.divergences.len(), 0, "{}", report.render());
//! // Determinism: the same seed reproduces the same programs.
//! assert_eq!(report.digest, run_fuzz(&cfg).digest);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cosim;
mod gen;
mod minimize;
mod oracle;
mod replay;
mod rng;
mod rv32gen;

/// The per-trit reference interpreter now lives in `art9-sim` (it
/// implements the unified `Core` API); re-exported here for
/// compatibility.
pub use art9_sim::ReferenceSim;
pub use cosim::{check_compiler_lockstep, cosim_mem_bytes, CoSim, COSIM_TDM_WORDS};
pub use gen::{generate, step_budget, GenConfig, Mix, MIN_TDM_WORDS};
pub use minimize::{minimize, minimize_rv32, Minimized, MinimizedRv32};
pub use oracle::{
    check_arith, check_program, check_program_filtered, check_simd, check_wide, lockstep,
    random_word, Divergence, LockstepOutcome, Oracle, OracleStats, ORACLE_TDM_WORDS,
};
pub use replay::{
    is_rv32_replay, parse_replay, parse_replay_header, render_replay, render_replay_rv32,
    write_replay, write_replay_rv32, RecordedMeta, ReplayMeta, REPLAY_MAGIC, REPLAY_MAGIC_RV32,
};
pub use rng::FuzzRng;
pub use rv32gen::{generate_rv32, rv32_step_budget, Rv32GenConfig, Rv32Mix};

use art9_isa::{encode, Program};
use rayon::prelude::*;

/// A whole fuzz campaign's configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: the campaign is a pure function of this value (and
    /// the other knobs), independent of thread scheduling.
    pub seed: u64,
    /// Number of generated programs.
    pub iterations: u64,
    /// Generator tuning (mix, lengths, loop budget).
    pub gen: GenConfig,
    /// Random word pairs per iteration for the arithmetic oracle.
    pub arith_pairs: usize,
    /// Random lane configurations per iteration for the SIMD oracle
    /// (each configuration cross-checks every `Word9xN` lane op
    /// against its tritwise lanewise reference).
    pub simd_sets: usize,
    /// Random operand sets per iteration for the wide-width oracle
    /// (each set cross-checks the `Trits<40>`/`Trits<63>` band, the
    /// multi-plane `Word27`/`Word81` words and the tapered reals
    /// against their trit-serial references).
    pub wide_sets: usize,
    /// RV32 generator tuning for the compiler-lockstep oracle.
    pub rv_gen: Rv32GenConfig,
    /// Rotate through every named [`Mix`] (and [`Rv32Mix`]) by
    /// iteration index instead of using the configured mix for all
    /// iterations (the smoke profile does this so CI exercises the
    /// memory/control paths too).
    pub sweep_mixes: bool,
    /// Directory to write replay files for minimized failures;
    /// `None` keeps failures in the report only.
    pub fail_dir: Option<std::path::PathBuf>,
    /// Restrict the campaign to one oracle (the `--oracle` triage
    /// filter); `None` runs them all.
    pub oracle: Option<Oracle>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            iterations: 1000,
            gen: GenConfig::default(),
            rv_gen: Rv32GenConfig::default(),
            arith_pairs: 32,
            simd_sets: 8,
            wide_sets: 8,
            sweep_mixes: false,
            fail_dir: None,
            oracle: None,
        }
    }
}

impl FuzzConfig {
    /// The CI smoke budget: 150 small programs in a few seconds,
    /// rotating through every named mix (and hitting both halt
    /// styles) so the memory and control paths get CI coverage too.
    pub fn smoke() -> Self {
        Self {
            iterations: 150,
            gen: GenConfig {
                max_len: 80,
                ..GenConfig::default()
            },
            rv_gen: Rv32GenConfig {
                max_len: 40,
                ..Rv32GenConfig::default()
            },
            arith_pairs: 16,
            simd_sets: 4,
            wide_sets: 4,
            sweep_mixes: true,
            ..Self::default()
        }
    }
}

/// One minimized failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Iteration index the case was generated at.
    pub iteration: u64,
    /// The (minimized) divergence.
    pub divergence: Divergence,
    /// The minimized program, rendered as replayable assembly.
    pub replay_text: String,
    /// Where the replay file was written, when a `fail_dir` was set.
    pub replay_path: Option<std::path::PathBuf>,
}

/// Aggregate result of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Programs generated and checked.
    pub programs: u64,
    /// Folded oracle work counters.
    pub stats: OracleStats,
    /// Every divergence found (minimized).
    pub divergences: Vec<Failure>,
    /// Order-independent digest of every generated program: two runs
    /// with the same config produce the same digest regardless of
    /// `rayon` scheduling — the reproducibility check.
    pub digest: u64,
}

impl FuzzReport {
    /// Renders the human-readable campaign summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} programs | {} functional instructions, {} threaded instructions, {} pipelined \
             cycles",
            self.programs,
            self.stats.functional_instructions,
            self.stats.threaded_instructions,
            self.stats.pipelined_cycles
        );
        let _ = writeln!(
            out,
            "{} roundtrip checks, {} arithmetic checks, {} simd-lane checks, \
             {} wide-width checks, {} energy flips cross-checked | digest {:016x}",
            self.stats.roundtrip_checks,
            self.stats.arith_checks,
            self.stats.simd_checks,
            self.stats.wide_checks,
            self.stats.energy_flips,
            self.digest
        );
        if self.stats.slice_migrate_slices > 0 {
            let _ = writeln!(
                out,
                "slice-migrate: {} slices, {} cross-backend migrations",
                self.stats.slice_migrate_slices, self.stats.slice_migrate_migrations
            );
        }
        if self.stats.cosim_sync_points > 0 {
            let _ = writeln!(
                out,
                "compiler lockstep: {} rv32 instructions, {} art9 instructions, {} sync points",
                self.stats.cosim_rv32_instructions,
                self.stats.cosim_art9_instructions,
                self.stats.cosim_sync_points
            );
        }
        if self.divergences.is_empty() {
            let _ = writeln!(out, "no divergences");
        } else {
            let _ = writeln!(out, "{} DIVERGENCES:", self.divergences.len());
            for f in &self.divergences {
                let _ = writeln!(out, "  iteration {}: {}", f.iteration, f.divergence);
                if let Some(p) = &f.replay_path {
                    let _ = writeln!(out, "    replay: {}", p.display());
                }
            }
        }
        out
    }
}

/// FNV-1a over a program's canonical encoding (TIM words + data).
fn program_digest(p: &Program) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: i64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for i in p.text() {
        eat(encode(i).to_i64());
    }
    eat(-1); // text/data separator
    for w in p.data() {
        eat(w.to_i64());
    }
    h
}

/// FNV-1a over an RV32 source's bytes.
fn source_digest(src: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in src.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The thing a failing iteration minimizes and replays: an ART-9
/// program (simulator/toolchain oracles) or RV32 source (the
/// compiler-lockstep oracle).
enum CaseArtifact {
    Art9(Program),
    Rv32(String),
}

/// Outcome of one iteration (collected in index order).
struct IterOutcome {
    stats: OracleStats,
    digest: u64,
    failure: Option<(u64, Divergence, CaseArtifact)>,
}

/// Runs a full fuzz campaign.
///
/// Iterations fan out across `rayon` worker threads; each derives its
/// own RNG stream from `(seed, index)` and results are folded in index
/// order, so the report (digest included) is bit-identical run-to-run
/// for a fixed config.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let budget = step_budget(&cfg.gen);
    let rv_budget = rv32_step_budget(&cfg.rv_gen);
    // compiler-lockstep runs on RV32 programs, so restricting the
    // campaign to it skips the ART-9 generation entirely.
    let cosim_only = cfg.oracle == Some(Oracle::CompilerLockstep);
    let run_cosim = cfg.oracle.is_none() || cosim_only;
    let indices: Vec<u64> = (0..cfg.iterations).collect();
    let outcomes: Vec<IterOutcome> = indices
        .into_par_iter()
        .map(|i| {
            let mut rng = FuzzRng::for_iteration(cfg.seed, i);
            let mut digest = 0u64;
            let mut stats = OracleStats::default();
            let mut divergence = None;
            let mut artifact = None;
            if !cosim_only {
                let mut gen_cfg = cfg.gen;
                if cfg.sweep_mixes {
                    gen_cfg.mix = Mix::ALL[(i % Mix::ALL.len() as u64) as usize];
                }
                let program = generate(&mut rng, &gen_cfg);
                digest = program_digest(&program);
                let (s, d) = check_program_filtered(&program, budget, cfg.oracle);
                stats = s;
                divergence = d;
                if divergence.is_none() && cfg.oracle.is_none_or(|o| o == Oracle::Arithmetic) {
                    divergence = check_arith(&mut rng, cfg.arith_pairs, &mut stats);
                }
                if divergence.is_none() && cfg.oracle.is_none_or(|o| o == Oracle::Simd) {
                    divergence = check_simd(&mut rng, cfg.simd_sets, &mut stats);
                }
                if divergence.is_none() && cfg.oracle.is_none_or(|o| o == Oracle::Wide) {
                    divergence = check_wide(&mut rng, cfg.wide_sets, &mut stats);
                }
                if divergence.is_some() {
                    artifact = Some(CaseArtifact::Art9(program));
                }
            }
            if run_cosim && divergence.is_none() {
                let mut rv_cfg = cfg.rv_gen;
                if cfg.sweep_mixes {
                    rv_cfg.mix = Rv32Mix::ALL[(i % Rv32Mix::ALL.len() as u64) as usize];
                }
                let src = generate_rv32(&mut rng, &rv_cfg);
                digest ^= source_digest(&src).rotate_left(31);
                divergence = check_compiler_lockstep(&src, rv_budget, &mut stats);
                if divergence.is_some() {
                    artifact = Some(CaseArtifact::Rv32(src));
                }
            }
            let failure = divergence.zip(artifact).map(|(d, a)| (i, d, a));
            IterOutcome {
                stats,
                digest,
                failure,
            }
        })
        .collect();

    let mut stats = OracleStats::default();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut divergences = Vec::new();
    for o in &outcomes {
        stats.absorb(&o.stats);
        // Fold per-iteration digests in index order (collect preserves
        // input order, so this is schedule-independent).
        digest ^= o.digest;
        digest = digest.wrapping_mul(0x0000_0100_0000_01B3).rotate_left(17);
    }
    for o in outcomes {
        let Some((iteration, divergence, artifact)) = o.failure else {
            continue;
        };
        // Arithmetic and SIMD findings are value-level, not
        // program-level: the failing operands are in the divergence
        // detail and the case reproduces from `--seed`/`--iterations`
        // alone. Writing the (unrelated) generated program as a replay
        // file would record a "repro" that passes — so no replay is
        // produced.
        if matches!(
            divergence.oracle,
            Oracle::Arithmetic | Oracle::Simd | Oracle::Wide
        ) {
            divergences.push(Failure {
                iteration,
                replay_text: format!(
                    "; {} finding — no program replay; re-run with \
                     --seed {} --iterations {} to reproduce\n; {}",
                    divergence.oracle.name(),
                    cfg.seed,
                    cfg.iterations,
                    divergence.detail
                ),
                divergence,
                replay_path: None,
            });
            continue;
        }
        // Minimize findings by re-running the flagging oracle
        // (restricted to it, so minimization cost scales with one
        // oracle, not the whole matrix). RV32 cases minimize at the
        // source level; ART-9 cases at the instruction level; the
        // replay metadata and failure record are shared below.
        let (final_divergence, artifact) = match artifact {
            CaseArtifact::Rv32(src) => match minimize_rv32(&src, |s| {
                let mut scratch = OracleStats::default();
                check_compiler_lockstep(s, rv_budget, &mut scratch)
            }) {
                Some(m) => (m.divergence, CaseArtifact::Rv32(m.source)),
                None => (divergence, CaseArtifact::Rv32(src)),
            },
            CaseArtifact::Art9(program) => {
                let flagging = divergence.oracle;
                match minimize(&program, |p| {
                    check_program_filtered(p, budget, Some(flagging)).1
                }) {
                    Some(m) => (m.divergence, CaseArtifact::Art9(m.program)),
                    None => (divergence, CaseArtifact::Art9(program)),
                }
            }
        };
        let meta = ReplayMeta {
            seed: cfg.seed,
            iteration,
            divergence: final_divergence.clone(),
        };
        let dir = cfg.fail_dir.as_deref();
        let (replay_text, replay_path) = match &artifact {
            CaseArtifact::Rv32(src) => (
                render_replay_rv32(&meta, src),
                dir.and_then(|d| write_replay_rv32(d, &meta, src).ok()),
            ),
            CaseArtifact::Art9(program) => (
                render_replay(&meta, program),
                dir.and_then(|d| write_replay(d, &meta, program).ok()),
            ),
        };
        divergences.push(Failure {
            iteration,
            divergence: final_divergence,
            replay_text,
            replay_path,
        });
    }

    FuzzReport {
        programs: cfg.iterations,
        stats,
        divergences,
        digest,
    }
}

/// Re-runs the program-level oracles on a replay file's program —
/// all of them, or just `only` when triaging a single oracle.
///
/// Returns the campaign-style report for the single case.
pub fn run_replay(program: &Program, only: Option<Oracle>) -> (OracleStats, Option<Divergence>) {
    // A replayed program may not obey the generator's termination
    // invariants (it could be hand-edited), so give it a generous
    // fixed budget.
    check_program_filtered(program, 2_000_000, only)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzConfig {
        FuzzConfig {
            iterations: 25,
            gen: GenConfig {
                max_len: 60,
                ..GenConfig::default()
            },
            arith_pairs: 8,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn campaign_is_clean_and_deterministic() {
        let cfg = tiny();
        let a = run_fuzz(&cfg);
        assert!(a.divergences.is_empty(), "{}", a.render());
        assert!(a.stats.functional_instructions > 0);
        assert!(a.stats.threaded_instructions > 0);
        let b = run_fuzz(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(
            a.stats.functional_instructions,
            b.stats.functional_instructions
        );
        assert_eq!(a.stats.threaded_instructions, b.stats.threaded_instructions);
        assert_eq!(a.stats.pipelined_cycles, b.stats.pipelined_cycles);
        assert_eq!(a.stats.roundtrip_checks, b.stats.roundtrip_checks);
    }

    #[test]
    fn different_seeds_generate_different_campaigns() {
        let a = run_fuzz(&tiny());
        let mut cfg = tiny();
        cfg.seed = 43;
        let b = run_fuzz(&cfg);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn report_renders_counts() {
        let r = run_fuzz(&FuzzConfig {
            iterations: 3,
            ..tiny()
        });
        let text = r.render();
        assert!(text.contains("3 programs"), "{text}");
        assert!(text.contains("no divergences"), "{text}");
        assert!(text.contains("digest"), "{text}");
    }
}
