//! # `art9-fuzz` — differential fuzzing for the ART-9 frameworks
//!
//! The paper's evaluation rests on three executions of the same ISA
//! agreeing — the functional model, the pipelined model and the
//! ternary arithmetic layer. This crate turns that claim into a
//! generative check: a seeded random [program generator](generate)
//! over the full 24-instruction ISA, co-simulated in lockstep through
//! four [oracles](check_program) (functional vs a per-trit
//! [`ReferenceSim`], pipelined with forwarding on and off, and the
//! encode/decode/disassemble/reassemble toolchain), plus a direct
//! packed-vs-tritwise [arithmetic oracle](check_arith). Failures are
//! [minimized](minimize) by greedy NOP substitution and written as
//! one-command [replay files](render_replay).
//!
//! Design notes (generator invariants, the oracle matrix, the replay
//! format) live in `docs/FUZZING.md` at the repository root.
//!
//! ## Quick start
//!
//! ```
//! use art9_fuzz::{run_fuzz, FuzzConfig};
//!
//! let mut cfg = FuzzConfig::default();
//! cfg.iterations = 10;
//! let report = run_fuzz(&cfg);
//! assert_eq!(report.divergences.len(), 0, "{}", report.render());
//! // Determinism: the same seed reproduces the same programs.
//! assert_eq!(report.digest, run_fuzz(&cfg).digest);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod minimize;
mod oracle;
mod replay;
mod rng;

/// The per-trit reference interpreter now lives in `art9-sim` (it
/// implements the unified `Core` API); re-exported here for
/// compatibility.
pub use art9_sim::ReferenceSim;
pub use gen::{generate, step_budget, GenConfig, Mix, MIN_TDM_WORDS};
pub use minimize::{minimize, Minimized};
pub use oracle::{
    check_arith, check_program, check_program_filtered, lockstep, random_word, Divergence,
    LockstepOutcome, Oracle, OracleStats, ORACLE_TDM_WORDS,
};
pub use replay::{parse_replay, render_replay, write_replay, ReplayMeta, REPLAY_MAGIC};
pub use rng::FuzzRng;

use art9_isa::{encode, Program};
use rayon::prelude::*;

/// A whole fuzz campaign's configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: the campaign is a pure function of this value (and
    /// the other knobs), independent of thread scheduling.
    pub seed: u64,
    /// Number of generated programs.
    pub iterations: u64,
    /// Generator tuning (mix, lengths, loop budget).
    pub gen: GenConfig,
    /// Random word pairs per iteration for the arithmetic oracle.
    pub arith_pairs: usize,
    /// Rotate through every named [`Mix`] by iteration index instead
    /// of using `gen.mix` for all iterations (the smoke profile does
    /// this so CI exercises the memory/control paths too).
    pub sweep_mixes: bool,
    /// Directory to write replay files for minimized failures;
    /// `None` keeps failures in the report only.
    pub fail_dir: Option<std::path::PathBuf>,
    /// Restrict the campaign to one oracle (the `--oracle` triage
    /// filter); `None` runs them all.
    pub oracle: Option<Oracle>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            iterations: 1000,
            gen: GenConfig::default(),
            arith_pairs: 32,
            sweep_mixes: false,
            fail_dir: None,
            oracle: None,
        }
    }
}

impl FuzzConfig {
    /// The CI smoke budget: 150 small programs in a few seconds,
    /// rotating through every named mix (and hitting both halt
    /// styles) so the memory and control paths get CI coverage too.
    pub fn smoke() -> Self {
        Self {
            iterations: 150,
            gen: GenConfig {
                max_len: 80,
                ..GenConfig::default()
            },
            arith_pairs: 16,
            sweep_mixes: true,
            ..Self::default()
        }
    }
}

/// One minimized failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Iteration index the case was generated at.
    pub iteration: u64,
    /// The (minimized) divergence.
    pub divergence: Divergence,
    /// The minimized program, rendered as replayable assembly.
    pub replay_text: String,
    /// Where the replay file was written, when a `fail_dir` was set.
    pub replay_path: Option<std::path::PathBuf>,
}

/// Aggregate result of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Programs generated and checked.
    pub programs: u64,
    /// Folded oracle work counters.
    pub stats: OracleStats,
    /// Every divergence found (minimized).
    pub divergences: Vec<Failure>,
    /// Order-independent digest of every generated program: two runs
    /// with the same config produce the same digest regardless of
    /// `rayon` scheduling — the reproducibility check.
    pub digest: u64,
}

impl FuzzReport {
    /// Renders the human-readable campaign summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} programs | {} functional instructions, {} pipelined cycles",
            self.programs, self.stats.functional_instructions, self.stats.pipelined_cycles
        );
        let _ = writeln!(
            out,
            "{} roundtrip checks, {} arithmetic checks | digest {:016x}",
            self.stats.roundtrip_checks, self.stats.arith_checks, self.digest
        );
        if self.divergences.is_empty() {
            let _ = writeln!(out, "no divergences");
        } else {
            let _ = writeln!(out, "{} DIVERGENCES:", self.divergences.len());
            for f in &self.divergences {
                let _ = writeln!(out, "  iteration {}: {}", f.iteration, f.divergence);
                if let Some(p) = &f.replay_path {
                    let _ = writeln!(out, "    replay: {}", p.display());
                }
            }
        }
        out
    }
}

/// FNV-1a over a program's canonical encoding (TIM words + data).
fn program_digest(p: &Program) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: i64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for i in p.text() {
        eat(encode(i).to_i64());
    }
    eat(-1); // text/data separator
    for w in p.data() {
        eat(w.to_i64());
    }
    h
}

/// Outcome of one iteration (collected in index order).
struct IterOutcome {
    stats: OracleStats,
    digest: u64,
    failure: Option<(u64, Divergence, Program)>,
}

/// Runs a full fuzz campaign.
///
/// Iterations fan out across `rayon` worker threads; each derives its
/// own RNG stream from `(seed, index)` and results are folded in index
/// order, so the report (digest included) is bit-identical run-to-run
/// for a fixed config.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let budget = step_budget(&cfg.gen);
    let indices: Vec<u64> = (0..cfg.iterations).collect();
    let outcomes: Vec<IterOutcome> = indices
        .into_par_iter()
        .map(|i| {
            let mut rng = FuzzRng::for_iteration(cfg.seed, i);
            let mut gen_cfg = cfg.gen;
            if cfg.sweep_mixes {
                gen_cfg.mix = Mix::ALL[(i % Mix::ALL.len() as u64) as usize];
            }
            let program = generate(&mut rng, &gen_cfg);
            let digest = program_digest(&program);
            let (mut stats, mut divergence) = check_program_filtered(&program, budget, cfg.oracle);
            if divergence.is_none() && cfg.oracle.is_none_or(|o| o == Oracle::Arithmetic) {
                divergence = check_arith(&mut rng, cfg.arith_pairs, &mut stats);
            }
            let failure = divergence.map(|d| (i, d, program));
            IterOutcome {
                stats,
                digest,
                failure,
            }
        })
        .collect();

    let mut stats = OracleStats::default();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut divergences = Vec::new();
    for o in &outcomes {
        stats.absorb(&o.stats);
        // Fold per-iteration digests in index order (collect preserves
        // input order, so this is schedule-independent).
        digest ^= o.digest;
        digest = digest.wrapping_mul(0x0000_0100_0000_01B3).rotate_left(17);
    }
    for o in outcomes {
        let Some((iteration, divergence, program)) = o.failure else {
            continue;
        };
        // Arithmetic findings are value-level, not program-level: the
        // failing operands are in the divergence detail and the case
        // reproduces from `--seed`/`--iterations` alone. Writing the
        // (unrelated) generated program as a replay file would record
        // a "repro" that passes — so no replay is produced.
        if divergence.oracle == Oracle::Arithmetic {
            divergences.push(Failure {
                iteration,
                replay_text: format!(
                    "; arithmetic finding — no program replay; re-run with \
                     --seed {} --iterations {} to reproduce\n; {}",
                    cfg.seed, cfg.iterations, divergence.detail
                ),
                divergence,
                replay_path: None,
            });
            continue;
        }
        // Minimize program-level findings by re-running the flagging
        // oracle (restricted to it, so minimization cost scales with
        // one oracle, not five).
        let flagging = divergence.oracle;
        let (final_program, final_divergence) = match minimize(&program, |p| {
            check_program_filtered(p, budget, Some(flagging)).1
        }) {
            Some(m) => (m.program, m.divergence),
            None => (program, divergence),
        };
        let meta = ReplayMeta {
            seed: cfg.seed,
            iteration,
            divergence: final_divergence.clone(),
        };
        let replay_text = render_replay(&meta, &final_program);
        let replay_path = cfg
            .fail_dir
            .as_deref()
            .and_then(|dir| write_replay(dir, &meta, &final_program).ok());
        divergences.push(Failure {
            iteration,
            divergence: final_divergence,
            replay_text,
            replay_path,
        });
    }

    FuzzReport {
        programs: cfg.iterations,
        stats,
        divergences,
        digest,
    }
}

/// Re-runs the program-level oracles on a replay file's program —
/// all of them, or just `only` when triaging a single oracle.
///
/// Returns the campaign-style report for the single case.
pub fn run_replay(program: &Program, only: Option<Oracle>) -> (OracleStats, Option<Divergence>) {
    // A replayed program may not obey the generator's termination
    // invariants (it could be hand-edited), so give it a generous
    // fixed budget.
    check_program_filtered(program, 2_000_000, only)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzConfig {
        FuzzConfig {
            iterations: 25,
            gen: GenConfig {
                max_len: 60,
                ..GenConfig::default()
            },
            arith_pairs: 8,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn campaign_is_clean_and_deterministic() {
        let cfg = tiny();
        let a = run_fuzz(&cfg);
        assert!(a.divergences.is_empty(), "{}", a.render());
        assert!(a.stats.functional_instructions > 0);
        let b = run_fuzz(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(
            a.stats.functional_instructions,
            b.stats.functional_instructions
        );
        assert_eq!(a.stats.pipelined_cycles, b.stats.pipelined_cycles);
        assert_eq!(a.stats.roundtrip_checks, b.stats.roundtrip_checks);
    }

    #[test]
    fn different_seeds_generate_different_campaigns() {
        let a = run_fuzz(&tiny());
        let mut cfg = tiny();
        cfg.seed = 43;
        let b = run_fuzz(&cfg);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn report_renders_counts() {
        let r = run_fuzz(&FuzzConfig {
            iterations: 3,
            ..tiny()
        });
        let text = r.render();
        assert!(text.contains("3 programs"), "{text}");
        assert!(text.contains("no divergences"), "{text}");
        assert!(text.contains("digest"), "{text}");
    }
}
