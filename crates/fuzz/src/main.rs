//! The `art9-fuzz` command-line driver.
//!
//! ```sh
//! # Default campaign (seed 42, 1000 iterations, balanced mix):
//! cargo run --release -p art9-fuzz
//!
//! # The CI gate:
//! cargo run --release -p art9-fuzz -- --smoke
//!
//! # A specific campaign:
//! cargo run --release -p art9-fuzz -- --seed 7 --iterations 5000 --mix memory
//!
//! # One-command repro of a recorded failure:
//! cargo run --release -p art9-fuzz -- --replay fuzz-failures/case-000.art9
//! ```
//!
//! Exit status: `0` when every oracle agreed, `1` on any divergence,
//! `2` on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use art9_fuzz::{
    check_compiler_lockstep, is_rv32_replay, parse_replay, parse_replay_header, run_fuzz,
    run_replay, FuzzConfig, Mix, Oracle, OracleStats, Rv32Mix,
};

const USAGE: &str = "\
art9-fuzz: differential fuzzing of the ART-9 simulators and toolchain

USAGE:
    art9-fuzz [OPTIONS]

OPTIONS:
    --seed N          Master seed (default 42); same seed => same programs
    --iterations N    Programs to generate and co-simulate (default 1000)
    --mix NAME        Instruction mix: balanced | alu | memory | control
                      (ART-9 programs) or rv-balanced | rv-alu | rv-memory |
                      rv-control | rv-spill (RV32 programs for the
                      compiler-lockstep oracle)
    --oracle NAME     Run only one oracle (functional-vs-reference |
                      functional-vs-threaded | energy | slice-migrate |
                      pipelined-fwd | pipelined-nofwd | toolchain-roundtrip |
                      arithmetic | simd | wide | compiler-lockstep) —
                      for triaging a campaign or a replay file
    --max-len N       Upper bound on generated body length (default 160)
    --smoke           CI budget: 150 small programs across the mixes
    --fail-dir DIR    Write minimized replay files here (default fuzz-failures)
    --no-fail-dir     Do not write replay files
    --replay FILE     Re-run the oracles on one replay file and exit
    --help            Show this message
";

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Cmd::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Cmd::Replay { path, oracle }) => replay_one(&path, oracle),
        Ok(Cmd::Run(cfg)) => campaign(&cfg),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

enum Cmd {
    Run(Box<FuzzConfig>),
    Replay {
        path: PathBuf,
        oracle: Option<Oracle>,
    },
    Help,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut cfg = FuzzConfig {
        fail_dir: Some(PathBuf::from("fuzz-failures")),
        ..FuzzConfig::default()
    };
    let mut smoke = false;
    let mut replay = None;
    // Explicit flags always win over the smoke profile, whatever the
    // flag order.
    let mut explicit_iterations = None;
    let mut explicit_max_len = None;
    let mut explicit_mix = None;
    let mut explicit_rv_mix = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => return Ok(Cmd::Help),
            "--smoke" => smoke = true,
            "--seed" => cfg.seed = parse_num(&value("--seed")?)?,
            "--iterations" => explicit_iterations = Some(parse_num(&value("--iterations")?)?),
            "--max-len" => {
                let n = parse_num(&value("--max-len")?)? as usize;
                if n < 9 {
                    return Err("--max-len must be at least 9".into());
                }
                explicit_max_len = Some(n);
            }
            "--mix" => {
                let v = value("--mix")?;
                match (v.parse::<Mix>(), v.parse::<Rv32Mix>()) {
                    (Ok(m), _) => explicit_mix = Some(m),
                    (_, Ok(m)) => explicit_rv_mix = Some(m),
                    (Err(_), Err(_)) => {
                        let names: Vec<&str> = Mix::ALL
                            .iter()
                            .map(Mix::name)
                            .chain(Rv32Mix::ALL.iter().map(Rv32Mix::name))
                            .collect();
                        return Err(format!(
                            "unknown mix {v:?} (expected one of {})",
                            names.join(", ")
                        ));
                    }
                }
            }
            "--oracle" => cfg.oracle = Some(value("--oracle")?.parse::<Oracle>()?),
            "--fail-dir" => cfg.fail_dir = Some(PathBuf::from(value("--fail-dir")?)),
            "--no-fail-dir" => cfg.fail_dir = None,
            "--replay" => replay = Some(PathBuf::from(value("--replay")?)),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if let Some(path) = replay {
        return Ok(Cmd::Replay {
            path,
            oracle: cfg.oracle,
        });
    }
    if smoke {
        let smoke_cfg = FuzzConfig::smoke();
        cfg.iterations = smoke_cfg.iterations;
        cfg.gen = smoke_cfg.gen;
        cfg.arith_pairs = smoke_cfg.arith_pairs;
        cfg.rv_gen = smoke_cfg.rv_gen;
        // The smoke profile rotates through every mix unless the user
        // pinned one explicitly.
        cfg.sweep_mixes = explicit_mix.is_none() && explicit_rv_mix.is_none();
    }
    if let Some(n) = explicit_iterations {
        cfg.iterations = n;
    }
    if let Some(n) = explicit_max_len {
        cfg.gen.max_len = n;
        cfg.rv_gen.max_len = n;
    }
    if let Some(mix) = explicit_mix {
        cfg.gen.mix = mix;
    }
    if let Some(mix) = explicit_rv_mix {
        cfg.rv_gen.mix = mix;
    }
    Ok(Cmd::Run(Box::new(cfg)))
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

fn campaign(cfg: &FuzzConfig) -> ExitCode {
    let mix = if cfg.sweep_mixes {
        "sweep (all)"
    } else if cfg.oracle == Some(Oracle::CompilerLockstep) {
        cfg.rv_gen.mix.name()
    } else {
        cfg.gen.mix.name()
    };
    let oracle = cfg.oracle.map_or("all", |o| o.name());
    println!(
        "art9-fuzz: seed {}, {} iterations, mix {}, max-len {}, oracle {}",
        cfg.seed, cfg.iterations, mix, cfg.gen.max_len, oracle
    );
    let start = std::time::Instant::now();
    let report = run_fuzz(cfg);
    print!("{}", report.render());
    println!("wall time {:.1}s", start.elapsed().as_secs_f64());
    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &report.divergences {
            if f.replay_path.is_none() {
                eprintln!(
                    "--- minimized case (iteration {}) ---\n{}",
                    f.iteration, f.replay_text
                );
            }
        }
        ExitCode::FAILURE
    }
}

/// The triage summary of a replayed divergence: which oracle flagged
/// it and the first differing state field, plus the provenance the
/// replay file recorded when it was written.
fn triage(text: &str, divergence: &art9_fuzz::Divergence) {
    let recorded = parse_replay_header(text);
    println!("DIVERGENCE: {divergence}");
    println!("triage: flagged by oracle `{}`", divergence.oracle.name());
    if let Some(first) = divergence.detail.lines().next() {
        println!("triage: first differing state field: {first}");
    }
    if let Some(o) = recorded.oracle {
        let verdict = if o == divergence.oracle {
            "matches"
        } else {
            "DIFFERS from"
        };
        println!(
            "triage: recorded oracle `{}` {} the fresh result",
            o.name(),
            verdict
        );
    }
    if let (Some(seed), Some(iteration)) = (recorded.seed, recorded.iteration) {
        println!("triage: originally found at seed {seed}, iteration {iteration}");
    }
}

fn replay_one(path: &std::path::Path, oracle: Option<Oracle>) -> ExitCode {
    if let Some(o @ (Oracle::Arithmetic | Oracle::Simd | Oracle::Wide)) = oracle {
        eprintln!(
            "error: the {} oracle is value-level and has no program replay; \
             reproduce it with --seed/--iterations instead",
            o.name()
        );
        return ExitCode::from(2);
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };

    // RV32-flavored replays (compiler-lockstep) carry RV32 source.
    if is_rv32_replay(&text) {
        if oracle.is_some_and(|o| o != Oracle::CompilerLockstep) {
            eprintln!(
                "error: {} is an rv32 replay; only the compiler-lockstep oracle applies",
                path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "replaying {} (rv32 source, oracle compiler-lockstep)",
            path.display()
        );
        let mut stats = OracleStats::default();
        // A replayed source may not obey the generator's termination
        // invariants (it could be hand-edited), so give it a generous
        // fixed budget rather than the campaign's computed bound.
        let divergence = check_compiler_lockstep(&text, 2_000_000, &mut stats);
        println!(
            "{} rv32 instructions, {} art9 instructions, {} sync points",
            stats.cosim_rv32_instructions, stats.cosim_art9_instructions, stats.cosim_sync_points
        );
        return match divergence {
            None => {
                println!("all oracles agree");
                ExitCode::SUCCESS
            }
            Some(d) => {
                triage(&text, &d);
                ExitCode::FAILURE
            }
        };
    }

    if oracle == Some(Oracle::CompilerLockstep) {
        eprintln!(
            "error: {} is an art9 replay; the compiler-lockstep oracle replays rv32 \
             sources (case-*.rv32)",
            path.display()
        );
        return ExitCode::from(2);
    }
    let program = match parse_replay(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {} is not a valid replay file: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} ({} instructions, {} data words, oracle {})",
        path.display(),
        program.text().len(),
        program.data().len(),
        oracle.map_or("all", |o| o.name())
    );
    let (stats, divergence) = run_replay(&program, oracle);
    println!(
        "{} functional instructions, {} threaded instructions, {} pipelined cycles, \
         {} roundtrip checks",
        stats.functional_instructions,
        stats.threaded_instructions,
        stats.pipelined_cycles,
        stats.roundtrip_checks
    );
    match divergence {
        None => {
            println!("all oracles agree");
            ExitCode::SUCCESS
        }
        Some(d) => {
            triage(&text, &d);
            ExitCode::FAILURE
        }
    }
}
