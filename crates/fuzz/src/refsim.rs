//! A deliberately slow per-trit reference interpreter.
//!
//! The third corner of the oracle triangle: where `art9-sim` executes
//! through the shared [`art9_sim::talu`] on packed bitplanes, this
//! interpreter re-derives every instruction's semantics **trit by
//! trit** from the paper — ripple-carry addition via
//! [`ternary::arith::add_tritwise`], per-trit inversions and logic via
//! the [`Trit`] truth tables, shifts and field splices as explicit
//! trit-array surgery, comparison as a most-significant-trit-first
//! scan — so a bug in the packed carry-loop kernels (the place
//! Etiemble's adder comparisons say ternary arithmetic goes wrong:
//! carry chains and sign boundaries) cannot hide in both simulators at
//! once.
//!
//! The interpreter intentionally shares **no** execution code with
//! `art9-sim`: only the instruction enum, the architectural constants,
//! and the halt convention are common vocabulary.

use art9_isa::{Instruction, Program, TReg};
use ternary::{arith, Trit, Trits, Word9};

use art9_sim::HaltReason;

/// An execution fault in the reference interpreter, mirroring the
/// conditions `art9_sim::SimError` reports (generated programs trigger
/// neither; any occurrence is a finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefFault {
    /// A control transfer left `[0, text_len]`.
    PcOutOfRange {
        /// The computed target.
        pc: i64,
    },
    /// A TDM access outside the window.
    MemoryFault {
        /// Instruction address of the faulting access.
        pc: usize,
        /// The resolved (possibly negative) address.
        address: i64,
    },
}

impl std::fmt::Display for RefFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefFault::PcOutOfRange { pc } => write!(f, "reference: PC {pc} out of range"),
            RefFault::MemoryFault { pc, address } => {
                write!(
                    f,
                    "reference: memory fault at instruction {pc} (address {address})"
                )
            }
        }
    }
}

impl std::error::Error for RefFault {}

/// The per-trit reference interpreter.
///
/// # Examples
///
/// ```
/// use art9_fuzz::ReferenceSim;
/// use art9_isa::assemble;
///
/// let p = assemble("LI t3, 20\nADDI t3, 1\nADD t3, t3\nJAL t0, 0\n")?;
/// let mut r = ReferenceSim::new(&p, 256);
/// while r.halted().is_none() {
///     r.step()?;
/// }
/// assert_eq!(r.reg("t3".parse()?).to_i64(), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceSim {
    text: Vec<Instruction>,
    pc: usize,
    trf: [Word9; 9],
    tdm: Vec<Word9>,
    instructions: u64,
    halted: Option<HaltReason>,
}

impl ReferenceSim {
    /// Builds an interpreter over `program` with a `tdm_words`-word TDM
    /// (grown to fit the data image, like the functional simulator).
    pub fn new(program: &Program, tdm_words: usize) -> Self {
        let mut tdm = vec![Word9::ZERO; tdm_words.max(program.data().len())];
        tdm[..program.data().len()].copy_from_slice(program.data());
        Self {
            text: program.text().to_vec(),
            pc: 0,
            trf: [Word9::ZERO; 9],
            tdm,
            instructions: 0,
            halted: None,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Reads a register.
    pub fn reg(&self, r: TReg) -> Word9 {
        self.trf[r.index()]
    }

    /// The whole register file.
    pub fn trf(&self) -> &[Word9; 9] {
        &self.trf
    }

    /// The TDM contents.
    pub fn tdm(&self) -> &[Word9] {
        &self.tdm
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether (and why) the machine halted.
    pub fn halted(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Executes one instruction; mirrors the architectural contract of
    /// `FunctionalSim::step` (halt detection order included) while
    /// computing every result per trit.
    ///
    /// # Errors
    ///
    /// [`RefFault`] on wild control transfers or TDM violations.
    pub fn step(&mut self) -> Result<Option<HaltReason>, RefFault> {
        if let Some(r) = self.halted {
            return Ok(Some(r));
        }
        let pc = self.pc;
        if pc == self.text.len() {
            self.halted = Some(HaltReason::FellOffEnd);
            return Ok(Some(HaltReason::FellOffEnd));
        }
        let instr = self.text[pc];
        self.instructions += 1;

        use Instruction::*;
        let link = word_from_value(pc as i64 + 1);

        // Destination value (per-trit), memory effects, and branch
        // decision, all re-derived from the paper's semantics.
        match instr {
            Mv { a, b } => self.trf[a.index()] = self.reg(b),
            Pti { a, b } => self.trf[a.index()] = map_trits(self.reg(b), Trit::pti),
            Nti { a, b } => self.trf[a.index()] = map_trits(self.reg(b), Trit::nti),
            Sti { a, b } => self.trf[a.index()] = map_trits(self.reg(b), Trit::sti),
            And { a, b } => self.trf[a.index()] = zip_trits(self.reg(a), self.reg(b), Trit::and),
            Or { a, b } => self.trf[a.index()] = zip_trits(self.reg(a), self.reg(b), Trit::or),
            Xor { a, b } => self.trf[a.index()] = zip_trits(self.reg(a), self.reg(b), Trit::xor),
            Add { a, b } => {
                self.trf[a.index()] = arith::add_tritwise(self.reg(a), self.reg(b)).0;
            }
            Sub { a, b } => {
                let neg_b = map_trits(self.reg(b), Trit::sti);
                self.trf[a.index()] = arith::add_tritwise(self.reg(a), neg_b).0;
            }
            Sr { a, b } => {
                let amount = low2_value(self.reg(b));
                self.trf[a.index()] = shift_trits(self.reg(a), -amount);
            }
            Sl { a, b } => {
                let amount = low2_value(self.reg(b));
                self.trf[a.index()] = shift_trits(self.reg(a), amount);
            }
            Comp { a, b } => {
                self.trf[a.index()] = compare_trits(self.reg(a), self.reg(b));
            }
            Andi { a, imm } => {
                self.trf[a.index()] = zip_trits(self.reg(a), extend(imm), Trit::and);
            }
            Addi { a, imm } => {
                self.trf[a.index()] = arith::add_tritwise(self.reg(a), extend(imm)).0;
            }
            Sri { a, imm } => {
                self.trf[a.index()] = shift_trits(self.reg(a), -signed_value(imm));
            }
            Sli { a, imm } => {
                self.trf[a.index()] = shift_trits(self.reg(a), signed_value(imm));
            }
            Lui { a, imm } => {
                // {imm[3:0], 00000}: low five trits zero.
                let mut out = [Trit::Z; 9];
                for (i, t) in imm.trits().iter().enumerate() {
                    out[5 + i] = *t;
                }
                self.trf[a.index()] = Trits::from_trits(out);
            }
            Li { a, imm } => {
                // {TRF[Ta][8:5], imm[4:0]}: upper trits preserved.
                let mut out = self.reg(a).trits();
                for (i, t) in imm.trits().iter().enumerate() {
                    out[i] = *t;
                }
                self.trf[a.index()] = Trits::from_trits(out);
            }
            // B-type register effects (the links) are handled together
            // with the control transfer below, so `JALR tX, tX, k`
            // reads its base before the link overwrites it.
            Beq { .. } | Bne { .. } | Jal { .. } | Jalr { .. } => {}
            Load { a, b, offset } => {
                let addr = address_value(self.reg(b), offset);
                let idx = self.resolve(addr, pc)?;
                self.trf[a.index()] = self.tdm[idx];
            }
            Store { a, b, offset } => {
                let addr = address_value(self.reg(b), offset);
                let idx = self.resolve(addr, pc)?;
                self.tdm[idx] = self.reg(a);
            }
        }

        // Control flow (per-trit address arithmetic for JALR).
        let next: i64 = match instr {
            Beq { b, cond, offset } => {
                if self.reg(b).trits()[0] == cond {
                    pc as i64 + signed_value(offset)
                } else {
                    pc as i64 + 1
                }
            }
            Bne { b, cond, offset } => {
                if self.reg(b).trits()[0] != cond {
                    pc as i64 + signed_value(offset)
                } else {
                    pc as i64 + 1
                }
            }
            Jal { a, offset } => {
                let target = pc as i64 + signed_value(offset);
                self.trf[a.index()] = link;
                target
            }
            Jalr { a, b, offset } => {
                // Target = base + offset computed tritwise *before* the
                // link write, so `JALR tX, tX, k` uses the old base.
                let target = address_value(self.reg(b), offset);
                self.trf[a.index()] = link;
                target
            }
            _ => pc as i64 + 1,
        };

        if next < 0 || next as usize > self.text.len() {
            return Err(RefFault::PcOutOfRange { pc: next });
        }
        let next = next as usize;
        if next == pc {
            self.halted = Some(HaltReason::JumpToSelf);
            return Ok(Some(HaltReason::JumpToSelf));
        }
        self.pc = next;
        if next == self.text.len() {
            self.halted = Some(HaltReason::FellOffEnd);
            return Ok(Some(HaltReason::FellOffEnd));
        }
        Ok(None)
    }

    /// Resolves a signed address value to a TDM index.
    fn resolve(&self, addr: i64, pc: usize) -> Result<usize, RefFault> {
        if addr < 0 || addr as usize >= self.tdm.len() {
            return Err(RefFault::MemoryFault { pc, address: addr });
        }
        Ok(addr as usize)
    }
}

/// Applies a per-trit unary function.
fn map_trits(w: Word9, f: fn(Trit) -> Trit) -> Word9 {
    let mut out = w.trits();
    for t in &mut out {
        *t = f(*t);
    }
    Trits::from_trits(out)
}

/// Applies a per-trit binary function.
fn zip_trits(a: Word9, b: Word9, f: fn(Trit, Trit) -> Trit) -> Word9 {
    let at = a.trits();
    let bt = b.trits();
    let mut out = [Trit::Z; 9];
    for i in 0..9 {
        out[i] = f(at[i], bt[i]);
    }
    Trits::from_trits(out)
}

/// The signed value of a small immediate, summed per trit
/// (`Σ tᵢ·3^i`) rather than through the packed `to_i64` path.
fn signed_value<const N: usize>(imm: Trits<N>) -> i64 {
    let mut v = 0i64;
    let mut scale = 1i64;
    for t in imm.trits() {
        v += i64::from(t.value()) * scale;
        scale *= 3;
    }
    v
}

/// The balanced value of the low two trits of `w` (the hardware's
/// shift-amount field).
fn low2_value(w: Word9) -> i64 {
    let t = w.trits();
    i64::from(t[0].value()) + 3 * i64::from(t[1].value())
}

/// Builds a [`Word9`] from an in-range signed value one trit at a
/// time — the balanced-ternary digit expansion, not the packed
/// converter. (Used for link values, which are always small and
/// non-negative.)
fn word_from_value(v: i64) -> Word9 {
    canonical_balanced(v)
}

/// Canonical balanced-ternary expansion of `v ∈ [−9841, 9841]`.
fn canonical_balanced(v: i64) -> Word9 {
    debug_assert!((-9841..=9841).contains(&v), "{v} outside the 9-trit range");
    let mut out = [Trit::Z; 9];
    let mut rest = v;
    for slot in &mut out {
        // Truncating remainder is in {-2..=2}; fold ±2 into ∓1 with a
        // carry, giving the balanced digit set {-1, 0, +1}.
        let mut digit = rest % 3;
        rest /= 3;
        if digit == 2 {
            digit = -1;
            rest += 1;
        } else if digit == -2 {
            digit = 1;
            rest -= 1;
        }
        *slot = match digit {
            -1 => Trit::N,
            0 => Trit::Z,
            _ => Trit::P,
        };
    }
    Trits::from_trits(out)
}

/// Per-trit comparison, most significant trit first (the TALU's
/// trit-serial comparator): the first differing trit decides.
fn compare_trits(a: Word9, b: Word9) -> Word9 {
    let at = a.trits();
    let bt = b.trits();
    let mut sign = Trit::Z;
    for i in (0..9).rev() {
        if at[i] != bt[i] {
            sign = if at[i].value() > bt[i].value() {
                Trit::P
            } else {
                Trit::N
            };
            break;
        }
    }
    let mut out = [Trit::Z; 9];
    out[0] = sign;
    Trits::from_trits(out)
}

/// Shift by a signed trit count: positive = left (toward the MST),
/// negative = right; explicit trit-array surgery.
fn shift_trits(w: Word9, amount: i64) -> Word9 {
    let t = w.trits();
    let mut out = [Trit::Z; 9];
    if amount >= 0 {
        let k = amount as usize;
        for i in 0..9 {
            if i >= k {
                out[i] = t[i - k];
            }
        }
    } else {
        let k = (-amount) as usize;
        for i in 0..9 {
            if i + k < 9 {
                out[i] = t[i + k];
            }
        }
    }
    Trits::from_trits(out)
}

/// Sign-extends an immediate to nine trits (in balanced ternary that
/// is literal zero-padding of the upper trits).
fn extend<const N: usize>(imm: Trits<N>) -> Word9 {
    let src = imm.trits();
    let mut out = [Trit::Z; 9];
    out[..N].copy_from_slice(&src);
    Trits::from_trits(out)
}

/// Effective address `base + offset`, added tritwise, read as a signed
/// per-trit value.
fn address_value<const N: usize>(base: Word9, offset: Trits<N>) -> i64 {
    let (sum, _) = arith::add_tritwise(base, extend(offset));
    signed_value(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_isa::assemble;

    fn run(src: &str) -> ReferenceSim {
        let p = assemble(src).unwrap();
        let mut r = ReferenceSim::new(&p, 256);
        for _ in 0..100_000 {
            if r.step().unwrap().is_some() {
                return r;
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn countdown_loop_matches_functional_semantics() {
        let r = run("LI t3, 10\nLI t4, 0\nloop:\nADD t4, t3\nADDI t3, -1\n\
             MV t7, t3\nCOMP t7, t0\nBEQ t7, +, loop\nJAL t0, 0\n");
        assert_eq!(r.reg(TReg::T4).to_i64(), 55);
        assert_eq!(r.halted(), Some(HaltReason::JumpToSelf));
    }

    #[test]
    fn load_store_roundtrip() {
        let r = run(
            ".data\nv: .word 41, 0\n.text\nLI t2, 0\nLOAD t3, t2, 0\nADDI t3, 1\n\
             STORE t3, t2, 1\nLOAD t4, t2, 1\nJAL t0, 0\n",
        );
        assert_eq!(r.reg(TReg::T4).to_i64(), 42);
        assert_eq!(r.tdm()[1].to_i64(), 42);
    }

    #[test]
    fn memory_fault_detected() {
        let p = assemble("LI t2, 121\nLUI t2, 40\nLOAD t3, t2, 0\n").unwrap();
        let mut r = ReferenceSim::new(&p, 256);
        let mut fault = None;
        for _ in 0..10 {
            match r.step() {
                Err(e) => {
                    fault = Some(e);
                    break;
                }
                Ok(Some(_)) => break,
                Ok(None) => {}
            }
        }
        assert!(matches!(fault, Some(RefFault::MemoryFault { pc: 2, .. })));
    }

    #[test]
    fn canonical_balanced_round_trips() {
        for v in [-9841i64, -4821, -100, -1, 0, 1, 5, 100, 4821, 9841] {
            assert_eq!(canonical_balanced(v).to_i64(), v, "{v}");
        }
    }

    #[test]
    fn compare_matches_packed() {
        for a in [-9841i64, -100, -1, 0, 1, 100, 9841] {
            for b in [-9841i64, -2, 0, 2, 9841] {
                let wa = Word9::from_i64(a).unwrap();
                let wb = Word9::from_i64(b).unwrap();
                assert_eq!(compare_trits(wa, wb), wa.compare(wb), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn shift_matches_packed() {
        for v in [-9841i64, -121, -5, 0, 5, 121, 9841] {
            let w = Word9::from_i64(v).unwrap();
            for k in 0..=4i64 {
                assert_eq!(shift_trits(w, k), w.shl(k as usize), "{v} shl {k}");
                assert_eq!(shift_trits(w, -k), w.shr(k as usize), "{v} shr {k}");
            }
        }
    }
}
