//! Lockstep co-simulation oracles.
//!
//! Every generated program runs through five independent executions —
//! the functional simulator, the per-trit
//! [`ReferenceSim`](art9_sim::ReferenceSim), the direct-threaded
//! [`ThreadedSim`](art9_sim::ThreadedSim), and the pipelined simulator
//! with forwarding on and off — plus the toolchain roundtrip
//! (encode → decode → disassemble → reassemble). A further oracle
//! exercises the packed-vs-tritwise arithmetic layer directly on
//! random words. Any disagreement is reported as a [`Divergence`]
//! naming the oracle, the step, and the first differing piece of
//! state.
//!
//! The functional/reference and functional/threaded pairs run **step
//! for step** through the generic [`lockstep`] entry point — any two
//! [`Core`] backends, `pc`, the nine TRF registers and the halt state
//! compared after every instruction, TDM and retirement counts at
//! halt. The threaded oracle then re-runs the program free-running, so
//! its fused superblock dispatch path gets the same differential
//! coverage as its per-instruction stepping path. The pipelined runs
//! are compared at halt (registers, TDM, halt reason,
//! retired-instruction count) because the pipeline only exposes
//! architectural state at retirement.
//!
//! Every simulator here is built through
//! [`SimBuilder`](art9_sim::SimBuilder) — the oracles contain no
//! backend-specific construction.

use std::sync::{Arc, Mutex};

use art9_isa::{assemble, decode, disassemble_word, encode, Instruction, Program, ALL_REGS};
use art9_sim::observers::EnergyAccounting;
use art9_sim::{
    Backend, Budget, Checkpoint, Core, CoreState, HaltReason, PredecodedProgram, SimBuilder,
};
use ternary::simd::{self, LaneWeights, PackedWeights, Word9xN};
use ternary::{arith, Trit, Trits, Word9};

use crate::gen::MIN_TDM_WORDS;
use crate::rng::FuzzRng;

/// TDM size every oracle runs with: covers the generator's base window
/// and matches the default simulator configuration.
pub const ORACLE_TDM_WORDS: usize = if MIN_TDM_WORDS > 256 {
    MIN_TDM_WORDS
} else {
    256
};

/// The oracles a program runs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Functional simulator vs the per-trit reference, in lockstep.
    FunctionalVsReference,
    /// Functional simulator vs the direct-threaded backend: a
    /// per-instruction lockstep run, then a fresh free run through the
    /// fused superblock path compared at halt.
    FunctionalVsThreaded,
    /// Pipelined simulator (forwarding on) vs functional, at halt.
    PipelinedForwarding,
    /// Pipelined simulator (forwarding off) vs functional, at halt.
    PipelinedNoForwarding,
    /// Trit-flip energy accounting: the same program measured on the
    /// functional simulator with the packed (`flips_from`) flip kernel
    /// and on the per-trit reference simulator with the tritwise flip
    /// reference — every per-opcode, per-structure flip counter must be
    /// bit-identical.
    Energy,
    /// The service scheduler's execution model, checked differentially:
    /// a run sliced on random [`Budget::Retired`] quanta and *migrated*
    /// between architectural backends at random slice boundaries
    /// (checkpoint-text roundtrip, shared energy observer) must be
    /// bit-identical to a straight-line run — final state, halt reason,
    /// retirement count, instruction mix and per-opcode energy
    /// counters.
    SliceMigrate,
    /// encode → decode → disassemble → reassemble roundtrip.
    ToolchainRoundtrip,
    /// Packed bitplane kernels vs the tritwise reference algorithms.
    Arithmetic,
    /// Bitplane-SIMD lane subsystem ([`Word9xN`]) vs the per-trit
    /// lanewise references in `ternary::arith`: lane-parallel add,
    /// subtract, negate, logic, compare, ternary-weight MAC and
    /// horizontal reduce on adversarial lane counts (word-boundary
    /// ±1), ±3^k lane values, all-zero weight vectors and mixed-sign
    /// MACs.
    Simd,
    /// Wide-width arithmetic: packed kernels vs the trit-serial
    /// references at every width past the 9-trit machine word —
    /// single-plane `Trits<40>`/`Trits<63>` (the band the pre-fix
    /// constants made uninstantiable), the multi-plane
    /// `Word27`/`Word81` words (cross-plane carry ripple, the 81-trit
    /// range exceeding `i128`), and the tapered-precision
    /// `TernaryReal` add/mul against the exact-integer rounding
    /// reference.
    Wide,
    /// RV32→ART-9 translation vs the `rv32` machine, in lockstep at
    /// RV32-instruction granularity (see [`crate::CoSim`]). Runs on
    /// generated RV32 programs, not ART-9 ones.
    CompilerLockstep,
}

impl Oracle {
    /// Every oracle, in campaign order.
    pub const ALL: [Oracle; 11] = [
        Oracle::FunctionalVsReference,
        Oracle::FunctionalVsThreaded,
        Oracle::Energy,
        Oracle::SliceMigrate,
        Oracle::PipelinedForwarding,
        Oracle::PipelinedNoForwarding,
        Oracle::ToolchainRoundtrip,
        Oracle::Arithmetic,
        Oracle::Simd,
        Oracle::Wide,
        Oracle::CompilerLockstep,
    ];

    /// Stable display name (used in replay files, reports, and the
    /// `--oracle` CLI filter).
    pub fn name(&self) -> &'static str {
        match self {
            Oracle::FunctionalVsReference => "functional-vs-reference",
            Oracle::FunctionalVsThreaded => "functional-vs-threaded",
            Oracle::Energy => "energy",
            Oracle::SliceMigrate => "slice-migrate",
            Oracle::PipelinedForwarding => "pipelined-fwd",
            Oracle::PipelinedNoForwarding => "pipelined-nofwd",
            Oracle::ToolchainRoundtrip => "toolchain-roundtrip",
            Oracle::Arithmetic => "arithmetic",
            Oracle::Simd => "simd",
            Oracle::Wide => "wide",
            Oracle::CompilerLockstep => "compiler-lockstep",
        }
    }
}

impl std::str::FromStr for Oracle {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Oracle::ALL
            .into_iter()
            .find(|o| o.name() == s)
            .ok_or_else(|| {
                let names: Vec<_> = Oracle::ALL.iter().map(|o| o.name()).collect();
                format!(
                    "unknown oracle {s:?} (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// One observed disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The oracle that caught it.
    pub oracle: Oracle,
    /// Human-readable description of the first difference.
    pub detail: String,
}

impl Divergence {
    /// Marker phrase shared by the two budget-exhaustion reports (kept
    /// in one place so [`Divergence::is_budget_exhaustion`] cannot
    /// drift from the messages).
    pub(crate) const BUDGET_MARKER: &'static str = "exceeded the budget of";

    /// `true` when this divergence reports budget exhaustion (a
    /// non-terminating run) rather than a state disagreement. The
    /// minimizer refuses to trade one kind for the other.
    pub fn is_budget_exhaustion(&self) -> bool {
        self.detail.contains(Self::BUDGET_MARKER)
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle.name(), self.detail)
    }
}

/// Per-program oracle statistics (folded into the fuzz report).
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleStats {
    /// Instructions the functional simulator executed.
    pub functional_instructions: u64,
    /// Instructions the threaded backend retired (stepped + fused runs).
    pub threaded_instructions: u64,
    /// Cycles the two pipelined runs consumed together.
    pub pipelined_cycles: u64,
    /// Individual roundtrip checks performed.
    pub roundtrip_checks: u64,
    /// Individual arithmetic cross-checks performed.
    pub arith_checks: u64,
    /// Individual SIMD-lane cross-checks performed (one per lane-op
    /// comparison against its tritwise lanewise reference).
    pub simd_checks: u64,
    /// Individual wide-width cross-checks performed (one per packed-op
    /// comparison against its trit-serial or exact-integer reference).
    pub wide_checks: u64,
    /// Trit flips cross-checked by the energy oracle (packed total;
    /// the tritwise side counted the same number when the oracle
    /// passed).
    pub energy_flips: u64,
    /// Slices the slice-migrate oracle executed.
    pub slice_migrate_slices: u64,
    /// Cross-backend checkpoint migrations the slice-migrate oracle
    /// performed.
    pub slice_migrate_migrations: u64,
    /// RV32 instructions the compiler-lockstep oracle retired.
    pub cosim_rv32_instructions: u64,
    /// ART-9 instructions the compiler-lockstep oracle retired.
    pub cosim_art9_instructions: u64,
    /// Sync points (RV32-instruction boundaries) compared in full.
    pub cosim_sync_points: u64,
}

impl OracleStats {
    /// Accumulates another program's counters.
    pub fn absorb(&mut self, other: &OracleStats) {
        self.functional_instructions += other.functional_instructions;
        self.threaded_instructions += other.threaded_instructions;
        self.pipelined_cycles += other.pipelined_cycles;
        self.roundtrip_checks += other.roundtrip_checks;
        self.arith_checks += other.arith_checks;
        self.simd_checks += other.simd_checks;
        self.wide_checks += other.wide_checks;
        self.energy_flips += other.energy_flips;
        self.slice_migrate_slices += other.slice_migrate_slices;
        self.slice_migrate_migrations += other.slice_migrate_migrations;
        self.cosim_rv32_instructions += other.cosim_rv32_instructions;
        self.cosim_art9_instructions += other.cosim_art9_instructions;
        self.cosim_sync_points += other.cosim_sync_points;
    }
}

/// How a [`lockstep`] co-simulation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockstepOutcome {
    /// Both cores halted identically and agreed at every step.
    Agreed(HaltReason),
    /// The first disagreement (or a fault on either side), described.
    Diverged(String),
    /// Neither halt nor disagreement within the step budget.
    BudgetExhausted,
    /// A backend that cannot step architecturally (the pipeline) was
    /// passed; no steps were executed.
    Unsupported(String),
}

/// Runs two **architectural** [`Core`] backends in lockstep for up to
/// `max_steps` steps: after every step the halt state, the PC and all
/// nine TRF registers are compared; at halt the TDM and the
/// retired-instruction counts are compared too. Differences are
/// described naming each side's backend.
///
/// Generic over `Core + ?Sized`, so it accepts concrete simulators and
/// `dyn Core` trait objects alike — the same entry point serves the
/// fuzz campaign and ad-hoc A/B debugging.
///
/// The pipelined backend cannot run in lockstep — one of its steps is
/// a clock cycle, it retires instructions stages later, and it does
/// not maintain an architectural PC between steps — so passing it on
/// either side is rejected up front ([`LockstepOutcome::Unsupported`])
/// instead of producing a spurious first-step divergence. Compare the
/// pipeline at halt, as [`check_program`] does.
pub fn lockstep<A, B>(a: &mut A, b: &mut B, max_steps: u64) -> LockstepOutcome
where
    A: Core + ?Sized,
    B: Core + ?Sized,
{
    if a.backend() == Backend::Pipelined || b.backend() == Backend::Pipelined {
        return LockstepOutcome::Unsupported(
            "the pipelined backend steps by clock cycle and exposes architectural state \
             only at retirement; run it to halt and compare final states instead"
                .into(),
        );
    }
    let (an, bn) = (a.backend().name(), b.backend().name());
    for _ in 0..=max_steps {
        let ha = match a.step() {
            Ok(h) => h,
            Err(e) => return LockstepOutcome::Diverged(format!("{an} core faulted: {e}")),
        };
        let hb = match b.step() {
            Ok(h) => h,
            Err(e) => return LockstepOutcome::Diverged(format!("{bn} core faulted: {e}")),
        };
        if ha != hb {
            return LockstepOutcome::Diverged(format!(
                "halt disagreement after {} instructions: {an} {ha:?}, {bn} {hb:?}",
                a.retired()
            ));
        }
        if let Some(d) = step_difference(a.state(), b.state(), an, bn) {
            return LockstepOutcome::Diverged(format!("after {} instructions: {d}", a.retired()));
        }
        if let Some(halt) = ha {
            // Memory is compared once at halt; registers were compared
            // every step.
            if a.state().tdm.size() != b.state().tdm.size() {
                return LockstepOutcome::Diverged(format!(
                    "TDM sizes {} ({an}) vs {} ({bn})",
                    a.state().tdm.size(),
                    b.state().tdm.size()
                ));
            }
            for (addr, (x, y)) in a.state().tdm.iter().zip(b.state().tdm.iter()).enumerate() {
                if x != y {
                    return LockstepOutcome::Diverged(format!(
                        "TDM[{addr}] = {} ({an}) vs {} ({bn}) at halt",
                        x.to_i64(),
                        y.to_i64()
                    ));
                }
            }
            if a.retired() != b.retired() {
                return LockstepOutcome::Diverged(format!(
                    "instruction counts differ: {} vs {}",
                    a.retired(),
                    b.retired()
                ));
            }
            return LockstepOutcome::Agreed(halt);
        }
    }
    LockstepOutcome::BudgetExhausted
}

/// The first per-step difference between two architectural states:
/// PC first, then the nine registers.
fn step_difference(a: &CoreState, b: &CoreState, an: &str, bn: &str) -> Option<String> {
    if a.pc != b.pc {
        return Some(format!("pc {} ({an}) vs {} ({bn})", a.pc, b.pc));
    }
    for r in ALL_REGS {
        let x = a.reg(r);
        let y = b.reg(r);
        if x != y {
            return Some(format!(
                "{r} = {x} ({}) {an} vs {y} ({}) {bn}",
                x.to_i64(),
                y.to_i64()
            ));
        }
    }
    None
}

/// Runs every program-level oracle on `program`; see
/// [`check_program_filtered`] for running a single oracle.
pub fn check_program(program: &Program, step_budget: u64) -> (OracleStats, Option<Divergence>) {
    check_program_filtered(program, step_budget, None)
}

/// Runs the program-level oracles on `program`, restricted to `only`
/// when set (the `--oracle` triage filter; the pipelined oracles still
/// execute the functional simulator once as their comparison baseline).
///
/// Returns the first divergence found (checking stops there — the
/// minimizer will re-run the same check on reduced programs) plus the
/// work counters.
///
/// `step_budget` bounds the functional/reference runs; the pipelined
/// runs get `16×` that in cycles (a generated program's CPI is far
/// below that — exhausting the budget is itself a divergence).
pub fn check_program_filtered(
    program: &Program,
    step_budget: u64,
    only: Option<Oracle>,
) -> (OracleStats, Option<Divergence>) {
    let mut stats = OracleStats::default();
    let enabled = |o: Oracle| only.is_none() || only == Some(o);

    if enabled(Oracle::ToolchainRoundtrip) {
        if let Some(d) = roundtrip_oracle(program, &mut stats) {
            return (stats, Some(d));
        }
    }

    let run_fwd = enabled(Oracle::PipelinedForwarding);
    let run_nofwd = enabled(Oracle::PipelinedNoForwarding);
    let run_lockstep = enabled(Oracle::FunctionalVsReference);
    let run_threaded = enabled(Oracle::FunctionalVsThreaded);
    let run_energy = enabled(Oracle::Energy);
    let run_slice_migrate = enabled(Oracle::SliceMigrate);
    if !(run_lockstep || run_fwd || run_nofwd || run_threaded || run_energy || run_slice_migrate) {
        return (stats, None);
    }

    let image = PredecodedProgram::new(program);
    let image_hash = image.content_hash();
    let builder = SimBuilder::new(&image).tdm_words(ORACLE_TDM_WORDS);

    // The threaded, energy and slice-migrate oracles are self-contained
    // (each runs its own set of simulators), so a filter selecting only
    // them skips everything else.
    if !(run_lockstep || run_fwd || run_nofwd) {
        if run_threaded {
            if let Some(d) = threaded_oracle(&builder, step_budget, &mut stats) {
                return (stats, Some(d));
            }
        }
        if run_energy {
            if let Some(d) = energy_oracle(&builder, step_budget, &mut stats) {
                return (stats, Some(d));
            }
        }
        if run_slice_migrate {
            if let Some(d) = slice_migrate_oracle(&builder, image_hash, step_budget, &mut stats) {
                return (stats, Some(d));
            }
        }
        return (stats, None);
    }

    // --- Functional vs per-trit reference, in lockstep ---------------
    // (When filtered to a pipelined oracle, the functional simulator
    // still runs — alone — as that oracle's baseline.)
    let mut func = builder.build_functional();
    let func_halt = if run_lockstep {
        let mut reference = builder.build_reference();
        let outcome = lockstep(&mut func, &mut reference, step_budget);
        stats.functional_instructions = func.instructions();
        match outcome {
            LockstepOutcome::Diverged(detail) => {
                return (
                    stats,
                    Some(Divergence {
                        oracle: Oracle::FunctionalVsReference,
                        detail,
                    }),
                );
            }
            LockstepOutcome::BudgetExhausted => {
                return (
                    stats,
                    Some(Divergence {
                        oracle: Oracle::FunctionalVsReference,
                        detail: format!(
                            "program {} {step_budget} steps",
                            Divergence::BUDGET_MARKER
                        ),
                    }),
                );
            }
            LockstepOutcome::Unsupported(why) => {
                unreachable!("architectural backends rejected by lockstep: {why}")
            }
            LockstepOutcome::Agreed(halt) => halt,
        }
    } else {
        let baseline_oracle = if run_fwd {
            Oracle::PipelinedForwarding
        } else {
            Oracle::PipelinedNoForwarding
        };
        match func.run(step_budget) {
            Ok(result) => {
                stats.functional_instructions = func.instructions();
                result.halt
            }
            Err(e) => {
                stats.functional_instructions = func.instructions();
                let detail = if matches!(e, art9_sim::SimError::Timeout { .. }) {
                    format!("program {} {step_budget} steps", Divergence::BUDGET_MARKER)
                } else {
                    format!("functional baseline faulted: {e}")
                };
                return (
                    stats,
                    Some(Divergence {
                        oracle: baseline_oracle,
                        detail,
                    }),
                );
            }
        }
    };

    // --- Functional vs direct-threaded, in campaign order ------------
    if run_threaded {
        if let Some(d) = threaded_oracle(&builder, step_budget, &mut stats) {
            return (stats, Some(d));
        }
    }

    // --- Differential energy accounting ------------------------------
    if run_energy {
        if let Some(d) = energy_oracle(&builder, step_budget, &mut stats) {
            return (stats, Some(d));
        }
    }

    // --- Budget-sliced, migrated execution vs straight-line ----------
    if run_slice_migrate {
        if let Some(d) = slice_migrate_oracle(&builder, image_hash, step_budget, &mut stats) {
            return (stats, Some(d));
        }
    }

    // --- Pipelined (both forwarding settings) vs functional ----------
    for (oracle, forwarding) in [
        (Oracle::PipelinedForwarding, true),
        (Oracle::PipelinedNoForwarding, false),
    ] {
        if !enabled(oracle) {
            continue;
        }
        let mut pipe = builder.clone().forwarding(forwarding).build_pipelined();
        let cycle_budget = step_budget.saturating_mul(16).max(1024);
        let halt = loop {
            if pipe.stats().cycles > cycle_budget {
                break None;
            }
            match pipe.cycle() {
                Ok(Some(h)) => break Some(h),
                Ok(None) => {}
                Err(e) => {
                    stats.pipelined_cycles += pipe.stats().cycles;
                    return (
                        stats,
                        Some(Divergence {
                            oracle,
                            detail: format!("pipelined simulator faulted: {e}"),
                        }),
                    );
                }
            }
        };
        stats.pipelined_cycles += pipe.stats().cycles;
        let Some(halt) = halt else {
            return (
                stats,
                Some(Divergence {
                    oracle,
                    detail: format!(
                        "pipeline {} {cycle_budget} cycles",
                        Divergence::BUDGET_MARKER
                    ),
                }),
            );
        };
        if halt != func_halt {
            return (
                stats,
                Some(Divergence {
                    oracle,
                    detail: format!("halt reason {halt:?} vs functional {func_halt:?}"),
                }),
            );
        }
        if pipe.stats().instructions != func.instructions() {
            return (
                stats,
                Some(Divergence {
                    oracle,
                    detail: format!(
                        "retired {} instructions vs functional {}",
                        pipe.stats().instructions,
                        func.instructions()
                    ),
                }),
            );
        }
        if let Some(d) = func.state().first_difference(pipe.state()) {
            return (stats, Some(Divergence { oracle, detail: d }));
        }
    }

    (stats, None)
}

/// The functional-vs-threaded oracle: one per-instruction [`lockstep`]
/// run (exercising the threaded backend's precise stepping path), then
/// a fresh threaded core free-running to halt through the fused
/// superblock dispatch path, compared against the functional final
/// state, retirement count and instruction mix. Fusion must be
/// architecturally invisible — both runs land on the same point.
fn threaded_oracle(
    builder: &SimBuilder,
    step_budget: u64,
    stats: &mut OracleStats,
) -> Option<Divergence> {
    let fail = |detail: String| {
        Some(Divergence {
            oracle: Oracle::FunctionalVsThreaded,
            detail,
        })
    };
    let mut func = builder.build_functional();
    let mut threaded = builder.build_threaded();
    let halt = match lockstep(&mut func, &mut threaded, step_budget) {
        LockstepOutcome::Diverged(detail) => return fail(detail),
        LockstepOutcome::BudgetExhausted => {
            return fail(format!(
                "program {} {step_budget} steps",
                Divergence::BUDGET_MARKER
            ));
        }
        LockstepOutcome::Unsupported(why) => {
            unreachable!("architectural backends rejected by lockstep: {why}")
        }
        LockstepOutcome::Agreed(halt) => halt,
    };
    stats.threaded_instructions += threaded.retired();

    // Same program, fresh core, free-running this time: `run_for`
    // dispatches whole fused superblocks instead of single ops, so the
    // hot path gets differential coverage too. (The lockstep run above
    // halted within the budget; +2 covers the zero-retire halt step.)
    let mut hot = builder.build_threaded();
    match hot.run_for(Budget::Steps(step_budget.saturating_add(2))) {
        Ok(summary) if summary.halt == Some(halt) => {}
        Ok(summary) => {
            return fail(format!(
                "fused run halted {:?} vs {halt:?} when stepped",
                summary.halt
            ));
        }
        Err(e) => return fail(format!("fused run faulted: {e}")),
    }
    stats.threaded_instructions += hot.retired();
    if hot.retired() != func.retired() {
        return fail(format!(
            "fused run retired {} instructions vs {} stepped",
            hot.retired(),
            func.retired()
        ));
    }
    if hot.instruction_mix() != func.instruction_mix() {
        return fail(format!(
            "fused run's instruction mix {:?} differs from the functional mix {:?}",
            hot.instruction_mix(),
            func.instruction_mix()
        ));
    }
    if let Some(d) = func.state().first_difference(hot.state()) {
        return fail(format!("fused run final state: {d}"));
    }
    None
}

/// The differential energy oracle: the same program runs on the
/// functional simulator with an [`EnergyAccounting`] observer using
/// the packed `flips_from` kernel, and on the per-trit reference
/// simulator with an observer using the tritwise flip reference
/// ([`arith::flips_tritwise`]). Both the flip *counting* and the
/// write-back event stream feeding it are thereby cross-checked — a
/// backend that mis-reports a write-back value, or a packed XOR that
/// miscounts flips, shows up as a per-opcode counter mismatch.
fn energy_oracle(
    builder: &SimBuilder,
    step_budget: u64,
    stats: &mut OracleStats,
) -> Option<Divergence> {
    let fail = |detail: String| {
        Some(Divergence {
            oracle: Oracle::Energy,
            detail,
        })
    };
    let packed = Arc::new(Mutex::new(EnergyAccounting::new()));
    let tritwise = Arc::new(Mutex::new(EnergyAccounting::with_flip_fn(|next, prev| {
        arith::flips_tritwise(next, prev)
    })));
    let mut func = builder.clone().observer(packed.clone()).build_functional();
    let mut reference = builder.clone().observer(tritwise.clone()).build_reference();

    // The energy comparison is meaningful only over identical
    // executions; architectural divergence is the functional-vs-
    // reference oracle's finding, but it would cascade here, so report
    // it under this oracle too rather than comparing garbage.
    let run = |core: &mut dyn Core, side: &str| match core.run_for(Budget::Steps(step_budget)) {
        Ok(summary) => match summary.halt {
            Some(h) => Ok(h),
            None => Err(fail(format!(
                "{side} run {} {step_budget} steps",
                Divergence::BUDGET_MARKER
            ))),
        },
        Err(e) => Err(fail(format!("{side} run faulted: {e}"))),
    };
    let halt_f = match run(&mut func, "functional") {
        Ok(h) => h,
        Err(d) => return d,
    };
    let halt_r = match run(&mut reference, "reference") {
        Ok(h) => h,
        Err(d) => return d,
    };
    if halt_f != halt_r {
        return fail(format!(
            "halt reason {halt_f:?} (functional) vs {halt_r:?} (reference)"
        ));
    }

    let packed = packed.lock().expect("observer lock");
    let tritwise = tritwise.lock().expect("observer lock");
    if let Some(d) = activity_difference(&packed, &tritwise) {
        return fail(d);
    }
    let t = packed.totals();
    stats.energy_flips += t.regfile + t.tdm + t.fetch + t.alu;
    None
}

/// The slice-migrate oracle: the service scheduler's execution model,
/// checked differentially. A straight-line functional run (with energy
/// accounting) is compared against the same program executed the way
/// the scheduler executes sessions — sliced on random
/// [`Budget::Retired`] quanta, and at ~40% of slice boundaries
/// *migrated* through an `art9-checkpoint v1` text roundtrip into the
/// next architectural backend (threaded → reference → functional), the
/// energy observer `Arc` carried across every rebuild exactly as the
/// scheduler carries a session's observers across workers. Slicing and
/// migration must be architecturally invisible: halt reason, retired
/// count, instruction mix, final state and per-opcode energy counters
/// all bit-identical.
///
/// Slice lengths and migration points derive from `seed` (the
/// program's content hash), so campaigns reproduce bit-for-bit.
fn slice_migrate_oracle(
    builder: &SimBuilder,
    seed: u64,
    step_budget: u64,
    stats: &mut OracleStats,
) -> Option<Divergence> {
    let fail = |detail: String| {
        Some(Divergence {
            oracle: Oracle::SliceMigrate,
            detail,
        })
    };

    // Straight-line baseline.
    let straight_energy = Arc::new(Mutex::new(EnergyAccounting::new()));
    let mut straight = builder
        .clone()
        .observer(straight_energy.clone())
        .build_functional();
    let halt = match straight.run_for(Budget::Steps(step_budget)) {
        Ok(summary) => match summary.halt {
            Some(h) => h,
            None => {
                return fail(format!(
                    "straight-line run {} {step_budget} steps",
                    Divergence::BUDGET_MARKER
                ));
            }
        },
        Err(e) => return fail(format!("straight-line run faulted: {e}")),
    };

    // Sliced, migrated run.
    let mut rng = FuzzRng::new(seed ^ 0x511c_e513_9a7e_0001);
    let rotation = [Backend::Threaded, Backend::Reference, Backend::Functional];
    let sliced_energy = Arc::new(Mutex::new(EnergyAccounting::new()));
    let sliced_builder = builder.clone().observer(sliced_energy.clone());
    let mut core: Box<dyn Core> = sliced_builder.clone().build();
    let mut rotation_index = 0usize;
    let (mut slices, mut migrations) = (0u64, 0u64);
    let halt_sliced = loop {
        // Every slice retires at least one instruction, so the slice
        // count bounds total work by the same budget as the baseline.
        if slices > step_budget {
            return fail(format!(
                "sliced run {} {step_budget} slices",
                Divergence::BUDGET_MARKER
            ));
        }
        slices += 1;
        let target = core.retired() + 1 + rng.below(41);
        let summary = match core.run_for(Budget::Retired(target)) {
            Ok(s) => s,
            Err(e) => {
                return fail(format!(
                    "sliced run faulted after {} instructions: {e} \
                     (straight-line run halted {halt:?})",
                    core.retired()
                ));
            }
        };
        if let Some(h) = summary.halt {
            break h;
        }
        if rng.chance(2, 5) {
            let text = core.snapshot().to_text();
            let checkpoint = match Checkpoint::from_text(&text) {
                Ok(c) => c,
                Err(e) => return fail(format!("checkpoint text did not roundtrip: {e}")),
            };
            let backend = rotation[rotation_index % rotation.len()];
            rotation_index += 1;
            let mut fresh = sliced_builder.clone().backend(backend).build();
            if let Err(e) = fresh.restore(&checkpoint) {
                return fail(format!("restore into {backend} failed: {e}"));
            }
            core = fresh;
            migrations += 1;
        }
    };
    stats.slice_migrate_slices += slices;
    stats.slice_migrate_migrations += migrations;

    if halt_sliced != halt {
        return fail(format!(
            "halt reason {halt_sliced:?} (sliced) vs {halt:?} (straight-line)"
        ));
    }
    if core.retired() != straight.instructions() {
        return fail(format!(
            "retired {} instructions (sliced) vs {} (straight-line)",
            core.retired(),
            straight.instructions()
        ));
    }
    if core.instruction_mix() != straight.instruction_mix() {
        return fail(format!(
            "instruction mix {:?} (sliced) vs {:?} (straight-line)",
            core.instruction_mix(),
            straight.instruction_mix()
        ));
    }
    if let Some(d) = straight.state().first_difference(core.state()) {
        return fail(format!("final state: {d}"));
    }
    let straight_acc = straight_energy.lock().expect("observer lock");
    let sliced_acc = sliced_energy.lock().expect("observer lock");
    if let Some(d) = activity_difference(&straight_acc, &sliced_acc) {
        return fail(format!(
            "energy accounting diverged across slicing/migration: {d}"
        ));
    }
    None
}

/// The first per-opcode, per-structure difference between two energy
/// accountings, named (`None` when bit-identical). The first operand
/// is labelled `packed`, the second `tritwise` (the energy oracle's
/// sides; for other callers read them as baseline vs candidate).
fn activity_difference(packed: &EnergyAccounting, tritwise: &EnergyAccounting) -> Option<String> {
    for (opcode, (p, t)) in packed
        .per_opcode()
        .iter()
        .zip(tritwise.per_opcode())
        .enumerate()
    {
        if p == t {
            continue;
        }
        let mnemonic = Instruction::MNEMONICS[opcode];
        let structures = [
            ("retired", p.retired, t.retired),
            ("regfile", p.regfile, t.regfile),
            ("tdm", p.tdm, t.tdm),
            ("fetch", p.fetch, t.fetch),
            ("alu", p.alu, t.alu),
        ];
        for (name, a, b) in structures {
            if a != b {
                return Some(format!(
                    "{mnemonic}: {name} flips {a} (packed) vs {b} (tritwise)"
                ));
            }
        }
        unreachable!("unequal OpcodeActivity with equal fields");
    }
    None
}

/// The encode → decode → disassemble → reassemble oracle.
fn roundtrip_oracle(program: &Program, stats: &mut OracleStats) -> Option<Divergence> {
    for (pc, instr) in program.text().iter().enumerate() {
        let word = encode(instr);
        stats.roundtrip_checks += 1;
        match decode(word) {
            Ok(back) if back == *instr => {}
            Ok(back) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!("pc {pc}: {instr} encoded to {word}, decoded as {back}"),
                });
            }
            Err(e) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!(
                        "pc {pc}: {instr} encoded to {word}, which failed to decode: {e}"
                    ),
                });
            }
        }
        let text = match disassemble_word(word) {
            Ok(t) => t,
            Err(e) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!("pc {pc}: {instr} failed to disassemble: {e}"),
                });
            }
        };
        match assemble(&text) {
            Ok(p) if p.text() == [*instr] => {}
            Ok(p) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!(
                        "pc {pc}: {instr} disassembled to {text:?}, reassembled as {:?}",
                        p.text()
                    ),
                });
            }
            Err(e) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!("pc {pc}: listing {text:?} failed to reassemble: {e}"),
                });
            }
        }
    }
    None
}

/// Cross-checks the packed bitplane kernels against the per-trit
/// reference algorithms on `pairs` random word pairs (plus a fixed set
/// of adversarial carry-chain/sign-boundary values every time).
pub fn check_arith(rng: &mut FuzzRng, pairs: usize, stats: &mut OracleStats) -> Option<Divergence> {
    let fail = |detail: String| {
        Some(Divergence {
            oracle: Oracle::Arithmetic,
            detail,
        })
    };

    // Adversarial corners: saturated words (longest carry chains),
    // zero, ±1, and the ±3^k sign boundaries.
    let mut specials = vec![Word9::ZERO, Word9::MAX, Word9::MIN];
    for k in 0..9 {
        let p = ternary::pow3(k);
        for v in [p, -p, (p - 1) / 2, -(p - 1) / 2] {
            specials.push(Word9::from_i64(v).expect("3^k fits"));
        }
    }

    let mut words = specials;
    for _ in 0..pairs {
        words.push(random_word(rng));
    }

    for i in 0..words.len() {
        // Pair each word with a pseudo-random partner (and itself, for
        // the doubling/negation identities).
        let a = words[i];
        let b = words[(i * 7 + 13) % words.len()];
        stats.arith_checks += 1;

        let (packed_sum, packed_carry) = a.carrying_add(b);
        let (ref_sum, ref_carry) = arith::add_tritwise(a, b);
        if (packed_sum, packed_carry) != (ref_sum, ref_carry) {
            return fail(format!(
                "add: {} + {} = {} carry {packed_carry} (packed) vs {} carry {ref_carry} (tritwise)",
                a.to_i64(),
                b.to_i64(),
                packed_sum.to_i64(),
                ref_sum.to_i64()
            ));
        }

        let packed_mul = a.wrapping_mul(b);
        let ref_mul = arith::mul_tritwise(a, b);
        if packed_mul != ref_mul {
            return fail(format!(
                "mul: {} * {} = {} (packed) vs {} (tritwise)",
                a.to_i64(),
                b.to_i64(),
                packed_mul.to_i64(),
                ref_mul.to_i64()
            ));
        }

        if !b.is_zero() {
            let packed = a.div_rem(b).expect("nonzero divisor");
            let reference = arith::div_rem_tritwise(a, b).expect("nonzero divisor");
            if packed != reference {
                return fail(format!(
                    "div: {} / {} = ({}, {}) (packed) vs ({}, {}) (tritwise)",
                    a.to_i64(),
                    b.to_i64(),
                    packed.0.to_i64(),
                    packed.1.to_i64(),
                    reference.0.to_i64(),
                    reference.1.to_i64()
                ));
            }
        }

        let packed_neg = a.negate();
        let ref_neg = arith::negate_tritwise(a);
        if packed_neg != ref_neg {
            return fail(format!(
                "negate: -({}) = {} (packed) vs {} (tritwise)",
                a.to_i64(),
                packed_neg.to_i64(),
                ref_neg.to_i64()
            ));
        }

        // Bitplane pack/unpack roundtrip.
        let (pos, neg) = a.bitplanes();
        match Word9::from_bitplanes(pos, neg) {
            Ok(back) if back == a => {}
            other => {
                return fail(format!(
                    "bitplane roundtrip of {} produced {other:?}",
                    a.to_i64()
                ));
            }
        }
    }
    None
}

/// Cross-checks the bitplane-SIMD lane subsystem ([`Word9xN`]) against
/// the per-trit lanewise references in `ternary::arith` on `sets`
/// random lane configurations.
///
/// Adversarial structure every set draws from: lane counts straddling
/// the 6-lanes-per-u64 word boundary (1, 5, 6, 7, 12, 13), lane values
/// from the ±3^k sign boundaries and the saturated words (longest
/// carry chains), all-zero weight vectors (the MAC identity) and
/// mixed-sign weights. Checked per set: pack/unpack roundtrip, splat,
/// lane-parallel add/sub/negate, the three trit-logic ops, compare,
/// ternary-weight MAC (both the mask path and the fused splat path)
/// and the horizontal reduce.
pub fn check_simd(rng: &mut FuzzRng, sets: usize, stats: &mut OracleStats) -> Option<Divergence> {
    let fail = |detail: String| {
        Some(Divergence {
            oracle: Oracle::Simd,
            detail,
        })
    };
    let fmt = |v: &[Word9]| {
        v.iter()
            .map(|w| w.to_i64().to_string())
            .collect::<Vec<_>>()
            .join(",")
    };

    // The same corner pool as the arithmetic oracle: saturated words,
    // zero, and the ±3^k sign boundaries.
    let mut specials = vec![Word9::ZERO, Word9::MAX, Word9::MIN];
    for k in 0..9 {
        let p = ternary::pow3(k);
        for v in [p, -p, (p - 1) / 2, -(p - 1) / 2] {
            specials.push(Word9::from_i64(v).expect("3^k fits"));
        }
    }
    // Lane counts hugging the 6-lanes-per-u64 word boundary.
    const BOUNDARY_LANES: [usize; 6] = [1, 5, 6, 7, 12, 13];

    for _ in 0..sets {
        let lanes = if rng.chance(1, 2) {
            BOUNDARY_LANES[rng.index(BOUNDARY_LANES.len())]
        } else {
            1 + rng.below(16) as usize
        };
        let draw = |rng: &mut FuzzRng| -> Vec<Word9> {
            (0..lanes)
                .map(|_| {
                    if rng.chance(1, 3) {
                        specials[rng.index(specials.len())]
                    } else {
                        random_word(rng)
                    }
                })
                .collect()
        };
        let a = draw(rng);
        let b = draw(rng);
        // One set in five exercises the all-zero weight vector (the MAC
        // identity); the rest mix all three signs.
        let weights: Vec<Trit> = if rng.chance(1, 5) {
            vec![Trit::Z; lanes]
        } else {
            (0..lanes)
                .map(|_| match rng.below(3) {
                    0 => Trit::N,
                    1 => Trit::Z,
                    _ => Trit::P,
                })
                .collect()
        };
        let va = Word9xN::from_words(&a);
        let vb = Word9xN::from_words(&b);

        let check = |name: &str, packed: &[Word9], reference: &[Word9]| {
            if packed == reference {
                return None;
            }
            fail(format!(
                "{name} over {lanes} lanes: [{}] (packed) vs [{}] (lanewise) \
                 for a=[{}] b=[{}]",
                fmt(packed),
                fmt(reference),
                fmt(&a),
                fmt(&b)
            ))
        };

        if let Some(d) = check("pack/unpack", &va.to_words(), &a) {
            return Some(d);
        }
        if let Some(d) = check(
            "add",
            &va.wrapping_add(&vb).to_words(),
            &arith::add_lanewise(&a, &b),
        ) {
            return Some(d);
        }
        if let Some(d) = check(
            "sub",
            &va.wrapping_sub(&vb).to_words(),
            &arith::add_lanewise(&a, &arith::negate_lanewise(&b)),
        ) {
            return Some(d);
        }
        if let Some(d) = check(
            "negate",
            &va.negate().to_words(),
            &arith::negate_lanewise(&a),
        ) {
            return Some(d);
        }
        for (name, packed, f) in [
            ("and", va.and(&vb), Trit::and as fn(Trit, Trit) -> Trit),
            ("or", va.or(&vb), Trit::or),
            ("xor", va.xor(&vb), Trit::xor),
        ] {
            if let Some(d) = check(name, &packed.to_words(), &arith::logic_lanewise(&a, &b, f)) {
                return Some(d);
            }
        }

        let verdicts = va.compare(&vb).lane_lsts();
        let reference = arith::compare_lanewise(&a, &b);
        if verdicts != reference {
            return fail(format!(
                "compare over {lanes} lanes: {verdicts:?} (packed) vs {reference:?} \
                 (lanewise) for a=[{}] b=[{}]",
                fmt(&a),
                fmt(&b)
            ));
        }

        let masks = LaneWeights::new(&weights);
        let mac_ref = arith::mac_lanewise(&a, &b, &weights);
        if let Some(d) = check("mac", &va.mac(&vb, &masks).to_words(), &mac_ref) {
            return Some(d);
        }
        // The fused broadcast path: every lane accumulates the same x.
        let x = b[0];
        let mut splat_acc = va.clone();
        splat_acc.mac_splat(x, &masks);
        let splat_ref = arith::mac_lanewise(&a, &vec![x; lanes], &weights);
        if let Some(d) = check("mac_splat", &splat_acc.to_words(), &splat_ref) {
            return Some(d);
        }

        let reduced = va.reduce_add();
        let reduce_ref = arith::reduce_add_lanewise(&a);
        if reduced != reduce_ref {
            return fail(format!(
                "reduce over {lanes} lanes: {} (packed) vs {} (lanewise) for a=[{}]",
                reduced.to_i64(),
                reduce_ref.to_i64(),
                fmt(&a)
            ));
        }

        let splat = Word9xN::splat(a[0], lanes);
        if splat.to_words() != vec![a[0]; lanes] {
            return fail(format!(
                "splat of {} over {lanes} lanes did not replicate: [{}]",
                a[0].to_i64(),
                fmt(&splat.to_words())
            ));
        }

        // The word-major carry-save matvec kernel against a chain of
        // per-trit lanewise MACs: a random short column count so pass
        // shapes (3-, 4-, 2- and 1-word tails) all occur across sets.
        let cols = 1 + rng.below(6) as usize;
        let cvals: Vec<Word9> = (0..cols).map(|_| random_word(rng)).collect();
        let cweights: Vec<Vec<Trit>> = (0..cols)
            .map(|_| {
                (0..lanes)
                    .map(|_| match rng.below(3) {
                        0 => Trit::N,
                        1 => Trit::Z,
                        _ => Trit::P,
                    })
                    .collect()
            })
            .collect();
        let packed = PackedWeights::from_columns(
            &cweights
                .iter()
                .map(|w| LaneWeights::new(w))
                .collect::<Vec<_>>(),
        );
        let got = simd::matvec(&cvals, &packed).to_words();
        let mut want = vec![Word9::ZERO; lanes];
        for (xc, wc) in cvals.iter().zip(&cweights) {
            want = arith::mac_lanewise(&want, &vec![*xc; lanes], wc);
        }
        if let Some(d) = check("matvec", &got, &want) {
            return Some(d);
        }

        // Thirteen comparisons per set: pack/unpack, add, sub, negate,
        // and/or/xor, compare, mac, mac_splat, reduce, splat, matvec.
        stats.simd_checks += 13;
    }
    None
}

/// Cross-checks the wide-width arithmetic subsystem on `sets` random
/// operand sets: single-plane `Trits<40>`/`Trits<63>` words (the band
/// the pre-fix constants made uninstantiable), the multi-plane
/// `Word27`/`Word81` words, and `TernaryReal` tapered-precision
/// add/mul. Every packed kernel is pinned against its trit-serial (or
/// exact-integer) reference in `ternary::arith`.
///
/// Adversarial structure every set draws from: the ±3^k carry corners
/// up to 3^80 and the `i128` extremes, plus operands shifted past the
/// `i128` range where only the 81-trit word (and its per-trit oracle)
/// can represent the values at all.
pub fn check_wide(rng: &mut FuzzRng, sets: usize, stats: &mut OracleStats) -> Option<Divergence> {
    use ternary::{TernaryReal, Trits, WideTrits, Word27, Word81};

    let fail = |detail: String| {
        Some(Divergence {
            oracle: Oracle::Wide,
            detail,
        })
    };

    // Corner pool: zero/±1, the i128 extremes and the ±3^k sign
    // boundaries (and neighbours) across the whole wide range.
    let mut corners = vec![0i128, 1, -1, i128::MAX, i128::MIN];
    for k in (4..=80usize).step_by(4) {
        let p = ternary::pow3_i128(k);
        corners.extend([p, -p, p - 1, -p + 1, p + 1, -p - 1]);
    }
    let draw = |rng: &mut FuzzRng| -> i128 {
        if rng.chance(1, 3) {
            corners[rng.index(corners.len())]
        } else {
            (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as i128
        }
    };

    for _ in 0..sets {
        let (a, b) = (draw(rng), draw(rng));

        // Single-plane wide widths: packed vs trit-serial references.
        macro_rules! check_trits {
            ($n:literal) => {{
                let wa = Trits::<$n>::from_i128_wrapping(a);
                let wb = Trits::<$n>::from_i128_wrapping(b);
                if Trits::<$n>::from_i128_wrapping(wa.to_i128()) != wa {
                    return fail(format!("Trits<{}>: {} does not roundtrip via i128", $n, wa));
                }
                if wa.carrying_add(wb) != arith::add_tritwise(wa, wb) {
                    return fail(format!("Trits<{}> add: {} + {} diverged", $n, wa, wb));
                }
                if wa.wrapping_mul(wb) != arith::mul_tritwise(wa, wb) {
                    return fail(format!("Trits<{}> mul: {} * {} diverged", $n, wa, wb));
                }
                if wa.negate() != arith::negate_tritwise(wa) {
                    return fail(format!("Trits<{}> negate of {} diverged", $n, wa));
                }
                if wa.flips_from(&wb) != arith::flips_tritwise(wa, wb) {
                    return fail(format!("Trits<{}> flips: {} vs {} diverged", $n, wa, wb));
                }
                if !wb.is_zero() && wa.div_rem(wb).ok() != arith::div_rem_tritwise(wa, wb).ok() {
                    return fail(format!("Trits<{}> div: {} / {} diverged", $n, wa, wb));
                }
                stats.wide_checks += 6;
            }};
        }
        check_trits!(40);
        check_trits!(63);

        // Multi-plane words, including the beyond-i128 region at 81
        // trits (reached by shifting left past the i128 ceiling).
        fn check_planes<const N: usize, const W: usize>(
            wa: WideTrits<N, W>,
            wb: WideTrits<N, W>,
        ) -> Option<String> {
            if wa.carrying_add(wb) != arith::wide_add_tritwise(wa, wb) {
                return Some(format!("WideTrits<{N},{W}> add: {wa} + {wb} diverged"));
            }
            if wa.wrapping_mul(wb) != arith::wide_mul_tritwise(wa, wb) {
                return Some(format!("WideTrits<{N},{W}> mul: {wa} * {wb} diverged"));
            }
            if wa.negate() != arith::wide_negate_tritwise(wa) {
                return Some(format!("WideTrits<{N},{W}> negate of {wa} diverged"));
            }
            if wa.cmp(&wb) != arith::wide_compare_tritwise(wa, wb) {
                return Some(format!("WideTrits<{N},{W}> compare: {wa} vs {wb} diverged"));
            }
            if wa.flips_from(&wb) != arith::wide_flips_tritwise(wa, wb) {
                return Some(format!("WideTrits<{N},{W}> flips: {wa} vs {wb} diverged"));
            }
            let (s, c) = WideTrits::<N, W>::compress3(wa, wb, wa.negate());
            if s.wrapping_add(c) != wa.wrapping_add(wb).wrapping_add(wa.negate()) {
                return Some(format!(
                    "WideTrits<{N},{W}> compress3 over {wa}, {wb} diverged"
                ));
            }
            None
        }
        if let Some(d) = check_planes(Word27::from_i128_wrapping(a), Word27::from_i128_wrapping(b))
        {
            return fail(d);
        }
        stats.wide_checks += 6;
        let shift = rng.index(40);
        if let Some(d) = check_planes(
            Word81::from_i128_wrapping(a).shl(shift),
            Word81::from_i128_wrapping(b).shl(shift / 2),
        ) {
            return fail(d);
        }
        stats.wide_checks += 6;

        // Tapered reals: packed 55-trit-intermediate rounding vs the
        // exact-integer rounding reference.
        let ra = TernaryReal::from_scaled(a as i64 >> 16, (rng.below(121) as i32) - 60);
        let rb = TernaryReal::from_scaled(b as i64 >> 16, (rng.below(121) as i32) - 60);
        let sum = ra.add(&rb);
        if arith::real_parts(&sum) != arith::real_add_ref(&ra, &rb) {
            return fail(format!(
                "TernaryReal add: {ra} + {rb} diverged from reference"
            ));
        }
        let product = ra.mul(&rb);
        if arith::real_parts(&product) != arith::real_mul_ref(&ra, &rb) {
            return fail(format!(
                "TernaryReal mul: {ra} * {rb} diverged from reference"
            ));
        }
        if TernaryReal::from_tapered(TernaryReal::from_tapered(sum.to_tapered()).to_tapered())
            != TernaryReal::from_tapered(sum.to_tapered())
        {
            return fail(format!("TernaryReal taper of {sum} is not idempotent"));
        }
        stats.wide_checks += 3;
    }
    None
}

/// A uniformly random trit pattern (covers all 3⁹ words, not just the
/// value range of any integer conversion path).
pub fn random_word(rng: &mut FuzzRng) -> Word9 {
    let mut out = [Trit::Z; 9];
    for slot in &mut out {
        *slot = match rng.below(3) {
            0 => Trit::N,
            1 => Trit::Z,
            _ => Trit::P,
        };
    }
    Trits::from_trits(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use art9_sim::Backend;

    #[test]
    fn clean_programs_have_no_divergence() {
        let cfg = GenConfig::default();
        for i in 0..15 {
            let p = generate(&mut FuzzRng::for_iteration(5, i), &cfg);
            let (stats, divergence) = check_program(&p, crate::gen::step_budget(&cfg));
            assert!(
                divergence.is_none(),
                "iteration {i}: {}",
                divergence.unwrap()
            );
            assert!(stats.functional_instructions > 0);
            assert!(stats.threaded_instructions > 0);
            assert!(stats.pipelined_cycles > 0);
            assert!(stats.energy_flips > 0);
            assert!(stats.slice_migrate_slices > 0);
            assert!(stats.roundtrip_checks as usize >= p.text().len());
        }
    }

    #[test]
    fn threaded_oracle_covers_both_execution_paths() {
        // Filtered to functional-vs-threaded: the stepped lockstep run
        // and the fused free run both retire work; nothing else runs.
        let cfg = GenConfig::default();
        for i in 0..6 {
            let p = generate(&mut FuzzRng::for_iteration(5, i), &cfg);
            let budget = crate::gen::step_budget(&cfg);
            let (stats, d) = check_program_filtered(&p, budget, Some(Oracle::FunctionalVsThreaded));
            assert!(d.is_none(), "iteration {i}: {}", d.unwrap());
            // Stepped + fused runs retire the program twice over.
            assert!(stats.threaded_instructions > 0);
            assert_eq!(stats.threaded_instructions % 2, 0);
            assert_eq!(stats.pipelined_cycles, 0);
            assert_eq!(stats.roundtrip_checks, 0);
        }
    }

    #[test]
    fn threaded_oracle_reports_budget_exhaustion() {
        let p = art9_isa::assemble("a: NOP\nJAL t0, a\n").unwrap();
        let (_, d) = check_program_filtered(&p, 100, Some(Oracle::FunctionalVsThreaded));
        let d = d.expect("budget divergence");
        assert_eq!(d.oracle, Oracle::FunctionalVsThreaded);
        assert!(d.is_budget_exhaustion());
    }

    #[test]
    fn energy_oracle_is_clean_on_generated_programs() {
        // Filtered to the energy oracle: packed and tritwise flip
        // accounting agree bit-for-bit on random programs, and nothing
        // else runs.
        let cfg = GenConfig::default();
        for i in 0..6 {
            let p = generate(&mut FuzzRng::for_iteration(7, i), &cfg);
            let budget = crate::gen::step_budget(&cfg);
            let (stats, d) = check_program_filtered(&p, budget, Some(Oracle::Energy));
            assert!(d.is_none(), "iteration {i}: {}", d.unwrap());
            assert!(stats.energy_flips > 0, "iteration {i} counted no flips");
            assert_eq!(stats.pipelined_cycles, 0);
            assert_eq!(stats.roundtrip_checks, 0);
            assert_eq!(stats.threaded_instructions, 0);
        }
    }

    #[test]
    fn slice_migrate_oracle_is_clean_and_migrates() {
        // Filtered to slice-migrate: sliced + migrated execution lands
        // bit-identical to straight-line on generated programs, with
        // real migrations happening (long-enough programs guarantee
        // multiple slice boundaries), and nothing else runs.
        let cfg = GenConfig::default();
        let mut total_migrations = 0;
        for i in 0..6 {
            let p = generate(&mut FuzzRng::for_iteration(11, i), &cfg);
            let budget = crate::gen::step_budget(&cfg);
            let (stats, d) = check_program_filtered(&p, budget, Some(Oracle::SliceMigrate));
            assert!(d.is_none(), "iteration {i}: {}", d.unwrap());
            assert!(
                stats.slice_migrate_slices > 0,
                "iteration {i} ran no slices"
            );
            total_migrations += stats.slice_migrate_migrations;
            assert_eq!(stats.pipelined_cycles, 0);
            assert_eq!(stats.roundtrip_checks, 0);
            assert_eq!(stats.threaded_instructions, 0);
            assert_eq!(stats.energy_flips, 0);
        }
        assert!(total_migrations > 0, "no cross-backend migration exercised");
    }

    #[test]
    fn slice_migrate_oracle_reports_budget_exhaustion() {
        let p = art9_isa::assemble("a: NOP\nJAL t0, a\n").unwrap();
        let (_, d) = check_program_filtered(&p, 100, Some(Oracle::SliceMigrate));
        let d = d.expect("budget divergence");
        assert_eq!(d.oracle, Oracle::SliceMigrate);
        assert!(d.is_budget_exhaustion());
    }

    #[test]
    fn energy_oracle_reports_budget_exhaustion() {
        let p = art9_isa::assemble("a: NOP\nJAL t0, a\n").unwrap();
        let (_, d) = check_program_filtered(&p, 100, Some(Oracle::Energy));
        let d = d.expect("budget divergence");
        assert_eq!(d.oracle, Oracle::Energy);
        assert!(d.is_budget_exhaustion());
    }

    #[test]
    fn activity_difference_detects_a_planted_flip_miscount() {
        // Run the same program under a correct and a deliberately
        // off-by-one flip kernel: the comparator must name the opcode
        // and the structure, proving the detection path is live.
        fn off_by_one(next: Word9, prev: Word9) -> u32 {
            next.flips_from(&prev) + 1
        }
        let p = art9_isa::assemble("LI t3, 5\nJAL t0, 0\n").unwrap();
        let run = |flip: fn(Word9, Word9) -> u32| {
            let acc = Arc::new(Mutex::new(EnergyAccounting::with_flip_fn(flip)));
            let mut sim = SimBuilder::new(&p).observer(acc.clone()).build_functional();
            sim.run(100).unwrap();
            let snapshot = acc.lock().unwrap().clone();
            snapshot
        };
        let good = run(|next, prev| next.flips_from(&prev));
        let bad = run(off_by_one);
        assert_eq!(activity_difference(&good, &good), None);
        let d = activity_difference(&good, &bad).expect("difference detected");
        assert!(d.contains("LI") || d.contains("JAL"), "{d}");
        assert!(d.contains("packed") && d.contains("tritwise"), "{d}");
    }

    #[test]
    fn arith_oracle_is_clean_and_counts() {
        let mut rng = FuzzRng::new(9);
        let mut stats = OracleStats::default();
        let d = check_arith(&mut rng, 64, &mut stats);
        assert!(d.is_none(), "{}", d.unwrap());
        assert!(stats.arith_checks >= 64);
    }

    #[test]
    fn simd_oracle_is_clean_and_counts() {
        let mut rng = FuzzRng::new(11);
        let mut stats = OracleStats::default();
        let d = check_simd(&mut rng, 32, &mut stats);
        assert!(d.is_none(), "{}", d.unwrap());
        // Each clean set performs exactly the twelve fixed comparisons.
        assert_eq!(stats.simd_checks, 32 * 13);
    }

    #[test]
    fn wide_oracle_is_clean_and_counts() {
        let mut rng = FuzzRng::new(13);
        let mut stats = OracleStats::default();
        let d = check_wide(&mut rng, 32, &mut stats);
        assert!(d.is_none(), "{}", d.unwrap());
        // Each clean set performs exactly 27 fixed comparisons:
        // 6 per Trits width (40, 63), 6 per plane geometry (27/1,
        // 81/2), 3 for the tapered reals.
        assert_eq!(stats.wide_checks, 32 * 27);
    }

    #[test]
    fn wide_oracle_is_deterministic() {
        let run = |seed| {
            let mut stats = OracleStats::default();
            let d = check_wide(&mut FuzzRng::new(seed), 8, &mut stats);
            (stats.wide_checks, d.is_none())
        };
        assert_eq!(run(42), run(42));
        assert!(run(42).1 && run(7).1);
    }

    #[test]
    fn simd_oracle_is_deterministic() {
        let run = |seed| {
            let mut stats = OracleStats::default();
            let d = check_simd(&mut FuzzRng::new(seed), 8, &mut stats);
            (stats.simd_checks, d.is_none())
        };
        assert_eq!(run(42), run(42));
        assert!(run(42).1 && run(7).1);
    }

    #[test]
    fn lockstep_detects_a_planted_register_difference() {
        // Run the functional simulator and the reference on programs
        // that differ in exactly one immediate — a stand-in for a
        // semantic bug in either backend. The generic lockstep entry
        // point must flag the register, proving the detection path is
        // live (the clean-campaign tests alone could pass with a
        // comparator that always answers Agreed).
        let good = art9_isa::assemble("LI t3, 5\nJAL t0, 0\n").unwrap();
        let bad = art9_isa::assemble("LI t3, 6\nJAL t0, 0\n").unwrap();
        let mut func = SimBuilder::new(&good).build_functional();
        let mut reference = SimBuilder::new(&bad).build_reference();
        let LockstepOutcome::Diverged(d) = lockstep(&mut func, &mut reference, 100) else {
            panic!("difference not detected");
        };
        assert!(d.contains("t3"), "{d}");
        assert!(d.contains('5') && d.contains('6'), "{d}");
        assert!(d.contains("functional") && d.contains("reference"), "{d}");
    }

    #[test]
    fn lockstep_accepts_dyn_cores_and_agrees_on_clean_programs() {
        // The same entry point drives boxed `dyn Core`s — any two
        // backends, no special-casing.
        let p = art9_isa::assemble(
            "LI t3, 10\nloop:\nADDI t3, -1\nMV t7, t3\nCOMP t7, t0\n\
             BEQ t7, +, loop\nJAL t0, 0\n",
        )
        .unwrap();
        let builder = SimBuilder::new(&p);
        let mut a = builder.build();
        let mut b = builder.clone().backend(Backend::Reference).build();
        assert_eq!(
            lockstep(&mut *a, &mut *b, 10_000),
            LockstepOutcome::Agreed(HaltReason::JumpToSelf)
        );
    }

    #[test]
    fn lockstep_rejects_the_pipelined_backend_up_front() {
        // The pipeline steps by clock cycle and keeps no architectural
        // PC between steps; lockstepping it would always produce a
        // spurious first-step divergence, so it is refused instead.
        let p = art9_isa::assemble("LI t3, 1\nJAL t0, 0\n").unwrap();
        let builder = SimBuilder::new(&p);
        let mut func = builder.build_functional();
        let mut pipe = builder.build_pipelined();
        assert!(matches!(
            lockstep(&mut func, &mut pipe, 100),
            LockstepOutcome::Unsupported(_)
        ));
        assert_eq!(pipe.stats().cycles, 0, "no steps executed");
    }

    #[test]
    fn lockstep_reports_budget_exhaustion() {
        let p = art9_isa::assemble("a: NOP\nJAL t0, a\n").unwrap();
        let builder = SimBuilder::new(&p);
        let mut a = builder.build_functional();
        let mut b = builder.build_reference();
        assert_eq!(
            lockstep(&mut a, &mut b, 50),
            LockstepOutcome::BudgetExhausted
        );
    }

    #[test]
    fn final_state_diff_detects_planted_register_and_memory_differences() {
        use art9_isa::TReg;
        let p = art9_isa::assemble("LI t3, 1\nJAL t0, 0\n").unwrap();
        let builder = SimBuilder::new(&p);
        let mut a = builder.build_functional();
        let mut b = builder.build_functional();
        a.run(100).unwrap();
        b.run(100).unwrap();
        assert_eq!(a.state().first_difference(b.state()), None);

        // Planted register difference.
        b.state_mut()
            .set_reg(TReg::T4, Word9::from_i64(99).unwrap());
        let d = a
            .state()
            .first_difference(b.state())
            .expect("register diff");
        assert!(d.contains("t4") && d.contains("99"), "{d}");

        // Planted memory difference (register restored first).
        b.state_mut().set_reg(TReg::T4, Word9::ZERO);
        b.state_mut()
            .tdm
            .write(7, Word9::from_i64(-3).unwrap())
            .unwrap();
        let d = a.state().first_difference(b.state()).expect("memory diff");
        assert!(d.contains("TDM[7]"), "{d}");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Two-instruction infinite loop: never halts, must be flagged
        // rather than spinning.
        let p = art9_isa::assemble("a: NOP\nJAL t0, a\n").unwrap();
        let (_, d) = check_program(&p, 100);
        let d = d.expect("budget divergence");
        assert_eq!(d.oracle, Oracle::FunctionalVsReference);
        assert!(d.detail.contains("budget"));
    }

    #[test]
    fn oracle_filter_runs_only_the_selected_oracle() {
        let cfg = GenConfig::default();
        let p = generate(&mut FuzzRng::for_iteration(5, 0), &cfg);
        let budget = crate::gen::step_budget(&cfg);

        // Roundtrip only: no simulation work at all.
        let (stats, d) = check_program_filtered(&p, budget, Some(Oracle::ToolchainRoundtrip));
        assert!(d.is_none());
        assert!(stats.roundtrip_checks > 0);
        assert_eq!(stats.functional_instructions, 0);
        assert_eq!(stats.pipelined_cycles, 0);

        // One pipelined oracle: the functional baseline runs, but only
        // one pipelined configuration does.
        let (all_stats, _) = check_program(&p, budget);
        let (stats, d) = check_program_filtered(&p, budget, Some(Oracle::PipelinedForwarding));
        assert!(d.is_none());
        assert_eq!(stats.roundtrip_checks, 0);
        assert!(stats.functional_instructions > 0);
        assert!(stats.pipelined_cycles > 0);
        assert!(
            stats.pipelined_cycles < all_stats.pipelined_cycles,
            "filter must skip the other pipelined run ({} vs {})",
            stats.pipelined_cycles,
            all_stats.pipelined_cycles
        );

        // The filter still catches the filtered oracle's failures.
        let p = art9_isa::assemble("a: NOP\nJAL t0, a\n").unwrap();
        let (_, d) = check_program_filtered(&p, 100, Some(Oracle::PipelinedForwarding));
        let d = d.expect("budget divergence under filter");
        assert_eq!(d.oracle, Oracle::PipelinedForwarding);
        assert!(d.is_budget_exhaustion());
    }

    #[test]
    fn oracle_names_parse_back() {
        for o in Oracle::ALL {
            assert_eq!(o.name().parse::<Oracle>().unwrap(), o);
        }
        assert!("no-such-oracle".parse::<Oracle>().is_err());
    }
}
