//! Lockstep co-simulation oracles.
//!
//! Every generated program runs through four independent executions —
//! the functional simulator, the per-trit [`ReferenceSim`], and the
//! pipelined simulator with forwarding on and off — plus the toolchain
//! roundtrip (encode → decode → disassemble → reassemble). A fifth
//! oracle exercises the packed-vs-tritwise arithmetic layer directly
//! on random words. Any disagreement is reported as a [`Divergence`]
//! naming the oracle, the step, and the first differing piece of
//! state.
//!
//! The functional/reference pair runs **step for step** (`pc`, the
//! nine TRF registers and the instruction count are compared after
//! every instruction); the pipelined runs are compared at halt
//! (registers, TDM, halt reason, retired-instruction count) because
//! the pipeline only exposes architectural state at retirement.

use art9_isa::{assemble, decode, disassemble_word, encode, Program, ALL_REGS};
use art9_sim::{CoreState, FunctionalSim, PipelinedSim, PredecodedProgram};
use ternary::{arith, Trit, Trits, Word9};

use crate::gen::MIN_TDM_WORDS;
use crate::refsim::ReferenceSim;
use crate::rng::FuzzRng;

/// TDM size every oracle runs with: covers the generator's base window
/// and matches the default simulator configuration.
pub const ORACLE_TDM_WORDS: usize = if MIN_TDM_WORDS > 256 {
    MIN_TDM_WORDS
} else {
    256
};

/// The oracles a program runs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Functional simulator vs the per-trit reference, in lockstep.
    FunctionalVsReference,
    /// Pipelined simulator (forwarding on) vs functional, at halt.
    PipelinedForwarding,
    /// Pipelined simulator (forwarding off) vs functional, at halt.
    PipelinedNoForwarding,
    /// encode → decode → disassemble → reassemble roundtrip.
    ToolchainRoundtrip,
    /// Packed bitplane kernels vs the tritwise reference algorithms.
    Arithmetic,
}

impl Oracle {
    /// Stable display name (used in replay files and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Oracle::FunctionalVsReference => "functional-vs-reference",
            Oracle::PipelinedForwarding => "pipelined-fwd",
            Oracle::PipelinedNoForwarding => "pipelined-nofwd",
            Oracle::ToolchainRoundtrip => "toolchain-roundtrip",
            Oracle::Arithmetic => "arithmetic",
        }
    }
}

/// One observed disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The oracle that caught it.
    pub oracle: Oracle,
    /// Human-readable description of the first difference.
    pub detail: String,
}

impl Divergence {
    /// Marker phrase shared by the two budget-exhaustion reports (kept
    /// in one place so [`Divergence::is_budget_exhaustion`] cannot
    /// drift from the messages).
    pub(crate) const BUDGET_MARKER: &'static str = "exceeded the budget of";

    /// `true` when this divergence reports budget exhaustion (a
    /// non-terminating run) rather than a state disagreement. The
    /// minimizer refuses to trade one kind for the other.
    pub fn is_budget_exhaustion(&self) -> bool {
        self.detail.contains(Self::BUDGET_MARKER)
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle.name(), self.detail)
    }
}

/// Per-program oracle statistics (folded into the fuzz report).
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleStats {
    /// Instructions the functional simulator executed.
    pub functional_instructions: u64,
    /// Cycles the two pipelined runs consumed together.
    pub pipelined_cycles: u64,
    /// Individual roundtrip checks performed.
    pub roundtrip_checks: u64,
    /// Individual arithmetic cross-checks performed.
    pub arith_checks: u64,
}

impl OracleStats {
    /// Accumulates another program's counters.
    pub fn absorb(&mut self, other: &OracleStats) {
        self.functional_instructions += other.functional_instructions;
        self.pipelined_cycles += other.pipelined_cycles;
        self.roundtrip_checks += other.roundtrip_checks;
        self.arith_checks += other.arith_checks;
    }
}

/// Runs every program-level oracle on `program`.
///
/// Returns the first divergence found (checking stops there — the
/// minimizer will re-run the same check on reduced programs) plus the
/// work counters.
///
/// `step_budget` bounds the functional/reference runs; the pipelined
/// runs get `16×` that in cycles (a generated program's CPI is far
/// below that — exhausting the budget is itself a divergence).
pub fn check_program(program: &Program, step_budget: u64) -> (OracleStats, Option<Divergence>) {
    let mut stats = OracleStats::default();

    if let Some(d) = roundtrip_oracle(program, &mut stats) {
        return (stats, Some(d));
    }

    let image = PredecodedProgram::new(program);

    // --- Functional vs per-trit reference, in lockstep ---------------
    let mut func = FunctionalSim::from_predecoded(&image, ORACLE_TDM_WORDS);
    let mut reference = ReferenceSim::new(program, ORACLE_TDM_WORDS);
    let mut steps = 0u64;
    let func_halt = loop {
        if steps > step_budget {
            break None;
        }
        steps += 1;
        let f = match func.step() {
            Ok(h) => h,
            Err(e) => {
                stats.functional_instructions = func.instructions();
                return (
                    stats,
                    Some(Divergence {
                        oracle: Oracle::FunctionalVsReference,
                        detail: format!("functional simulator faulted: {e}"),
                    }),
                );
            }
        };
        let r = match reference.step() {
            Ok(h) => h,
            Err(e) => {
                stats.functional_instructions = func.instructions();
                return (
                    stats,
                    Some(Divergence {
                        oracle: Oracle::FunctionalVsReference,
                        detail: format!("reference interpreter faulted: {e}"),
                    }),
                );
            }
        };
        if f != r {
            stats.functional_instructions = func.instructions();
            return (
                stats,
                Some(Divergence {
                    oracle: Oracle::FunctionalVsReference,
                    detail: format!(
                        "halt disagreement after {} instructions: functional {f:?}, reference {r:?}",
                        func.instructions()
                    ),
                }),
            );
        }
        if let Some(d) = lockstep_difference(func.state(), &reference) {
            stats.functional_instructions = func.instructions();
            return (
                stats,
                Some(Divergence {
                    oracle: Oracle::FunctionalVsReference,
                    detail: format!("after {} instructions: {d}", func.instructions()),
                }),
            );
        }
        if f.is_some() {
            break f;
        }
    };
    stats.functional_instructions = func.instructions();
    let Some(func_halt) = func_halt else {
        return (
            stats,
            Some(Divergence {
                oracle: Oracle::FunctionalVsReference,
                detail: format!("program {} {step_budget} steps", Divergence::BUDGET_MARKER),
            }),
        );
    };

    // Final memory + count comparison (memory is compared once at halt;
    // registers were compared every step).
    let tdm_words: Vec<Word9> = func.state().tdm.iter().copied().collect();
    if let Some(addr) = first_mismatch(&tdm_words, reference.tdm()) {
        return (
            stats,
            Some(Divergence {
                oracle: Oracle::FunctionalVsReference,
                detail: format!(
                    "TDM[{addr}] = {} (functional) vs {} (reference) at halt",
                    tdm_words[addr].to_i64(),
                    reference.tdm()[addr].to_i64()
                ),
            }),
        );
    }
    if func.instructions() != reference.instructions() {
        return (
            stats,
            Some(Divergence {
                oracle: Oracle::FunctionalVsReference,
                detail: format!(
                    "instruction counts differ: {} vs {}",
                    func.instructions(),
                    reference.instructions()
                ),
            }),
        );
    }

    // --- Pipelined (both forwarding settings) vs functional ----------
    for (oracle, forwarding) in [
        (Oracle::PipelinedForwarding, true),
        (Oracle::PipelinedNoForwarding, false),
    ] {
        let mut pipe = PipelinedSim::from_predecoded(&image, ORACLE_TDM_WORDS);
        if !forwarding {
            pipe.disable_forwarding();
        }
        let cycle_budget = step_budget.saturating_mul(16).max(1024);
        let halt = loop {
            if pipe.stats().cycles > cycle_budget {
                break None;
            }
            match pipe.cycle() {
                Ok(Some(h)) => break Some(h),
                Ok(None) => {}
                Err(e) => {
                    stats.pipelined_cycles += pipe.stats().cycles;
                    return (
                        stats,
                        Some(Divergence {
                            oracle,
                            detail: format!("pipelined simulator faulted: {e}"),
                        }),
                    );
                }
            }
        };
        stats.pipelined_cycles += pipe.stats().cycles;
        let Some(halt) = halt else {
            return (
                stats,
                Some(Divergence {
                    oracle,
                    detail: format!(
                        "pipeline {} {cycle_budget} cycles",
                        Divergence::BUDGET_MARKER
                    ),
                }),
            );
        };
        if halt != func_halt {
            return (
                stats,
                Some(Divergence {
                    oracle,
                    detail: format!("halt reason {halt:?} vs functional {func_halt:?}"),
                }),
            );
        }
        if pipe.stats().instructions != func.instructions() {
            return (
                stats,
                Some(Divergence {
                    oracle,
                    detail: format!(
                        "retired {} instructions vs functional {}",
                        pipe.stats().instructions,
                        func.instructions()
                    ),
                }),
            );
        }
        if let Some(d) = func.state().first_difference(pipe.state()) {
            return (stats, Some(Divergence { oracle, detail: d }));
        }
    }

    (stats, None)
}

/// The encode → decode → disassemble → reassemble oracle.
fn roundtrip_oracle(program: &Program, stats: &mut OracleStats) -> Option<Divergence> {
    for (pc, instr) in program.text().iter().enumerate() {
        let word = encode(instr);
        stats.roundtrip_checks += 1;
        match decode(word) {
            Ok(back) if back == *instr => {}
            Ok(back) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!("pc {pc}: {instr} encoded to {word}, decoded as {back}"),
                });
            }
            Err(e) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!(
                        "pc {pc}: {instr} encoded to {word}, which failed to decode: {e}"
                    ),
                });
            }
        }
        let text = match disassemble_word(word) {
            Ok(t) => t,
            Err(e) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!("pc {pc}: {instr} failed to disassemble: {e}"),
                });
            }
        };
        match assemble(&text) {
            Ok(p) if p.text() == [*instr] => {}
            Ok(p) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!(
                        "pc {pc}: {instr} disassembled to {text:?}, reassembled as {:?}",
                        p.text()
                    ),
                });
            }
            Err(e) => {
                return Some(Divergence {
                    oracle: Oracle::ToolchainRoundtrip,
                    detail: format!("pc {pc}: listing {text:?} failed to reassemble: {e}"),
                });
            }
        }
    }
    None
}

/// Index of the first differing word, if any.
fn first_mismatch(a: &[Word9], b: &[Word9]) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).position(|(x, y)| x != y)
}

/// The first per-step difference between the functional state and the
/// reference interpreter: PC first, then the nine registers.
fn lockstep_difference(func: &CoreState, reference: &ReferenceSim) -> Option<String> {
    if func.pc != reference.pc() {
        return Some(format!(
            "pc {} (functional) vs {} (reference)",
            func.pc,
            reference.pc()
        ));
    }
    for r in ALL_REGS {
        let f = func.reg(r);
        let g = reference.reg(r);
        if f != g {
            return Some(format!(
                "{r} = {f} ({}) functional vs {g} ({}) reference",
                f.to_i64(),
                g.to_i64()
            ));
        }
    }
    None
}

/// Cross-checks the packed bitplane kernels against the per-trit
/// reference algorithms on `pairs` random word pairs (plus a fixed set
/// of adversarial carry-chain/sign-boundary values every time).
pub fn check_arith(rng: &mut FuzzRng, pairs: usize, stats: &mut OracleStats) -> Option<Divergence> {
    let fail = |detail: String| {
        Some(Divergence {
            oracle: Oracle::Arithmetic,
            detail,
        })
    };

    // Adversarial corners: saturated words (longest carry chains),
    // zero, ±1, and the ±3^k sign boundaries.
    let mut specials = vec![Word9::ZERO, Word9::MAX, Word9::MIN];
    for k in 0..9 {
        let p = ternary::pow3(k);
        for v in [p, -p, (p - 1) / 2, -(p - 1) / 2] {
            specials.push(Word9::from_i64(v).expect("3^k fits"));
        }
    }

    let mut words = specials;
    for _ in 0..pairs {
        words.push(random_word(rng));
    }

    for i in 0..words.len() {
        // Pair each word with a pseudo-random partner (and itself, for
        // the doubling/negation identities).
        let a = words[i];
        let b = words[(i * 7 + 13) % words.len()];
        stats.arith_checks += 1;

        let (packed_sum, packed_carry) = a.carrying_add(b);
        let (ref_sum, ref_carry) = arith::add_tritwise(a, b);
        if (packed_sum, packed_carry) != (ref_sum, ref_carry) {
            return fail(format!(
                "add: {} + {} = {} carry {packed_carry} (packed) vs {} carry {ref_carry} (tritwise)",
                a.to_i64(),
                b.to_i64(),
                packed_sum.to_i64(),
                ref_sum.to_i64()
            ));
        }

        let packed_mul = a.wrapping_mul(b);
        let ref_mul = arith::mul_tritwise(a, b);
        if packed_mul != ref_mul {
            return fail(format!(
                "mul: {} * {} = {} (packed) vs {} (tritwise)",
                a.to_i64(),
                b.to_i64(),
                packed_mul.to_i64(),
                ref_mul.to_i64()
            ));
        }

        if !b.is_zero() {
            let packed = a.div_rem(b).expect("nonzero divisor");
            let reference = arith::div_rem_tritwise(a, b).expect("nonzero divisor");
            if packed != reference {
                return fail(format!(
                    "div: {} / {} = ({}, {}) (packed) vs ({}, {}) (tritwise)",
                    a.to_i64(),
                    b.to_i64(),
                    packed.0.to_i64(),
                    packed.1.to_i64(),
                    reference.0.to_i64(),
                    reference.1.to_i64()
                ));
            }
        }

        let packed_neg = a.negate();
        let ref_neg = arith::negate_tritwise(a);
        if packed_neg != ref_neg {
            return fail(format!(
                "negate: -({}) = {} (packed) vs {} (tritwise)",
                a.to_i64(),
                packed_neg.to_i64(),
                ref_neg.to_i64()
            ));
        }

        // Bitplane pack/unpack roundtrip.
        let (pos, neg) = a.bitplanes();
        match Word9::from_bitplanes(pos, neg) {
            Ok(back) if back == a => {}
            other => {
                return fail(format!(
                    "bitplane roundtrip of {} produced {other:?}",
                    a.to_i64()
                ));
            }
        }
    }
    None
}

/// A uniformly random trit pattern (covers all 3⁹ words, not just the
/// value range of any integer conversion path).
pub fn random_word(rng: &mut FuzzRng) -> Word9 {
    let mut out = [Trit::Z; 9];
    for slot in &mut out {
        *slot = match rng.below(3) {
            0 => Trit::N,
            1 => Trit::Z,
            _ => Trit::P,
        };
    }
    Trits::from_trits(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn clean_programs_have_no_divergence() {
        let cfg = GenConfig::default();
        for i in 0..15 {
            let p = generate(&mut FuzzRng::for_iteration(5, i), &cfg);
            let (stats, divergence) = check_program(&p, crate::gen::step_budget(&cfg));
            assert!(
                divergence.is_none(),
                "iteration {i}: {}",
                divergence.unwrap()
            );
            assert!(stats.functional_instructions > 0);
            assert!(stats.pipelined_cycles > 0);
            assert!(stats.roundtrip_checks as usize >= p.text().len());
        }
    }

    #[test]
    fn arith_oracle_is_clean_and_counts() {
        let mut rng = FuzzRng::new(9);
        let mut stats = OracleStats::default();
        let d = check_arith(&mut rng, 64, &mut stats);
        assert!(d.is_none(), "{}", d.unwrap());
        assert!(stats.arith_checks >= 64);
    }

    #[test]
    fn lockstep_detects_a_planted_register_difference() {
        // Run the functional simulator and the reference on programs
        // that differ in exactly one immediate — a stand-in for a
        // semantic bug in either backend. The lockstep comparator must
        // flag the register, proving the detection path is live (the
        // clean-campaign tests alone could pass with a comparator that
        // always answers None).
        let good = art9_isa::assemble("LI t3, 5\nJAL t0, 0\n").unwrap();
        let bad = art9_isa::assemble("LI t3, 6\nJAL t0, 0\n").unwrap();
        let mut func = FunctionalSim::new(&good);
        let mut reference = ReferenceSim::new(&bad, ORACLE_TDM_WORDS);
        func.step().unwrap();
        reference.step().unwrap();
        let d = lockstep_difference(func.state(), &reference).expect("difference detected");
        assert!(d.contains("t3"), "{d}");
        assert!(d.contains('5') && d.contains('6'), "{d}");
    }

    #[test]
    fn final_state_diff_detects_planted_register_and_memory_differences() {
        use art9_isa::TReg;
        let p = art9_isa::assemble("LI t3, 1\nJAL t0, 0\n").unwrap();
        let mut a = FunctionalSim::new(&p);
        let mut b = FunctionalSim::new(&p);
        a.run(100).unwrap();
        b.run(100).unwrap();
        assert_eq!(a.state().first_difference(b.state()), None);

        // Planted register difference.
        b.state_mut()
            .set_reg(TReg::T4, Word9::from_i64(99).unwrap());
        let d = a
            .state()
            .first_difference(b.state())
            .expect("register diff");
        assert!(d.contains("t4") && d.contains("99"), "{d}");

        // Planted memory difference (register restored first).
        b.state_mut().set_reg(TReg::T4, Word9::ZERO);
        b.state_mut()
            .tdm
            .write(7, Word9::from_i64(-3).unwrap())
            .unwrap();
        let d = a.state().first_difference(b.state()).expect("memory diff");
        assert!(d.contains("TDM[7]"), "{d}");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Two-instruction infinite loop: never halts, must be flagged
        // rather than spinning.
        let p = art9_isa::assemble("a: NOP\nJAL t0, a\n").unwrap();
        let (_, d) = check_program(&p, 100);
        let d = d.expect("budget divergence");
        assert_eq!(d.oracle, Oracle::FunctionalVsReference);
        assert!(d.detail.contains("budget"));
    }
}
