//! Batch-driver and energy-accounting integration for the NN /
//! associative workload family: `nn-mlp` and `assoc-match` must verify
//! under every ART-9 backend, and the architectural activity counters
//! must be bit-identical between the functional and direct-threaded
//! backends (the counts are derived from the retirement stream, so any
//! divergence is a backend bug, not a measurement artifact).

use art9_sim::Backend;
use workloads::batch::{BatchRunner, ExecConfig};
use workloads::{assoc_match, nn_mlp};

const ART9_BACKENDS: [ExecConfig; 4] = [
    ExecConfig::art9(Backend::Functional),
    ExecConfig::art9_pipelined(true),
    ExecConfig::art9(Backend::Reference),
    ExecConfig::art9(Backend::Threaded),
];

#[test]
fn nn_and_assoc_verify_on_all_art9_backends() {
    let report = BatchRunner::new()
        .workload(nn_mlp(8))
        .workload(assoc_match(32))
        .configs(ART9_BACKENDS)
        .max_steps(20_000_000)
        .measure_energy(true)
        .try_run()
        .expect("every backend must verify both workloads");

    assert_eq!(report.runs.len(), 8);
    assert_eq!(report.failures(), 0);
}

#[test]
fn energy_counters_are_bit_identical_functional_vs_threaded() {
    let report = BatchRunner::new()
        .workload(nn_mlp(6))
        .workload(assoc_match(24))
        .config(ExecConfig::art9(Backend::Functional))
        .config(ExecConfig::art9(Backend::Threaded))
        .max_steps(20_000_000)
        .measure_energy(true)
        .try_run()
        .expect("functional and threaded must both verify");

    for name in ["nn-mlp", "assoc-match"] {
        let f = report
            .find(name, ExecConfig::art9(Backend::Functional))
            .unwrap();
        let t = report
            .find(name, ExecConfig::art9(Backend::Threaded))
            .unwrap();

        // Identical instruction mixes: same retirement stream, so the
        // dynamic counts must agree to the last trit flip.
        assert_eq!(f.instructions, t.instructions, "{name}: retired count");
        let fe = f.energy.as_ref().expect("functional energy measured");
        let te = t.energy.as_ref().expect("threaded energy measured");
        assert_eq!(
            fe.per_opcode(),
            te.per_opcode(),
            "{name}: per-opcode activity diverged between backends"
        );
        let totals = fe.totals();
        assert_eq!(totals.retired, f.instructions, "{name}: retired total");
        assert!(
            totals.regfile + totals.tdm + totals.fetch + totals.alu > 0,
            "{name}: expected nonzero switching activity"
        );
    }
}
