//! Table III shape check: the pipelined ART-9 beats the non-pipelined
//! PicoRV32 on every workload, with the smallest margin on GEMM (the
//! software-multiply case) — the paper's headline comparison.

use art9_compiler::translate;
use art9_sim::SimBuilder;
use rv32::{simulate_cycles, PicoRv32Model};
use workloads::paper_suite;

#[test]
fn art9_vs_picorv32_shape() {
    let mut rows = Vec::new();
    for w in paper_suite() {
        let rv = w.rv32_program().unwrap();
        let pico = simulate_cycles(&rv, &mut PicoRv32Model::new(), 200_000_000).unwrap();

        let t = translate(&rv).unwrap();
        let mut pipe = SimBuilder::new(&t.program).build_pipelined();
        let stats = pipe.run(200_000_000).unwrap();
        w.verify_art9(pipe.state()).unwrap();

        println!(
            "{:<12} ART-9 {:>9} cycles (CPI {:.2})   PicoRV32 {:>9} cycles (CPI {:.2})   ratio {:.2}",
            w.name,
            stats.cycles,
            stats.cpi(),
            pico.cycles,
            pico.cpi(),
            pico.cycles as f64 / stats.cycles as f64,
        );
        rows.push((w.name, stats.cycles, pico.cycles));
    }

    // Shape assertions (Table III): ART-9 clearly wins the three
    // multiplier-free workloads…
    let ratio = |i: usize| rows[i].2 as f64 / rows[i].1 as f64;
    for i in [0usize, 2, 3] {
        assert!(
            ratio(i) > 1.2,
            "{}: PicoRV32/ART-9 ratio {:.2} should exceed 1.2",
            rows[i].0,
            ratio(i)
        );
    }
    // …while GEMM sits at the crossover: software __mul against the
    // sequential hardware multiplier lands near parity (paper: 1.05).
    let gemm_ratio = ratio(1);
    assert!(
        (0.7..=1.4).contains(&gemm_ratio),
        "gemm ratio {gemm_ratio:.2} should sit near parity"
    );
    // GEMM is the narrowest margin of the four.
    for i in [0usize, 2, 3] {
        assert!(ratio(i) > gemm_ratio);
    }
}
