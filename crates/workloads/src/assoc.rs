//! Associative search/match workload, after the in-memory associative
//! processor line (Hout et al., arXiv:2110.09643).
//!
//! An associative processor answers "which rows match this key?" by
//! comparing the key against every memory row in parallel. The host
//! golden path here does exactly that on the bitplane-SIMD lanes: the
//! haystack lives in [`Word9xN`] lanes, the key is broadcast, and one
//! lane-parallel [`compare`](Word9xN::compare) yields every row's
//! verdict at once. The RV32/ART-9 kernel performs the same search as
//! an ordinary scan loop and is verified against the same expected
//! values at halt.

use ternary::simd::Word9xN;
use ternary::{Trit, Word9};

use crate::{lcg_values, split_seed, Generator, Workload};

/// Number of search keys every instance of the workload probes.
pub const ASSOC_KEYS: usize = 4;

/// Lane-parallel associative search: the index of the first haystack
/// entry equal to `key` and the total number of matching entries.
///
/// The haystack is packed into SIMD lanes once by the caller; each key
/// costs one broadcast, one lane-parallel compare and a scan of the
/// per-lane verdicts — the host mirror of an associative memory's
/// one-cycle parallel tag match.
pub fn assoc_search_simd(haystack: &Word9xN, key: Word9) -> (Option<usize>, usize) {
    let verdicts = haystack
        .compare(&Word9xN::splat(key, haystack.lanes()))
        .lane_lsts();
    let first = verdicts.iter().position(|t| *t == Trit::Z);
    let count = verdicts.iter().filter(|t| **t == Trit::Z).count();
    (first, count)
}

/// Scalar reference for [`assoc_search_simd`]: the plain linear scan.
pub fn assoc_search_scalar(haystack: &[Word9], key: Word9) -> (Option<usize>, usize) {
    let first = haystack.iter().position(|w| *w == key);
    let count = haystack.iter().filter(|w| **w == key).count();
    (first, count)
}

/// Associative search over an `n`-entry table: [`ASSOC_KEYS`] keys are
/// each searched for their first match index (−1 when absent) and
/// match count. Two keys are drawn from the table (guaranteed hits),
/// two from outside its value range (guaranteed misses).
///
/// # Panics
///
/// Panics if `n` is outside `1..=128` (table, keys and output must fit
/// the 256-word TDM).
pub fn assoc_match(n: usize) -> Workload {
    assoc_match_seeded(n, 53)
}

/// [`assoc_match`] with table and keys drawn from `seed`.
///
/// # Panics
///
/// As [`assoc_match`].
pub fn assoc_match_seeded(n: usize, seed: u64) -> Workload {
    assert!(
        (1..=128).contains(&n),
        "assoc-match table must fit the default TDM"
    );
    let hay = lcg_values(split_seed(seed, 0), n, -20, 20);
    let picks = lcg_values(split_seed(seed, 1), 2, 0, n as i64 - 1);
    let misses = lcg_values(split_seed(seed, 2), 2, 21, 40);
    let keys = [
        hay[picks[0] as usize],
        hay[picks[1] as usize],
        misses[0],
        misses[1],
    ];

    // Golden outputs: (first index | −1, count) per key.
    let expected: Vec<i64> = keys
        .iter()
        .flat_map(|k| {
            let first = hay.iter().position(|v| v == k).map_or(-1, |i| i as i64);
            let count = hay.iter().filter(|v| *v == k).count() as i64;
            [first, count]
        })
        .collect();

    let fmt = |v: &[i64]| v.iter().map(i64::to_string).collect::<Vec<_>>().join(", ");
    let source = format!(
        "
# associative search: first-match index and match count for {k} keys
        .data
hay:    .word {whay}
keys:   .word {wkeys}
out:    .zero {outb}
        .text
        la   a0, keys
        la   a1, out
        li   t0, {k}            # keys remaining
key_loop:
        lw   a2, 0(a0)          # key
        la   a3, hay
        li   a4, 0              # row index
        li   a5, -1             # first match
        li   a6, 0              # match count
scan:
        lw   t1, 0(a3)
        bne  t1, a2, no_match
        addi a6, a6, 1
        bgez a5, no_match       # first already recorded
        mv   a5, a4
no_match:
        addi a3, a3, 4
        addi a4, a4, 1
        li   t2, {n}
        blt  a4, t2, scan
        sw   a5, 0(a1)
        sw   a6, 4(a1)
        addi a1, a1, 8
        addi a0, a0, 4
        addi t0, t0, -1
        bgtz t0, key_loop
        ebreak
",
        k = ASSOC_KEYS,
        whay = fmt(&hay),
        wkeys = fmt(&keys),
        outb = 8 * ASSOC_KEYS,
    );

    Workload {
        generator: Some(Generator::AssocMatch { n }),
        name: "assoc-match",
        description: format!("associative search, {n}-entry table, {ASSOC_KEYS} keys"),
        source,
        output_offset: 4 * (n + ASSOC_KEYS),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_compiler::translate;
    use art9_sim::SimBuilder;
    use rv32::Machine;

    #[test]
    fn simd_search_matches_scalar_reference() {
        for seed in 0..25u64 {
            let hay: Vec<Word9> = lcg_values(seed, 37, -20, 20)
                .into_iter()
                .map(Word9::from_i64_wrapping)
                .collect();
            let packed = Word9xN::from_words(&hay);
            for probe in -25..=25 {
                let key = Word9::from_i64_wrapping(probe);
                assert_eq!(
                    assoc_search_simd(&packed, key),
                    assoc_search_scalar(&hay, key),
                    "seed {seed} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn expected_has_hits_and_misses() {
        let w = assoc_match(32);
        // Keys 0 and 1 come from the table (index >= 0, count >= 1);
        // keys 2 and 3 are outside its value range (-1, 0).
        assert!(w.expected[0] >= 0 && w.expected[1] >= 1);
        assert!(w.expected[2] >= 0 && w.expected[3] >= 1);
        assert_eq!(&w.expected[4..], &[-1, 0, -1, 0]);
    }

    #[test]
    fn assoc_match_on_both_machines() {
        let w = assoc_match(24);
        let rv = w.rv32_program().unwrap();
        let mut m = Machine::new(&rv);
        m.run(10_000_000).unwrap();
        w.verify_rv32(&m).unwrap();

        let t = translate(&rv).unwrap();
        let mut f = SimBuilder::new(&t.program).build_functional();
        f.run(10_000_000).unwrap();
        w.verify_art9(f.state()).unwrap();

        let mut p = SimBuilder::new(&t.program).build_pipelined();
        p.run(20_000_000).unwrap();
        w.verify_art9(p.state()).unwrap();
    }

    #[test]
    fn reseeding_changes_the_table() {
        let w = assoc_match(16);
        let w2 = w.with_input_seed(1234);
        assert_ne!(w.source, w2.source);
        let mut m = Machine::new(&w2.rv32_program().unwrap());
        m.run(10_000_000).unwrap();
        w2.verify_rv32(&m).unwrap();
    }
}
