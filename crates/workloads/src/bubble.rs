//! Bubble sort (paper §V-A, first column of Table III and Fig. 5).
//!
//! Sorts an `n`-word array of small integers ascending, in place, with
//! the classic early-exit-free nested loop (worst-case-shaped input:
//! reverse-sorted with duplicates sprinkled in by the LCG).

use crate::{lcg_values, Generator, Workload};

/// Builds the bubble-sort workload over `n` elements with the paper
/// suite's canonical input seed.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 48` (the array must fit the ternary TDM
/// alongside the runtime scratch area).
pub fn bubble_sort(n: usize) -> Workload {
    bubble_sort_seeded(n, 7)
}

/// [`bubble_sort`] with an explicit input seed (noise values change,
/// structure and golden reference recompute accordingly).
///
/// # Panics
///
/// As [`bubble_sort`].
pub fn bubble_sort_seeded(n: usize, seed: u64) -> Workload {
    assert!(
        (2..=48).contains(&n),
        "bubble_sort supports 2..=48 elements"
    );
    // Reverse-sorted backbone with LCG noise: adversarial but
    // deterministic.
    let noise = lcg_values(seed, n, 0, 9);
    let input: Vec<i64> = (0..n).map(|i| (n - i) as i64 * 2 + noise[i]).collect();
    let mut expected = input.clone();
    expected.sort_unstable();

    let words = input
        .iter()
        .map(i64::to_string)
        .collect::<Vec<_>>()
        .join(", ");

    let source = format!(
        "
# bubble sort, {n} elements, in place
        .data
arr:    .word {words}
        .text
        li   a1, {n}            # passes remaining
outer:
        addi a1, a1, -1
        blez a1, done
        la   a0, arr            # pointer rewinds every pass
        li   a2, 0              # i
inner:
        bge  a2, a1, outer
        lw   a3, 0(a0)
        lw   a4, 4(a0)
        ble  a3, a4, noswap
        sw   a4, 0(a0)
        sw   a3, 4(a0)
noswap:
        addi a0, a0, 4
        addi a2, a2, 1
        j    inner
done:
        ebreak
"
    );

    Workload {
        generator: Some(Generator::BubbleSort { n }),
        name: "bubble-sort",
        description: format!("in-place bubble sort of {n} words"),
        source,
        output_offset: 0,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_compiler::translate;
    use art9_sim::SimBuilder;
    use rv32::Machine;

    #[test]
    fn sorts_on_rv32() {
        let w = bubble_sort(12);
        let p = w.rv32_program().unwrap();
        let mut m = Machine::new(&p);
        m.run(1_000_000).unwrap();
        w.verify_rv32(&m).unwrap();
    }

    #[test]
    fn sorts_on_art9_functional_and_pipelined() {
        let w = bubble_sort(12);
        let t = translate(&w.rv32_program().unwrap()).unwrap();
        let mut f = SimBuilder::new(&t.program).build_functional();
        f.run(2_000_000).unwrap();
        w.verify_art9(f.state()).unwrap();

        let mut pipe = SimBuilder::new(&t.program).build_pipelined();
        let stats = pipe.run(4_000_000).unwrap();
        w.verify_art9(pipe.state()).unwrap();
        assert!(
            stats.cpi() < 2.0,
            "pipelined CPI stays near 1: {}",
            stats.cpi()
        );
    }

    #[test]
    fn expected_is_sorted_permutation() {
        let w = bubble_sort(20);
        let mut exp = w.expected.clone();
        let sorted = exp.clone();
        exp.sort_unstable();
        assert_eq!(exp, sorted, "expected vector is sorted");
        assert_eq!(w.expected.len(), 20);
    }
}
