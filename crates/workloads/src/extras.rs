//! Extension workloads beyond the paper's four benchmarks — used by
//! the wider test matrix and as additional end-to-end examples of the
//! compiling framework. Both follow the same contract (word-addressed
//! data, values within ±9841).

use crate::{lcg_values, split_seed, Generator, Workload};

/// Iterative Fibonacci: `fib(0..n)` written to the output buffer.
/// Pure register arithmetic plus stores — a control-flow-heavy,
/// memory-light contrast to the matrix workloads.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 20` (`fib(20) = 6765` still fits 9 trits).
pub fn fibonacci(n: usize) -> Workload {
    assert!((2..=20).contains(&n), "fib(n) must fit the 9-trit range");
    let mut expected = vec![0i64, 1];
    while expected.len() < n {
        let k = expected.len();
        expected.push(expected[k - 1] + expected[k - 2]);
    }
    expected.truncate(n);

    let source = format!(
        "
# iterative fibonacci, first {n} values stored to out[]
        .data
out:    .zero {bytes}
        .text
        la   a0, out
        li   a1, 0              # fib(i)
        li   a2, 1              # fib(i+1)
        li   a3, {n}            # remaining
fib_loop:
        sw   a1, 0(a0)
        add  a4, a1, a2         # next
        mv   a1, a2
        mv   a2, a4
        addi a0, a0, 4
        addi a3, a3, -1
        bgtz a3, fib_loop
        ebreak
",
        bytes = 4 * n,
    );

    Workload {
        generator: Some(Generator::Fibonacci { n }),
        name: "fibonacci",
        description: format!("iterative fibonacci, {n} terms"),
        source,
        output_offset: 0,
        expected,
    }
}

/// Dot product of two `n`-vectors — one multiply-accumulate per
/// element, the minimal workload isolating the software-`__mul` cost
/// the GEMM benchmark amortizes over loop overhead.
///
/// # Panics
///
/// Panics if `n < 1` or `n > 40` (accumulator must stay in range).
pub fn dot_product(n: usize) -> Workload {
    dot_product_streams(n, 41, 43)
}

/// [`dot_product`] with both vectors drawn from `seed` (one derived
/// stream per vector).
///
/// # Panics
///
/// As [`dot_product`].
pub fn dot_product_seeded(n: usize, seed: u64) -> Workload {
    dot_product_streams(n, split_seed(seed, 0), split_seed(seed, 1))
}

fn dot_product_streams(n: usize, seed_x: u64, seed_y: u64) -> Workload {
    assert!((1..=40).contains(&n));
    let xs = lcg_values(seed_x, n, -7, 7);
    let ys = lcg_values(seed_y, n, -7, 7);
    let dot: i64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();

    let fmt = |v: &[i64]| v.iter().map(i64::to_string).collect::<Vec<_>>().join(", ");
    let source = format!(
        "
# dot product of two {n}-vectors
        .data
xs:     .word {wx}
ys:     .word {wy}
out:    .zero 4
        .text
        la   a0, xs
        la   a1, ys
        li   a2, 0              # acc
        li   a3, {n}
dot_loop:
        lw   a4, 0(a0)
        lw   a5, 0(a1)
        mul  a4, a4, a5
        add  a2, a2, a4
        addi a0, a0, 4
        addi a1, a1, 4
        addi a3, a3, -1
        bgtz a3, dot_loop
        la   a0, out
        sw   a2, 0(a0)
        ebreak
",
        wx = fmt(&xs),
        wy = fmt(&ys),
    );

    Workload {
        generator: Some(Generator::DotProduct { n }),
        name: "dot-product",
        description: format!("{n}-element integer dot product"),
        source,
        output_offset: 8 * n,
        expected: vec![dot],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_compiler::translate;
    use art9_sim::SimBuilder;
    use rv32::Machine;

    fn check_both(w: &Workload) {
        let rv = w.rv32_program().unwrap();
        let mut m = Machine::new(&rv);
        m.run(10_000_000).unwrap();
        w.verify_rv32(&m).unwrap();

        let t = translate(&rv).unwrap();
        let mut f = SimBuilder::new(&t.program).build_functional();
        f.run(10_000_000).unwrap();
        w.verify_art9(f.state()).unwrap();

        let mut p = SimBuilder::new(&t.program).build_pipelined();
        p.run(20_000_000).unwrap();
        w.verify_art9(p.state()).unwrap();
    }

    #[test]
    fn fibonacci_on_both_machines() {
        check_both(&fibonacci(15));
    }

    #[test]
    fn fibonacci_values_are_right() {
        let w = fibonacci(10);
        assert_eq!(w.expected, vec![0, 1, 1, 2, 3, 5, 8, 13, 21, 34]);
    }

    #[test]
    fn dot_product_on_both_machines() {
        check_both(&dot_product(12));
    }

    #[test]
    fn dot_product_single_element() {
        check_both(&dot_product(1));
    }

    #[test]
    fn dot_product_links_mul() {
        let w = dot_product(4);
        let t = translate(&w.rv32_program().unwrap()).unwrap();
        assert!(t.report.art9_builtin_instructions > 0);
    }
}
