//! Parallel batch-simulation driver.
//!
//! The first step toward the ROADMAP's heavy-traffic simulation
//! service: run **many programs × many simulator configurations** in
//! parallel and fold the per-run statistics into one aggregate report.
//!
//! A batch is a cross product: every [`Workload`] is prepared once
//! (parsed, for ART-9 substrates translated and **predecoded into one
//! shared [`art9_sim::PredecodedProgram`] image**) and then executed
//! under every [`ExecConfig`] — the simulators of all ART-9 configs
//! fetch from the same `Arc`'d instruction image instead of copying or
//! re-decoding per run. Preparation and execution both fan out across
//! OS threads via `rayon`; results come back in deterministic
//! (workload-major) order regardless of scheduling.
//!
//! ```
//! use art9_sim::Backend;
//! use workloads::batch::{BatchRunner, ExecConfig};
//!
//! let report = BatchRunner::new()
//!     .workload(workloads::bubble_sort(8))
//!     .workload(workloads::dot_product(6))
//!     .config(ExecConfig::art9_pipelined(true))
//!     .config(ExecConfig::rv32_picorv32())
//!     .run();
//!
//! assert_eq!(report.runs.len(), 4);
//! assert_eq!(report.failures(), 0);
//! println!("{}", report.render());
//! ```
//!
//! Errors are captured per record, so one bad program cannot take down
//! a batch; callers that want a hard stop use [`BatchRunner::try_run`],
//! which surfaces the first failure as a typed [`WorkloadError`].

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use art9_compiler::Translation;
use art9_sim::observers::EnergyAccounting;
use art9_sim::{Backend, Budget, PipelineStats, PredecodedProgram, SimBuilder, SimError};
use rayon::prelude::*;
use rv32::{PicoRv32Model, Rv32Program, VexRiscvModel};

use crate::{VerifyError, Workload, WorkloadError};

/// Default per-run step/cycle budget (the bench helpers in
/// `art9-bench` use this same constant).
pub const DEFAULT_MAX_STEPS: u64 = 500_000_000;

/// Which simulated machine executes a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Machine {
    /// The ART-9 ternary processor (sources go through the RV32→ART-9
    /// compiling framework first).
    Art9,
    /// RV32 substrate under the PicoRV32 (non-pipelined) cycle model.
    Rv32PicoRv32,
    /// RV32 substrate under the VexRiscv (5-stage) cycle model.
    Rv32VexRiscv,
}

/// One simulator configuration a batch executes every workload under:
/// a [`Machine`] plus, for ART-9, the [`Backend`] and its forwarding
/// setting — plain fields instead of the retired `SimConfig` enum's
/// `art9_backend() -> Option<(Backend, bool)>` tuple accessor.
///
/// `backend` and `forwarding` are carried (and participate in
/// equality) for every machine but only drive execution on
/// [`Machine::Art9`]; the constructors normalize them to
/// `Backend::Functional` / `true` elsewhere, so configs built through
/// constructors and parsed from names always compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecConfig {
    /// The simulated machine.
    pub machine: Machine,
    /// ART-9 execution backend (ignored for RV32 machines).
    pub backend: Backend,
    /// Pipeline forwarding multiplexers (meaningful only for
    /// [`Backend::Pipelined`]; the paper's design point is `true`).
    pub forwarding: bool,
}

/// Deprecated name of [`ExecConfig`], kept as an alias for one PR so
/// downstream code has a deprecation window. The enum variants are
/// gone; use the [`ExecConfig`] constructors.
#[deprecated(note = "renamed to ExecConfig; use its constructors instead of enum variants")]
pub type SimConfig = ExecConfig;

impl ExecConfig {
    /// The full comparison matrix of the paper: every ART-9 simulator
    /// (functional, pipeline with and without forwarding, and the
    /// direct-threaded fast path) and both binary baselines.
    pub const FULL_MATRIX: [ExecConfig; 6] = [
        ExecConfig::art9(Backend::Functional),
        ExecConfig::art9_pipelined(true),
        ExecConfig::art9_pipelined(false),
        ExecConfig::art9(Backend::Threaded),
        ExecConfig::rv32_picorv32(),
        ExecConfig::rv32_vexriscv(),
    ];

    /// An ART-9 configuration under `backend` (forwarding on, the
    /// paper's design point — see [`ExecConfig::art9_pipelined`] to
    /// turn it off).
    pub const fn art9(backend: Backend) -> ExecConfig {
        ExecConfig {
            machine: Machine::Art9,
            backend,
            forwarding: true,
        }
    }

    /// The ART-9 cycle-accurate 5-stage pipeline, with or without
    /// forwarding multiplexers.
    pub const fn art9_pipelined(forwarding: bool) -> ExecConfig {
        ExecConfig {
            machine: Machine::Art9,
            backend: Backend::Pipelined,
            forwarding,
        }
    }

    /// RV32 substrate under the PicoRV32 cycle model.
    pub const fn rv32_picorv32() -> ExecConfig {
        ExecConfig {
            machine: Machine::Rv32PicoRv32,
            backend: Backend::Functional,
            forwarding: true,
        }
    }

    /// RV32 substrate under the VexRiscv cycle model.
    pub const fn rv32_vexriscv() -> ExecConfig {
        ExecConfig {
            machine: Machine::Rv32VexRiscv,
            backend: Backend::Functional,
            forwarding: true,
        }
    }

    /// Stable display name; [`FromStr`] parses these back.
    pub fn name(&self) -> &'static str {
        match self.machine {
            Machine::Art9 => match (self.backend, self.forwarding) {
                (Backend::Functional, _) => "art9-functional",
                (Backend::Threaded, _) => "art9-threaded",
                (Backend::Reference, _) => "art9-reference",
                (Backend::Pipelined, true) => "art9-pipelined",
                (Backend::Pipelined, false) => "art9-pipelined-nofwd",
            },
            Machine::Rv32PicoRv32 => "rv32-picorv32",
            Machine::Rv32VexRiscv => "rv32-vexriscv",
        }
    }

    /// Whether this configuration executes on the ART-9 machine.
    pub fn is_art9(&self) -> bool {
        self.machine == Machine::Art9
    }

    fn needs_translation(&self) -> bool {
        self.is_art9()
    }
}

impl fmt::Display for ExecConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ExecConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecConfig, String> {
        Ok(match s {
            "art9-functional" => ExecConfig::art9(Backend::Functional),
            "art9-threaded" => ExecConfig::art9(Backend::Threaded),
            "art9-reference" => ExecConfig::art9(Backend::Reference),
            "art9-pipelined" => ExecConfig::art9_pipelined(true),
            "art9-pipelined-nofwd" => ExecConfig::art9_pipelined(false),
            "rv32-picorv32" => ExecConfig::rv32_picorv32(),
            "rv32-vexriscv" => ExecConfig::rv32_vexriscv(),
            other => {
                return Err(format!(
                    "unknown config {other:?} (expected art9-functional, art9-threaded, \
                     art9-reference, art9-pipelined, art9-pipelined-nofwd, rv32-picorv32 \
                     or rv32-vexriscv)"
                ))
            }
        })
    }
}

/// How one (workload, config) execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Simulation completed and the output region verified.
    Verified,
    /// Simulation completed but the output did not match the golden
    /// reference.
    VerifyFailed(VerifyError),
    /// The simulator or the preparation stage reported an error.
    Error(WorkloadError),
}

impl RunOutcome {
    /// The typed error behind a non-verified outcome, if any.
    pub fn error(&self) -> Option<WorkloadError> {
        match self {
            RunOutcome::Verified => None,
            RunOutcome::VerifyFailed(e) => Some(WorkloadError::Verify(e.clone())),
            RunOutcome::Error(e) => Some(e.clone()),
        }
    }
}

/// The result of one workload under one configuration.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Workload name (e.g. `"bubble-sort"`).
    pub workload: &'static str,
    /// Configuration the run executed under.
    pub config: ExecConfig,
    /// Simulated clock cycles, when the configuration has a timing
    /// model (`None` for the functional reference simulator).
    pub cycles: Option<u64>,
    /// Instructions retired.
    pub instructions: u64,
    /// Full pipeline accounting for ART-9 pipelined runs.
    pub pipeline: Option<PipelineStats>,
    /// Measured switching activity, for ART-9 runs when the runner was
    /// built with [`BatchRunner::measure_energy`] (flip counts are
    /// backend-independent; see `docs/ENERGY.md`).
    pub energy: Option<EnergyAccounting>,
    /// Host wall-clock time spent simulating (excludes preparation).
    pub host_time: Duration,
    /// Outcome of the run.
    pub outcome: RunOutcome,
}

impl RunRecord {
    /// Cycles per instruction. `None` when the run had no timing model
    /// or retired no instructions (a CPI would be meaningless).
    pub fn cpi(&self) -> Option<f64> {
        match (self.cycles, self.instructions) {
            (Some(c), n) if n > 0 => Some(c as f64 / n as f64),
            _ => None,
        }
    }
}

/// Aggregate of a whole batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The input seed the runner reseeded its workloads with, when one
    /// was set (see [`BatchRunner::seed`]).
    pub seed: Option<u64>,
    /// Every run, in workload-major, config-minor submission order.
    pub runs: Vec<RunRecord>,
    /// Wall-clock time for the whole batch (preparation + execution).
    pub wall_time: Duration,
    /// Sum of per-workload host time spent in the prepare stage
    /// (parsing, translation, the shared RV32 functional check).
    pub prepare_host_time: Duration,
    /// Worker threads available to the runner.
    pub threads: usize,
}

impl BatchReport {
    /// The record for one (workload, config) cell of the matrix.
    pub fn find(&self, workload: &str, config: ExecConfig) -> Option<&RunRecord> {
        self.runs
            .iter()
            .find(|r| r.workload == workload && r.config == config)
    }

    /// Number of runs that did not end in [`RunOutcome::Verified`].
    pub fn failures(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.outcome != RunOutcome::Verified)
            .count()
    }

    /// The first non-verified run's typed error, in workload-major
    /// order ([`None`] when every run verified). This is what
    /// [`BatchRunner::try_run`] surfaces.
    pub fn first_error(&self) -> Option<WorkloadError> {
        self.runs.iter().find_map(|r| r.outcome.error())
    }

    /// Sum of simulated cycles over all timed runs.
    pub fn total_cycles(&self) -> u64 {
        self.runs.iter().filter_map(|r| r.cycles).sum()
    }

    /// Sum of retired instructions over all runs.
    pub fn total_instructions(&self) -> u64 {
        self.runs.iter().map(|r| r.instructions).sum()
    }

    /// Sum of per-run host simulation time (excluding preparation).
    pub fn total_host_time(&self) -> Duration {
        self.runs.iter().map(|r| r.host_time).sum()
    }

    /// Ratio of serial-equivalent host time (preparation + every run)
    /// to batch wall time. Values above 1.0 mean the parallel fan-out
    /// paid off.
    ///
    /// Returns `0.0` for an empty report or a zero-duration batch
    /// (a ratio would be meaningless) — never `NaN` or `inf`.
    pub fn parallel_speedup(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if self.runs.is_empty() || wall <= 0.0 {
            return 0.0;
        }
        (self.total_host_time() + self.prepare_host_time).as_secs_f64() / wall
    }

    /// Simulated cycles per host second over the whole batch.
    ///
    /// Returns `0.0` for an empty report or a zero-duration batch —
    /// never `NaN` or `inf`.
    pub fn cycles_per_second(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if self.runs.is_empty() || wall <= 0.0 {
            return 0.0;
        }
        self.total_cycles() as f64 / wall
    }

    /// Renders the per-run table plus the aggregate footer.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:<20} {:>12} {:>13} {:>6} {:>10}  outcome",
            "workload", "config", "cycles", "instructions", "CPI", "host"
        );
        for r in &self.runs {
            let cycles = r.cycles.map_or_else(|| "-".to_string(), |c| c.to_string());
            let cpi = r
                .cpi()
                .map_or_else(|| "-".to_string(), |v| format!("{v:.2}"));
            let outcome = match &r.outcome {
                RunOutcome::Verified => "ok".to_string(),
                RunOutcome::VerifyFailed(e) => format!("VERIFY: {e}"),
                RunOutcome::Error(e) => format!("ERROR: {e}"),
            };
            let _ = writeln!(
                out,
                "{:<14} {:<20} {:>12} {:>13} {:>6} {:>8.1}ms  {}",
                r.workload,
                r.config.name(),
                cycles,
                r.instructions,
                cpi,
                r.host_time.as_secs_f64() * 1e3,
                outcome
            );
        }
        let _ = writeln!(
            out,
            "{} runs, {} failed | {} simulated cycles, {} instructions",
            self.runs.len(),
            self.failures(),
            self.total_cycles(),
            self.total_instructions(),
        );
        let _ = writeln!(
            out,
            "wall {:.1} ms on {} threads (serial-equivalent {:.1} ms = {:.1} prepare + {:.1} run, speedup {:.2}x, {:.2e} cycles/s)",
            self.wall_time.as_secs_f64() * 1e3,
            self.threads,
            (self.prepare_host_time + self.total_host_time()).as_secs_f64() * 1e3,
            self.prepare_host_time.as_secs_f64() * 1e3,
            self.total_host_time().as_secs_f64() * 1e3,
            self.parallel_speedup(),
            self.cycles_per_second(),
        );
        out
    }
}

/// A prepared workload: parsed once, translated once, predecoded once,
/// functionally checked once, shared by every configuration that runs it.
struct Prepared {
    workload: Workload,
    rv: Result<Rv32Program, WorkloadError>,
    translation: Option<Result<Translation, WorkloadError>>,
    /// The ART-9 program decoded once into the shared simulator image;
    /// every ART-9 config of the matrix fetches from this same `Arc`'d
    /// text instead of copying or re-decoding per run (`None` when no
    /// ART-9 config is requested or translation failed).
    predecoded: Option<PredecodedProgram>,
    /// Outcome of the single functional RV32 run + verification shared
    /// by every RV32 timing config (`None` when the batch has no RV32
    /// config or the source did not parse).
    rv_functional: Option<RunOutcome>,
}

/// Converts a boxed verifier error (either a [`VerifyError`] or an
/// address fault while reading the output region) into an outcome.
fn verify_outcome(workload: &str, result: Result<(), Box<dyn std::error::Error>>) -> RunOutcome {
    match result {
        Ok(()) => RunOutcome::Verified,
        Err(e) => match e.downcast::<VerifyError>() {
            Ok(ve) => RunOutcome::VerifyFailed(*ve),
            Err(e) => RunOutcome::Error(WorkloadError::Unavailable {
                workload: workload.to_string(),
                detail: format!("verify: {e}"),
            }),
        },
    }
}

/// Executes many workloads under many simulator configurations in
/// parallel. See the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    workloads: Vec<Workload>,
    configs: Vec<ExecConfig>,
    max_steps: u64,
    seed: Option<u64>,
    measure_energy: bool,
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// An empty runner with the default step budget and no reseeding.
    pub fn new() -> Self {
        BatchRunner {
            workloads: Vec::new(),
            configs: Vec::new(),
            max_steps: DEFAULT_MAX_STEPS,
            seed: None,
            measure_energy: false,
        }
    }

    /// Adds one workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workloads.push(w);
        self
    }

    /// Adds many workloads.
    pub fn workloads(mut self, ws: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads.extend(ws);
        self
    }

    /// Adds one simulator configuration.
    pub fn config(mut self, c: ExecConfig) -> Self {
        self.configs.push(c);
        self
    }

    /// Adds many simulator configurations.
    pub fn configs(mut self, cs: impl IntoIterator<Item = ExecConfig>) -> Self {
        self.configs.extend(cs);
        self
    }

    /// Overrides the per-run step/cycle budget.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Attaches an [`EnergyAccounting`] observer to every ART-9 run,
    /// so each record carries the measured trit-flip activity of its
    /// execution (`RunRecord::energy`). Off by default — the observer
    /// costs one mutex round-trip per retired instruction.
    pub fn measure_energy(mut self, on: bool) -> Self {
        self.measure_energy = on;
        self
    }

    /// Sets a deterministic input seed: before preparation, every
    /// workload with a [`crate::Generator`] is rebuilt with inputs
    /// drawn from a sub-seed derived from `(seed, workload index)`.
    /// The derivation is position-based and the fan-out collects in
    /// submission order, so the aggregate report is bit-identical
    /// run-to-run for a fixed seed, however `rayon` schedules the
    /// work.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Runs the whole workload × config matrix in parallel.
    ///
    /// Never panics on a failing run: errors are captured per record
    /// as [`RunOutcome::Error`] / [`RunOutcome::VerifyFailed`] so one
    /// bad program cannot take down a batch.
    pub fn run(&self) -> BatchReport {
        let start = Instant::now();
        let needs_translation = self.configs.iter().any(ExecConfig::needs_translation);
        let needs_rv32 = self.configs.iter().any(|c| !c.is_art9());
        let max_steps = self.max_steps;

        // Reseed (deterministically, by position) before fan-out.
        let workloads: Vec<Workload> = match self.seed {
            None => self.workloads.clone(),
            Some(seed) => self
                .workloads
                .iter()
                .enumerate()
                .map(|(i, w)| w.with_input_seed(crate::split_seed(seed, i as u64)))
                .collect(),
        };

        // Stage 1: prepare every workload once, in parallel.
        let prepared: Vec<(Arc<Prepared>, Duration)> = workloads
            .into_par_iter()
            .map(|w| {
                let t0 = Instant::now();
                let rv = w.rv32_program().map_err(|e| WorkloadError::Parse {
                    workload: w.name.to_string(),
                    detail: e.to_string(),
                });
                let translation =
                    match (&rv, needs_translation) {
                        (Ok(p), true) => Some(art9_compiler::translate(p).map_err(|e| {
                            WorkloadError::Translate {
                                workload: w.name.to_string(),
                                detail: e.to_string(),
                            }
                        })),
                        _ => None,
                    };
                let predecoded = match &translation {
                    Some(Ok(t)) => Some(PredecodedProgram::new(&t.program)),
                    _ => None,
                };
                let rv_functional = match (&rv, needs_rv32) {
                    (Ok(p), true) => {
                        let mut machine = rv32::Machine::new(p);
                        Some(match machine.run(max_steps) {
                            Err(e) => RunOutcome::Error(WorkloadError::Rv32 {
                                workload: w.name.to_string(),
                                detail: e.to_string(),
                            }),
                            Ok(_) => verify_outcome(w.name, w.verify_rv32(&machine)),
                        })
                    }
                    _ => None,
                };
                let p = Arc::new(Prepared {
                    workload: w,
                    rv,
                    translation,
                    predecoded,
                    rv_functional,
                });
                (p, t0.elapsed())
            })
            .collect();
        let prepare_host_time: Duration = prepared.iter().map(|(_, d)| *d).sum();
        let prepared: Vec<Arc<Prepared>> = prepared.into_iter().map(|(p, _)| p).collect();

        // Stage 2: the cross product, in parallel. Records come back in
        // workload-major order, but work is *submitted* config-major so
        // that one heavy workload's runs spread across the contiguous
        // per-thread chunks instead of piling onto a single worker.
        let n_cfg = self.configs.len();
        let pairs: Vec<(usize, Arc<Prepared>, ExecConfig)> = self
            .configs
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| {
                prepared
                    .iter()
                    .enumerate()
                    .map(move |(wi, p)| (wi * n_cfg + ci, Arc::clone(p), *c))
            })
            .collect();
        let measure_energy = self.measure_energy;
        let mut indexed: Vec<(usize, RunRecord)> = pairs
            .into_par_iter()
            .map(|(idx, p, config)| (idx, execute(&p, config, max_steps, measure_energy)))
            .collect();
        indexed.sort_by_key(|(idx, _)| *idx);
        let runs = indexed.into_iter().map(|(_, r)| r).collect();

        BatchReport {
            seed: self.seed,
            runs,
            wall_time: start.elapsed(),
            prepare_host_time,
            threads: rayon::current_num_threads(),
        }
    }

    /// Like [`BatchRunner::run`], but fails fast at the API level: the
    /// report is returned only when **every** run verified; otherwise
    /// the first failure (workload-major order) comes back as a typed
    /// [`WorkloadError`]. The whole matrix still executes either way —
    /// this wraps the outcome, it does not abort mid-batch.
    ///
    /// # Errors
    ///
    /// The first run whose outcome was not [`RunOutcome::Verified`].
    pub fn try_run(&self) -> Result<BatchReport, WorkloadError> {
        let report = self.run();
        match report.first_error() {
            None => Ok(report),
            Some(e) => Err(e),
        }
    }
}

/// Runs one prepared workload under one configuration.
fn execute(p: &Prepared, config: ExecConfig, max_steps: u64, measure_energy: bool) -> RunRecord {
    let name = p.workload.name;
    // Failure record; `host_time` is whatever the simulator burned
    // before erroring (zero when it never ran).
    let fail = |outcome: RunOutcome, host_time: Duration| RunRecord {
        workload: name,
        config,
        cycles: None,
        instructions: 0,
        pipeline: None,
        energy: None,
        host_time,
        outcome,
    };

    let rv = match &p.rv {
        Ok(rv) => rv,
        Err(e) => return fail(RunOutcome::Error(e.clone()), Duration::ZERO),
    };

    match config.machine {
        Machine::Art9 => {
            // The prepare stage decoded the program once; all ART-9
            // configs fetch from that shared image. One backend-generic
            // code path serves every ART-9 configuration: construction
            // through SimBuilder, execution through `Core::run_for`,
            // timing through `Core::pipeline_stats`.
            let image = match (&p.predecoded, p.translation.as_ref()) {
                (Some(image), _) => image,
                (None, Some(Err(e))) => return fail(RunOutcome::Error(e.clone()), Duration::ZERO),
                _ => {
                    return fail(
                        RunOutcome::Error(WorkloadError::Unavailable {
                            workload: name.to_string(),
                            detail: "translation unavailable".into(),
                        }),
                        Duration::ZERO,
                    )
                }
            };
            let sim_error = |source: SimError| {
                RunOutcome::Error(WorkloadError::Sim {
                    workload: name.to_string(),
                    config: config.name(),
                    source,
                })
            };
            let start = Instant::now();
            let mut builder = SimBuilder::new(image)
                .backend(config.backend)
                .forwarding(config.forwarding);
            let energy = measure_energy.then(|| Arc::new(Mutex::new(EnergyAccounting::new())));
            if let Some(e) = &energy {
                builder = builder.observer(e.clone());
            }
            let mut core = builder.build();
            let summary = match core.run_for(Budget::Steps(max_steps)) {
                Ok(s) => s,
                Err(e) => return fail(sim_error(e), start.elapsed()),
            };
            if summary.halt.is_none() {
                return fail(
                    sim_error(SimError::Timeout { limit: max_steps }),
                    start.elapsed(),
                );
            }
            let host_time = start.elapsed();
            let outcome = verify_outcome(name, p.workload.verify_art9(core.state()));
            let stats = core.pipeline_stats();
            RunRecord {
                workload: name,
                config,
                cycles: stats.map(|s| s.cycles),
                instructions: summary.retired,
                pipeline: stats,
                energy: energy.map(|e| e.lock().expect("observer lock").clone()),
                host_time,
                outcome,
            }
        }
        Machine::Rv32PicoRv32 | Machine::Rv32VexRiscv => {
            // The functional run + verification happened once in the
            // prepare stage; here only the requested cycle model runs.
            let outcome = match &p.rv_functional {
                Some(o) => o.clone(),
                None => {
                    return fail(
                        RunOutcome::Error(WorkloadError::Unavailable {
                            workload: name.to_string(),
                            detail: "rv32 functional check unavailable".into(),
                        }),
                        Duration::ZERO,
                    )
                }
            };
            if matches!(outcome, RunOutcome::Error(_)) {
                return fail(outcome, Duration::ZERO);
            }
            let start = Instant::now();
            let timing = match config.machine {
                Machine::Rv32PicoRv32 => {
                    rv32::simulate_cycles(rv, &mut PicoRv32Model::new(), max_steps)
                }
                _ => rv32::simulate_cycles(rv, &mut VexRiscvModel::new(), max_steps),
            };
            let report = match timing {
                Ok(r) => r,
                Err(e) => {
                    return fail(
                        RunOutcome::Error(WorkloadError::Rv32 {
                            workload: name.to_string(),
                            detail: e.to_string(),
                        }),
                        start.elapsed(),
                    )
                }
            };
            RunRecord {
                workload: name,
                config,
                cycles: Some(report.cycles),
                instructions: report.instructions,
                pipeline: None,
                energy: None,
                host_time: start.elapsed(),
                outcome,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bubble_sort, dot_product};

    fn small_batch() -> BatchReport {
        BatchRunner::new()
            .workload(bubble_sort(8))
            .workload(dot_product(6))
            .configs([
                ExecConfig::art9_pipelined(true),
                ExecConfig::rv32_picorv32(),
            ])
            .max_steps(10_000_000)
            .run()
    }

    #[test]
    fn two_by_two_matrix_all_verified() {
        let report = small_batch();
        assert_eq!(report.runs.len(), 4);
        assert_eq!(report.failures(), 0, "{}", report.render());
        // Workload-major order is deterministic.
        let names: Vec<_> = report.runs.iter().map(|r| (r.workload, r.config)).collect();
        assert_eq!(
            names,
            vec![
                ("bubble-sort", ExecConfig::art9_pipelined(true)),
                ("bubble-sort", ExecConfig::rv32_picorv32()),
                ("dot-product", ExecConfig::art9_pipelined(true)),
                ("dot-product", ExecConfig::rv32_picorv32()),
            ]
        );
    }

    #[test]
    fn config_names_round_trip_through_from_str() {
        for config in ExecConfig::FULL_MATRIX {
            let parsed: ExecConfig = config.name().parse().expect("name parses back");
            assert_eq!(parsed, config, "{}", config.name());
            assert_eq!(config.to_string(), config.name());
        }
        // The reference backend is expressible too (the old enum could
        // not name it).
        let reference: ExecConfig = "art9-reference".parse().unwrap();
        assert_eq!(reference.backend, Backend::Reference);
        assert!("art9-quantum".parse::<ExecConfig>().is_err());
    }

    #[test]
    fn batch_results_match_direct_runs() {
        let report = small_batch();
        // Direct pipelined run of bubble_sort(8) must agree with the
        // batch record (simulators are deterministic).
        let w = bubble_sort(8);
        let t = art9_compiler::translate(&w.rv32_program().unwrap()).unwrap();
        let mut core = SimBuilder::new(&t.program).build_pipelined();
        let stats = core.run(10_000_000).unwrap();
        let r = &report.runs[0];
        assert_eq!(r.cycles, Some(stats.cycles));
        assert_eq!(r.instructions, stats.instructions);
        assert_eq!(r.pipeline.unwrap(), stats);
    }

    #[test]
    fn full_matrix_functional_has_no_cycles() {
        let report = BatchRunner::new()
            .workload(dot_product(4))
            .configs(ExecConfig::FULL_MATRIX)
            .max_steps(10_000_000)
            .run();
        assert_eq!(report.runs.len(), 6);
        assert_eq!(report.failures(), 0, "{}", report.render());
        let functional = &report.runs[0];
        assert_eq!(functional.config, ExecConfig::art9(Backend::Functional));
        assert_eq!(functional.cycles, None);
        assert!(functional.instructions > 0);
        // No-forwarding pipeline can never be faster than forwarding.
        let fwd = report.runs[1].cycles.unwrap();
        let nofwd = report.runs[2].cycles.unwrap();
        assert!(nofwd >= fwd, "forwarding off ({nofwd}) beat on ({fwd})");
        // The threaded backend is architectural too: no timing model,
        // same retirement count as the functional reference.
        let threaded = &report.runs[3];
        assert_eq!(threaded.config, ExecConfig::art9(Backend::Threaded));
        assert_eq!(threaded.cycles, None);
        assert_eq!(threaded.instructions, functional.instructions);
    }

    #[test]
    fn seeded_batches_are_bit_identical_run_to_run() {
        let build = || {
            BatchRunner::new()
                .workload(bubble_sort(8))
                .workload(dot_product(6))
                .configs([
                    ExecConfig::art9(Backend::Functional),
                    ExecConfig::art9_pipelined(true),
                ])
                .max_steps(10_000_000)
                .seed(1234)
        };
        let a = build().run();
        let b = build().run();
        assert_eq!(a.seed, Some(1234));
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.config, y.config);
            assert_eq!(x.cycles, y.cycles, "{}/{}", x.workload, x.config.name());
            assert_eq!(x.instructions, y.instructions);
            assert_eq!(x.outcome, y.outcome);
        }
    }

    #[test]
    fn different_seeds_change_the_inputs_but_still_verify() {
        let run = |seed| {
            BatchRunner::new()
                .workload(bubble_sort(8))
                .config(ExecConfig::art9_pipelined(true))
                .max_steps(10_000_000)
                .seed(seed)
                .run()
        };
        let a = run(1);
        let b = run(2);
        assert_eq!(a.failures(), 0, "{}", a.render());
        assert_eq!(b.failures(), 0, "{}", b.render());
        // Fresh inputs steer different branch behaviour through the
        // sort, so the cycle counts differ.
        assert_ne!(a.runs[0].cycles, b.runs[0].cycles);
    }

    #[test]
    fn errors_are_captured_not_propagated() {
        let mut w = bubble_sort(4);
        w.source = "this is not assembly".into();
        let report = BatchRunner::new()
            .workload(w)
            .workload(dot_product(4))
            .config(ExecConfig::rv32_picorv32())
            .max_steps(1_000_000)
            .run();
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.failures(), 1);
        assert!(matches!(
            report.runs[0].outcome,
            RunOutcome::Error(WorkloadError::Parse { .. })
        ));
        assert_eq!(report.runs[1].outcome, RunOutcome::Verified);
    }

    #[test]
    fn try_run_surfaces_the_first_typed_error() {
        let mut bad = bubble_sort(4);
        bad.source = "this is not assembly".into();
        let err = BatchRunner::new()
            .workload(bad)
            .config(ExecConfig::rv32_picorv32())
            .max_steps(1_000_000)
            .try_run()
            .expect_err("a parse failure must surface");
        assert!(matches!(err, WorkloadError::Parse { .. }));
        assert_eq!(err.workload(), "bubble-sort");

        // A clean batch passes the report through.
        let report = BatchRunner::new()
            .workload(dot_product(4))
            .config(ExecConfig::art9(Backend::Functional))
            .max_steps(10_000_000)
            .try_run()
            .expect("clean batch");
        assert_eq!(report.failures(), 0);
    }

    #[test]
    fn try_run_maps_budget_exhaustion_to_sim_timeout() {
        let err = BatchRunner::new()
            .workload(bubble_sort(8))
            .config(ExecConfig::art9(Backend::Functional))
            .max_steps(10)
            .try_run()
            .expect_err("ten steps cannot finish a sort");
        match err {
            WorkloadError::Sim { config, source, .. } => {
                assert_eq!(config, "art9-functional");
                assert_eq!(source, SimError::Timeout { limit: 10 });
            }
            other => panic!("expected Sim timeout, got {other}"),
        }
    }

    #[test]
    fn measure_energy_attaches_activity_to_art9_records() {
        let report = BatchRunner::new()
            .workload(bubble_sort(8))
            .configs([
                ExecConfig::art9_pipelined(true),
                ExecConfig::rv32_picorv32(),
            ])
            .max_steps(10_000_000)
            .measure_energy(true)
            .run();
        assert_eq!(report.failures(), 0, "{}", report.render());
        let art9 = &report.runs[0];
        let totals = art9
            .energy
            .as_ref()
            .expect("ART-9 run carries measured activity")
            .totals();
        assert_eq!(totals.retired, art9.instructions);
        assert!(totals.regfile + totals.tdm + totals.fetch + totals.alu > 0);
        // Binary baselines have no trit-flip model.
        assert!(report.runs[1].energy.is_none());

        // Off by default: the hot path stays observer-free.
        let quiet = BatchRunner::new()
            .workload(bubble_sort(8))
            .config(ExecConfig::art9(Backend::Functional))
            .max_steps(10_000_000)
            .run();
        assert!(quiet.runs[0].energy.is_none());
    }

    #[test]
    fn empty_and_zero_duration_reports_yield_finite_metrics() {
        // An empty report (no runs) must not produce NaN/inf.
        let empty = BatchReport {
            seed: None,
            runs: Vec::new(),
            wall_time: Duration::ZERO,
            prepare_host_time: Duration::ZERO,
            threads: 1,
        };
        assert_eq!(empty.parallel_speedup(), 0.0);
        assert_eq!(empty.cycles_per_second(), 0.0);
        assert!(empty.render().contains("0 runs"));

        // Zero wall time with runs present (degenerate clock) is also
        // guarded.
        let mut zero_wall = small_batch();
        zero_wall.wall_time = Duration::ZERO;
        assert_eq!(zero_wall.parallel_speedup(), 0.0);
        assert_eq!(zero_wall.cycles_per_second(), 0.0);
        assert!(zero_wall.parallel_speedup().is_finite());

        // A record that retired nothing has no CPI rather than NaN.
        let r = RunRecord {
            workload: "empty",
            config: ExecConfig::art9(Backend::Functional),
            cycles: Some(0),
            instructions: 0,
            pipeline: None,
            energy: None,
            host_time: Duration::ZERO,
            outcome: RunOutcome::Verified,
        };
        assert_eq!(r.cpi(), None);
    }

    #[test]
    fn render_mentions_every_run_and_totals() {
        let report = small_batch();
        let text = report.render();
        assert!(text.contains("bubble-sort"));
        assert!(text.contains("dot-product"));
        assert!(text.contains("art9-pipelined"));
        assert!(text.contains("rv32-picorv32"));
        assert!(text.contains("4 runs, 0 failed"));
        assert!(report.total_cycles() > 0);
        assert!(report.total_instructions() > 0);
    }
}
