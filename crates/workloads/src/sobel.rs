//! Sobel edge filter (paper §V-A, third Table III column).
//!
//! 3×3 Sobel over an 8×8 image, 6×6 interior output, gradient
//! magnitude approximated as |gx| + |gy| (the standard integer form).
//! The ×2 kernel coefficients are realized with doubling adds, so the
//! RV32 source needs no multiplier and the ternary translation needs
//! no `__mul` — the contrast with GEMM is the point of this workload.

use crate::{lcg_values, Generator, Workload};

const W: usize = 8;
const OUT: usize = W - 2;

/// Builds the 8×8 Sobel workload with the paper suite's canonical
/// input image.
pub fn sobel() -> Workload {
    sobel_seeded(23)
}

/// [`sobel`] over an input image drawn from `seed`.
pub fn sobel_seeded(seed: u64) -> Workload {
    let img = lcg_values(seed, W * W, 0, 9);
    let mut expected = Vec::with_capacity(OUT * OUT);
    for r in 1..W - 1 {
        for c in 1..W - 1 {
            let p = |dr: isize, dc: isize| -> i64 {
                img[((r as isize + dr) as usize) * W + (c as isize + dc) as usize]
            };
            let gx = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2 * p(0, -1) + p(1, -1));
            let gy = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2 * p(-1, 0) + p(-1, 1));
            expected.push(gx.abs() + gy.abs());
        }
    }

    let words = img
        .iter()
        .map(i64::to_string)
        .collect::<Vec<_>>()
        .join(", ");

    // Byte offsets of the 3x3 neighbourhood around the centre pointer.
    let (nw, n, ne) = (-36, -32, -28);
    let (w_, e) = (-4, 4);
    let (sw, s, se) = (28, 32, 36);

    let source = format!(
        "
# sobel 3x3 over an 8x8 image, |gx|+|gy|, 6x6 output
        .data
img:    .word {words}
out:    .zero {out_bytes}
        .text
        la   a0, img
        addi a0, a0, 36         # centre of pixel (1,1)
        la   a1, out
        li   s3, 6
        li   a5, 0              # row
row_loop:
        li   a6, 0              # col
col_loop:
        # gx = (NE + 2E + SE) - (NW + 2W + SW)
        lw   a4, {ne}(a0)
        lw   a7, {e}(a0)
        add  a4, a4, a7
        add  a4, a4, a7
        lw   a7, {se}(a0)
        add  a4, a4, a7
        lw   a2, {nw}(a0)
        lw   a7, {w_}(a0)
        add  a2, a2, a7
        add  a2, a2, a7
        lw   a7, {sw}(a0)
        add  a2, a2, a7
        sub  a2, a4, a2
        # gy = (SW + 2S + SE) - (NW + 2N + NE)
        lw   a4, {sw}(a0)
        lw   a7, {s}(a0)
        add  a4, a4, a7
        add  a4, a4, a7
        lw   a7, {se}(a0)
        add  a4, a4, a7
        lw   a3, {nw}(a0)
        lw   a7, {n}(a0)
        add  a3, a3, a7
        add  a3, a3, a7
        lw   a7, {ne}(a0)
        add  a3, a3, a7
        sub  a3, a4, a3
        # |gx| + |gy|
        bgez a2, gx_done
        neg  a2, a2
gx_done:
        bgez a3, gy_done
        neg  a3, a3
gy_done:
        add  a2, a2, a3
        sw   a2, 0(a1)
        addi a1, a1, 4
        addi a0, a0, 4
        addi a6, a6, 1
        blt  a6, s3, col_loop
        addi a0, a0, 8          # skip the two border pixels
        addi a5, a5, 1
        blt  a5, s3, row_loop
        ebreak
",
        out_bytes = 4 * OUT * OUT,
    );

    Workload {
        generator: Some(Generator::Sobel),
        name: "sobel",
        description: "3x3 Sobel filter, 8x8 image, |gx|+|gy| magnitude".to_string(),
        source,
        output_offset: 4 * W * W,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_compiler::translate;
    use art9_sim::SimBuilder;
    use rv32::Machine;

    #[test]
    fn filters_on_rv32() {
        let w = sobel();
        let mut m = Machine::new(&w.rv32_program().unwrap());
        m.run(1_000_000).unwrap();
        w.verify_rv32(&m).unwrap();
    }

    #[test]
    fn filters_on_art9() {
        let w = sobel();
        let t = translate(&w.rv32_program().unwrap()).unwrap();
        // No multiplies: the runtime must not be linked.
        assert_eq!(t.report.art9_builtin_instructions, 0);
        let mut sim = SimBuilder::new(&t.program).build_functional();
        sim.run(4_000_000).unwrap();
        w.verify_art9(sim.state()).unwrap();
    }

    #[test]
    fn output_is_nonnegative_and_bounded() {
        let w = sobel();
        assert_eq!(w.expected.len(), 36);
        assert!(w.expected.iter().all(|v| (0..=72).contains(v)));
    }
}
