//! # `workloads` — the paper's benchmark programs
//!
//! The four programs of §V-A — bubble sort, general matrix
//! multiplication, a Sobel filter and a Dhrystone-style kernel — as
//! RV32I assembly sources (the input boundary of the software-level
//! compiling framework), each with a golden Rust reference and
//! verification helpers for both machines.
//!
//! Every workload is parameterized and self-checking:
//!
//! ```
//! use workloads::bubble_sort;
//!
//! let w = bubble_sort(8);
//! let mut machine = rv32::Machine::new(&w.rv32_program()?);
//! machine.run(1_000_000)?;
//! w.verify_rv32(&machine)?;   // sorted output in data memory
//!
//! let t = art9_compiler::translate(&w.rv32_program()?)?;
//! let mut sim = art9_sim::FunctionalSim::new(&t.program);
//! sim.run(1_000_000)?;
//! w.verify_art9(sim.state())?; // same values, word-addressed TDM
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod bubble;
mod dhrystone;
mod extras;
mod gemm;
mod sobel;

use std::error::Error;
use std::fmt;

use art9_sim::CoreState;
use rv32::{Machine, Rv32Error, Rv32Program};

pub use bubble::bubble_sort;
pub use dhrystone::{dhrystone, DHRYSTONE_DIVISOR};
pub use extras::{dot_product, fibonacci};
pub use gemm::gemm;
pub use sobel::sobel;

/// A benchmark program: RV32 source, input data, and the expected
/// output region.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name ("bubble-sort", "gemm", …).
    pub name: &'static str,
    /// One-line description with the chosen parameters.
    pub description: String,
    /// RV32 assembly source (consumed by `rv32::parse_program` and by
    /// the compiling framework).
    pub source: String,
    /// Byte offset of the output region within the data section.
    pub output_offset: usize,
    /// Expected output values (word-wise).
    pub expected: Vec<i64>,
}

/// Verification failure: which word of the output region diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Workload name.
    pub workload: &'static str,
    /// Word index within the output region.
    pub index: usize,
    /// Expected value.
    pub expected: i64,
    /// Observed value.
    pub found: i64,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: output[{}] = {}, expected {}",
            self.workload, self.index, self.found, self.expected
        )
    }
}

impl Error for VerifyError {}

impl Workload {
    /// Parses the RV32 source.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (should not happen for generated
    /// sources; surfaced for debuggability).
    pub fn rv32_program(&self) -> Result<Rv32Program, Rv32Error> {
        rv32::parse_program(&self.source)
    }

    /// Checks the output region in RV32 data memory.
    ///
    /// # Errors
    ///
    /// [`VerifyError`] on the first mismatching word; [`Rv32Error`] on
    /// an unreadable address.
    pub fn verify_rv32(&self, machine: &Machine) -> Result<(), Box<dyn Error>> {
        for (i, expected) in self.expected.iter().enumerate() {
            let addr = rv32::DATA_BASE + (self.output_offset + 4 * i) as u32;
            let found = machine.load_word(addr)? as i32 as i64;
            if found != *expected {
                return Err(Box::new(VerifyError {
                    workload: self.name,
                    index: i,
                    expected: *expected,
                    found,
                }));
            }
        }
        Ok(())
    }

    /// Checks the output region in ART-9 data memory (word-addressed,
    /// after the translator's 16-word runtime scratch area).
    ///
    /// # Errors
    ///
    /// [`VerifyError`] on the first mismatching word.
    pub fn verify_art9(&self, state: &CoreState) -> Result<(), Box<dyn Error>> {
        for (i, expected) in self.expected.iter().enumerate() {
            let word = art9_compiler::analysis::DATA_WORD_BASE as usize
                + self.output_offset / 4
                + i;
            let found = state.tdm.read(word)?.to_i64();
            if found != *expected {
                return Err(Box::new(VerifyError {
                    workload: self.name,
                    index: i,
                    expected: *expected,
                    found,
                }));
            }
        }
        Ok(())
    }
}

/// Dhrystone iteration count the paper suite runs (Tables II/III);
/// shared so table renderers divide by the same number the suite ran.
pub const PAPER_DHRYSTONE_ITERATIONS: usize = 100;

/// The paper's benchmark suite at the parameters used for Table III
/// and Fig. 5 (DESIGN.md §3.4).
pub fn paper_suite() -> Vec<Workload> {
    vec![
        bubble_sort(20),
        gemm(6),
        sobel(),
        dhrystone(PAPER_DHRYSTONE_ITERATIONS),
    ]
}

/// Deterministic pseudo-random small integers for workload inputs
/// (LCG; keeps the crate free of a hard `rand` dependency and the
/// tables reproducible).
pub(crate) fn lcg_values(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let span = (hi - lo + 1) as u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lo + ((state >> 33) % span) as i64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_four_workloads() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 4);
        let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["bubble-sort", "gemm", "sobel", "dhrystone"]);
    }

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let a = lcg_values(42, 100, -5, 9);
        let b = lcg_values(42, 100, -5, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-5..=9).contains(v)));
        // Different seed differs.
        assert_ne!(a, lcg_values(43, 100, -5, 9));
    }

    #[test]
    fn verify_error_display() {
        let e = VerifyError { workload: "gemm", index: 3, expected: 7, found: 9 };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains('3'));
    }
}
