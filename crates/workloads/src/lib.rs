//! # `workloads` — the paper's benchmark programs
//!
//! The four programs of §V-A — bubble sort, general matrix
//! multiplication, a Sobel filter and a Dhrystone-style kernel — as
//! RV32I assembly sources (the input boundary of the software-level
//! compiling framework), each with a golden Rust reference and
//! verification helpers for both machines.
//!
//! Every workload is parameterized and self-checking:
//!
//! ```
//! use workloads::bubble_sort;
//!
//! let w = bubble_sort(8);
//! let mut machine = rv32::Machine::new(&w.rv32_program()?);
//! machine.run(1_000_000)?;
//! w.verify_rv32(&machine)?;   // sorted output in data memory
//!
//! let t = art9_compiler::translate(&w.rv32_program()?)?;
//! let mut sim = art9_sim::SimBuilder::new(&t.program).build_functional();
//! sim.run(1_000_000)?;
//! w.verify_art9(sim.state())?; // same values, word-addressed TDM
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod energy;
mod error;

pub mod assoc;
mod bubble;
mod dhrystone;
mod extras;
mod gemm;
pub mod nn;
mod sobel;

pub use error::WorkloadError;

use std::error::Error;
use std::fmt;

use art9_sim::CoreState;
use rv32::{Machine, Rv32Error, Rv32Program};

pub use assoc::{assoc_match, assoc_match_seeded};
pub use bubble::{bubble_sort, bubble_sort_seeded};
pub use dhrystone::{dhrystone, dhrystone_seeded, DHRYSTONE_DIVISOR};
pub use extras::{dot_product, dot_product_seeded, fibonacci};
pub use gemm::{gemm, gemm_seeded};
pub use nn::{nn_mlp, nn_mlp_seeded};
pub use sobel::{sobel, sobel_seeded};

/// How a workload's random inputs were generated, so the batch driver
/// can deterministically *reseed* it (same shape, fresh input data)
/// without knowing each constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generator {
    /// [`bubble_sort`] over `n` elements.
    BubbleSort {
        /// Array length.
        n: usize,
    },
    /// [`gemm`] over `n×n` matrices.
    Gemm {
        /// Matrix dimension.
        n: usize,
    },
    /// [`sobel`] (fixed 8×8 image).
    Sobel,
    /// [`dhrystone`] with the given iteration count.
    Dhrystone {
        /// Iteration count.
        iterations: usize,
    },
    /// [`fibonacci`] (no random inputs; reseeding is the identity).
    Fibonacci {
        /// Number of terms.
        n: usize,
    },
    /// [`dot_product`] over `n`-vectors.
    DotProduct {
        /// Vector length.
        n: usize,
    },
    /// [`nn_mlp`]: ternary-weight `n → n → n` MLP inference.
    NnMlp {
        /// Layer width.
        n: usize,
    },
    /// [`assoc_match`]: associative search over an `n`-entry table.
    AssocMatch {
        /// Table size.
        n: usize,
    },
}

/// A benchmark program: RV32 source, input data, and the expected
/// output region.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name ("bubble-sort", "gemm", …).
    pub name: &'static str,
    /// One-line description with the chosen parameters.
    pub description: String,
    /// RV32 assembly source (consumed by `rv32::parse_program` and by
    /// the compiling framework).
    pub source: String,
    /// Byte offset of the output region within the data section.
    pub output_offset: usize,
    /// Expected output values (word-wise).
    pub expected: Vec<i64>,
    /// The parameterized generator behind this workload, when it was
    /// built by one of the crate's constructors (`None` for hand-built
    /// workloads, which cannot be reseeded).
    pub generator: Option<Generator>,
}

/// Verification failure: which word of the output region diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Workload name.
    pub workload: &'static str,
    /// Word index within the output region.
    pub index: usize,
    /// Expected value.
    pub expected: i64,
    /// Observed value.
    pub found: i64,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: output[{}] = {}, expected {}",
            self.workload, self.index, self.found, self.expected
        )
    }
}

impl Error for VerifyError {}

impl Workload {
    /// Parses the RV32 source.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (should not happen for generated
    /// sources; surfaced for debuggability).
    pub fn rv32_program(&self) -> Result<Rv32Program, Rv32Error> {
        rv32::parse_program(&self.source)
    }

    /// Checks the output region in RV32 data memory.
    ///
    /// # Errors
    ///
    /// [`VerifyError`] on the first mismatching word; [`Rv32Error`] on
    /// an unreadable address.
    pub fn verify_rv32(&self, machine: &Machine) -> Result<(), Box<dyn Error>> {
        for (i, expected) in self.expected.iter().enumerate() {
            let addr = rv32::DATA_BASE + (self.output_offset + 4 * i) as u32;
            let found = machine.load_word(addr)? as i32 as i64;
            if found != *expected {
                return Err(Box::new(VerifyError {
                    workload: self.name,
                    index: i,
                    expected: *expected,
                    found,
                }));
            }
        }
        Ok(())
    }

    /// Checks the output region in ART-9 data memory (word-addressed,
    /// after the translator's 16-word runtime scratch area).
    ///
    /// # Errors
    ///
    /// [`VerifyError`] on the first mismatching word.
    pub fn verify_art9(&self, state: &CoreState) -> Result<(), Box<dyn Error>> {
        for (i, expected) in self.expected.iter().enumerate() {
            let word =
                art9_compiler::analysis::DATA_WORD_BASE as usize + self.output_offset / 4 + i;
            let found = state.tdm.read(word)?.to_i64();
            if found != *expected {
                return Err(Box::new(VerifyError {
                    workload: self.name,
                    index: i,
                    expected: *expected,
                    found,
                }));
            }
        }
        Ok(())
    }

    /// Rebuilds this workload with inputs drawn from `seed` (the same
    /// shape and parameters, fresh deterministic data, recomputed
    /// golden outputs). Returns a clone unchanged when the workload
    /// has no [`Generator`] or no random inputs.
    ///
    /// # Examples
    ///
    /// ```
    /// use workloads::bubble_sort;
    ///
    /// let w = bubble_sort(8);
    /// assert_eq!(w.with_input_seed(5).source, w.with_input_seed(5).source);
    /// assert_ne!(w.with_input_seed(5).source, w.with_input_seed(6).source);
    /// ```
    pub fn with_input_seed(&self, seed: u64) -> Workload {
        match self.generator {
            Some(Generator::BubbleSort { n }) => bubble_sort_seeded(n, seed),
            Some(Generator::Gemm { n }) => gemm_seeded(n, seed),
            Some(Generator::Sobel) => sobel_seeded(seed),
            Some(Generator::Dhrystone { iterations }) => dhrystone_seeded(iterations, seed),
            Some(Generator::DotProduct { n }) => dot_product_seeded(n, seed),
            Some(Generator::NnMlp { n }) => nn_mlp_seeded(n, seed),
            Some(Generator::AssocMatch { n }) => assoc_match_seeded(n, seed),
            // Fibonacci has no random inputs; hand-built workloads
            // cannot be regenerated.
            Some(Generator::Fibonacci { .. }) | None => self.clone(),
        }
    }
}

/// Dhrystone iteration count the paper suite runs (Tables II/III);
/// shared so table renderers divide by the same number the suite ran.
pub const PAPER_DHRYSTONE_ITERATIONS: usize = 100;

/// The paper's benchmark suite at the parameters used for Table III
/// and Fig. 5 (DESIGN.md §3.4).
pub fn paper_suite() -> Vec<Workload> {
    vec![
        bubble_sort(20),
        gemm(6),
        sobel(),
        dhrystone(PAPER_DHRYSTONE_ITERATIONS),
    ]
}

/// Wire names accepted by [`by_name`], in registry order — what the
/// `art9-service` job schema advertises to clients.
pub const WORKLOAD_NAMES: [&str; 8] = [
    "bubble-sort",
    "gemm",
    "sobel",
    "dhrystone",
    "fibonacci",
    "dot-product",
    "nn-mlp",
    "assoc-match",
];

/// Builds a workload from its wire name — how the `art9-service` job
/// schema references this library. `n` overrides the size parameter
/// (array length, matrix dimension, iteration count, …) and is bounded
/// per workload so a remote job cannot request an image that overflows
/// the default TDM or the 9-trit word range; `None` picks the paper's
/// defaults. Returns `None` for unknown names or out-of-range sizes.
pub fn by_name(name: &str, n: Option<usize>) -> Option<Workload> {
    // (default, max) per workload: bubble-sort and dot-product are
    // bounded by the 256-word TDM, gemm by its three n×n matrices,
    // fibonacci by fib(n) staying within the ±9841 word range.
    let sized = |default: usize, max: usize, build: fn(usize) -> Workload| {
        let n = n.unwrap_or(default);
        (1..=max).contains(&n).then(|| build(n))
    };
    match name {
        "bubble-sort" => sized(20, 64, bubble_sort),
        "gemm" => sized(6, 8, gemm),
        "sobel" => Some(sobel()),
        "dhrystone" => sized(PAPER_DHRYSTONE_ITERATIONS, 10_000, dhrystone),
        "fibonacci" => sized(12, 20, fibonacci),
        "dot-product" => sized(16, 100, dot_product),
        // nn-mlp: three n-vectors + two n×n ternary matrices in the
        // 256-word TDM; assoc-match: table + keys + per-key outputs.
        "nn-mlp" => sized(8, 10, nn_mlp),
        "assoc-match" => sized(32, 128, assoc_match),
        _ => None,
    }
}

/// Derives an independent sub-seed for `lane` under `seed` (a
/// SplitMix64 round): how the batch driver hands every workload its
/// own input stream, and how multi-stream constructors split one seed.
pub(crate) fn split_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed.wrapping_add(lane.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random small integers for workload inputs
/// (LCG; keeps the crate free of a hard `rand` dependency and the
/// tables reproducible).
pub(crate) fn lcg_values(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let span = (hi - lo + 1) as u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lo + ((state >> 33) % span) as i64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_four_workloads() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 4);
        let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["bubble-sort", "gemm", "sobel", "dhrystone"]);
    }

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let a = lcg_values(42, 100, -5, 9);
        let b = lcg_values(42, 100, -5, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-5..=9).contains(v)));
        // Different seed differs.
        assert_ne!(a, lcg_values(43, 100, -5, 9));
    }

    #[test]
    fn by_name_covers_the_registry_and_bounds_sizes() {
        for name in WORKLOAD_NAMES {
            let w = by_name(name, None).expect("every registered name builds");
            assert_eq!(w.name, name);
        }
        assert!(by_name("quux", None).is_none());
        // Size overrides apply and are bounded.
        assert!(by_name("bubble-sort", Some(8)).is_some());
        assert!(by_name("bubble-sort", Some(0)).is_none());
        assert!(by_name("bubble-sort", Some(1000)).is_none());
        // fib(21) would overflow the 9-trit word range.
        assert!(by_name("fibonacci", Some(21)).is_none());
    }

    #[test]
    fn verify_error_display() {
        let e = VerifyError {
            workload: "gemm",
            index: 3,
            expected: 7,
            found: 9,
        };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains('3'));
    }
}
