//! Ternary-weight neural-network workloads: matvec and a small
//! quantized MLP with sign activations.
//!
//! Ternary-weight networks (weights in {−1, 0, +1}) are the natural
//! workload of a balanced-ternary machine: a multiply is a negate, a
//! skip, or a pass, so inference reduces to the add/subtract selection
//! the TALU — and the bitplane-SIMD lanes of
//! [`ternary::simd::Word9xN`] — perform as pure plane masking.
//!
//! Two host-side golden paths compute the same inference:
//!
//! * **scalar** — one [`Word9`] at a time, the straightforward loop
//!   ([`TernaryMatrix::matvec_scalar`]);
//! * **SIMD** — output neurons packed into lanes, one fused
//!   [`mac_splat`](ternary::simd::Word9xN::mac_splat) per input
//!   activation ([`TernaryMatrix::matvec_simd`]).
//!
//! Both are pinned to each other and to plain `i64` arithmetic by the
//! tests here; the RV32/ART-9 assembly kernel produced by
//! [`nn_mlp`] is verified against the same expected values at halt on
//! every simulator backend. `art9-bench` measures the SIMD-vs-scalar
//! speedup into the `nn` section of BENCH_ternary.json.

use ternary::simd::{self, LaneWeights, PackedWeights, Word9xN};
use ternary::{Trit, Word9};

use crate::{lcg_values, split_seed, Generator, Workload};

/// A row-major ternary weight matrix with its per-column lane masks
/// precomputed, so the SIMD matvec pays the mask construction once.
#[derive(Debug, Clone)]
pub struct TernaryMatrix {
    rows: usize,
    cols: usize,
    /// Row-major weights, `weights[r * cols + c]`.
    weights: Vec<Trit>,
    /// Word-major packed mask form of the columns across the `rows`
    /// output lanes, the [`simd::matvec`] operand.
    packed: PackedWeights,
}

impl TernaryMatrix {
    /// Builds a matrix from row-major ternary weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or either dimension is
    /// zero.
    pub fn new(rows: usize, cols: usize, weights: Vec<Trit>) -> Self {
        assert!(rows > 0 && cols > 0, "empty ternary matrix");
        assert_eq!(weights.len(), rows * cols, "row-major rows×cols weights");
        let col_masks: Vec<LaneWeights> = (0..cols)
            .map(|c| {
                let column: Vec<Trit> = (0..rows).map(|r| weights[r * cols + c]).collect();
                LaneWeights::new(&column)
            })
            .collect();
        Self {
            rows,
            cols,
            weights,
            packed: PackedWeights::from_columns(&col_masks),
        }
    }

    /// A seeded random ternary matrix (weights uniform over {−1, 0, +1}).
    pub fn seeded(rows: usize, cols: usize, seed: u64) -> Self {
        let weights = lcg_values(seed, rows * cols, -1, 1)
            .into_iter()
            .map(trit_of)
            .collect();
        Self::new(rows, cols, weights)
    }

    /// Number of rows (output neurons).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input activations).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The weight at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn weight(&self, row: usize, col: usize) -> Trit {
        assert!(row < self.rows && col < self.cols);
        self.weights[row * self.cols + col]
    }

    /// Scalar golden path: `y = W · x` one [`Word9`] at a time — for
    /// each output row, walk the columns and add, subtract or skip
    /// `x[c]` by the weight. This is the baseline the SIMD path is
    /// benchmarked against.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_scalar(&self, x: &[Word9]) -> Vec<Word9> {
        assert_eq!(x.len(), self.cols, "input length must match columns");
        (0..self.rows)
            .map(|r| {
                let mut acc = Word9::ZERO;
                for (c, xc) in x.iter().enumerate() {
                    match self.weights[r * self.cols + c] {
                        Trit::P => acc = acc.wrapping_add(*xc),
                        Trit::N => acc = acc.wrapping_sub(*xc),
                        Trit::Z => {}
                    }
                }
                acc
            })
            .collect()
    }

    /// SIMD golden path: the output rows live in [`Word9xN`] lanes and
    /// the whole product runs through the word-major carry-save
    /// kernel [`simd::matvec`] against the precomputed column masks —
    /// no per-trit, per-row, or carry-propagation loops; one full add
    /// per plane word at the very end.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_simd(&self, x: &[Word9]) -> Vec<Word9> {
        assert_eq!(x.len(), self.cols, "input length must match columns");
        simd::matvec(x, &self.packed).to_words()
    }
}

/// A two-layer ternary-weight MLP with sign activations:
/// `y = W2 · sign(W1 · x)`.
///
/// All hidden activations are themselves trits, so the second layer is
/// again pure ternary arithmetic — the "fully ternarized" inference
/// the associative-processing literature targets.
#[derive(Debug, Clone)]
pub struct TernaryMlp {
    /// First layer, `hidden × input`.
    pub w1: TernaryMatrix,
    /// Second layer, `output × hidden`.
    pub w2: TernaryMatrix,
}

impl TernaryMlp {
    /// A seeded square `n → n → n` MLP.
    pub fn seeded(n: usize, seed: u64) -> Self {
        Self {
            w1: TernaryMatrix::seeded(n, n, split_seed(seed, 1)),
            w2: TernaryMatrix::seeded(n, n, split_seed(seed, 2)),
        }
    }

    /// Scalar inference through [`TernaryMatrix::matvec_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn infer_scalar(&self, x: &[Word9]) -> Vec<Word9> {
        let h = sign_words(&self.w1.matvec_scalar(x));
        self.w2.matvec_scalar(&h)
    }

    /// SIMD inference: both layers through
    /// [`TernaryMatrix::matvec_simd`], with the sign activation done
    /// lane-parallel by a [`Word9xN::compare`] against zero.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn infer_simd(&self, x: &[Word9]) -> Vec<Word9> {
        let pre = Word9xN::from_words(&self.w1.matvec_simd(x));
        let h: Vec<Word9> = pre
            .compare(&Word9xN::zero(pre.lanes()))
            .lane_lsts()
            .into_iter()
            .map(|t| Word9::from_i64_wrapping(t.value() as i64))
            .collect();
        self.w2.matvec_simd(&h)
    }
}

/// Sign activation on scalar words.
fn sign_words(v: &[Word9]) -> Vec<Word9> {
    v.iter()
        .map(|w| Word9::from_i64_wrapping(w.sign().value() as i64))
        .collect()
}

fn trit_of(v: i64) -> Trit {
    match v.signum() {
        1 => Trit::P,
        -1 => Trit::N,
        _ => Trit::Z,
    }
}

/// Ternary-weight MLP inference (`y = W2 · sign(W1 · x)`) over an
/// `n → n → n` network, inputs in [−7, 7], with the paper-style
/// self-checking contract: golden outputs recomputed host-side.
///
/// # Panics
///
/// Panics if `n` is outside `1..=10` (three `n`-vectors plus two `n×n`
/// matrices must fit the 256-word TDM; outputs `|y| ≤ n` always fit
/// 9 trits).
pub fn nn_mlp(n: usize) -> Workload {
    nn_mlp_seeded(n, 47)
}

/// [`nn_mlp`] with weights and inputs drawn from `seed`.
///
/// # Panics
///
/// As [`nn_mlp`].
pub fn nn_mlp_seeded(n: usize, seed: u64) -> Workload {
    assert!(
        (1..=10).contains(&n),
        "nn-mlp data must fit the default TDM"
    );
    let mlp = TernaryMlp::seeded(n, seed);
    let xs = lcg_values(split_seed(seed, 0), n, -7, 7);

    // Golden outputs in plain integers (the SIMD and scalar Word9
    // paths are pinned to this in the tests).
    let h: Vec<i64> = (0..n)
        .map(|r| {
            let acc: i64 = (0..n)
                .map(|c| mlp.w1.weight(r, c).value() as i64 * xs[c])
                .sum();
            acc.signum()
        })
        .collect();
    let expected: Vec<i64> = (0..n)
        .map(|r| {
            (0..n)
                .map(|c| mlp.w2.weight(r, c).value() as i64 * h[c])
                .sum()
        })
        .collect();

    let fmt = |v: &[i64]| v.iter().map(i64::to_string).collect::<Vec<_>>().join(", ");
    let row_major = |m: &TernaryMatrix| -> Vec<i64> {
        (0..n)
            .flat_map(|r| (0..n).map(move |c| m.weight(r, c).value() as i64))
            .collect()
    };
    let source = format!(
        "
# ternary-weight MLP inference: out = w2 x sign(w1 x x), {n}-{n}-{n}
        .data
x:      .word {wx}
w1:     .word {w1}
w2:     .word {w2}
h:      .zero {nb}
out:    .zero {nb}
        .text
        # layer 1: h = sign(w1 x x)
        la   a0, w1             # weight walk (row-major)
        la   a1, h
        li   t0, {n}            # rows remaining
l1_row:
        la   a2, x
        li   a3, 0              # acc
        li   t1, {n}            # cols remaining
l1_col:
        lw   a4, 0(a0)          # ternary weight
        lw   a5, 0(a2)          # activation
        mul  a4, a4, a5
        add  a3, a3, a4
        addi a0, a0, 4
        addi a2, a2, 4
        addi t1, t1, -1
        bgtz t1, l1_col
        # sign activation onto {{-1, 0, +1}}
        li   a4, 0
        bltz a3, l1_neg
        bgtz a3, l1_pos
        j    l1_store
l1_neg:
        li   a4, -1
        j    l1_store
l1_pos:
        li   a4, 1
l1_store:
        sw   a4, 0(a1)
        addi a1, a1, 4
        addi t0, t0, -1
        bgtz t0, l1_row
        # layer 2: out = w2 x h
        la   a0, w2
        la   a1, out
        li   t0, {n}
l2_row:
        la   a2, h
        li   a3, 0
        li   t1, {n}
l2_col:
        lw   a4, 0(a0)
        lw   a5, 0(a2)
        mul  a4, a4, a5
        add  a3, a3, a4
        addi a0, a0, 4
        addi a2, a2, 4
        addi t1, t1, -1
        bgtz t1, l2_col
        sw   a3, 0(a1)
        addi a1, a1, 4
        addi t0, t0, -1
        bgtz t0, l2_row
        ebreak
",
        wx = fmt(&xs),
        w1 = fmt(&row_major(&mlp.w1)),
        w2 = fmt(&row_major(&mlp.w2)),
        nb = 4 * n,
    );

    Workload {
        generator: Some(Generator::NnMlp { n }),
        name: "nn-mlp",
        description: format!("ternary-weight {n}-{n}-{n} MLP inference, sign activations"),
        source,
        // x, w1, w2 and the hidden scratch precede the output buffer.
        output_offset: 4 * (2 * n * n + 2 * n),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_compiler::translate;
    use art9_sim::SimBuilder;
    use rv32::Machine;

    fn words(v: &[i64]) -> Vec<Word9> {
        v.iter().map(|&x| Word9::from_i64_wrapping(x)).collect()
    }

    #[test]
    fn matvec_simd_matches_scalar_and_integers() {
        for (rows, cols, seed) in [
            (1, 1, 7u64),
            (5, 3, 11),
            (6, 6, 13),
            (13, 9, 17),
            (40, 25, 19),
        ] {
            let m = TernaryMatrix::seeded(rows, cols, seed);
            let x = words(&lcg_values(seed ^ 0xABCD, cols, -7, 7));
            let scalar = m.matvec_scalar(&x);
            let simd = m.matvec_simd(&x);
            assert_eq!(simd, scalar, "{rows}x{cols}");
            for (r, got) in simd.iter().enumerate() {
                let expect: i64 = (0..cols)
                    .map(|c| m.weight(r, c).value() as i64 * x[c].to_i64())
                    .sum();
                assert_eq!(got.to_i64(), expect, "row {r}");
            }
        }
    }

    #[test]
    fn mlp_simd_and_scalar_inference_agree() {
        for seed in 0..20 {
            let mlp = TernaryMlp::seeded(9, seed);
            let x = words(&lcg_values(seed.wrapping_mul(77), 9, -7, 7));
            assert_eq!(mlp.infer_simd(&x), mlp.infer_scalar(&x), "seed {seed}");
        }
    }

    #[test]
    fn workload_expected_matches_both_golden_paths() {
        let w = nn_mlp(8);
        let Some(Generator::NnMlp { n }) = w.generator else {
            panic!("nn generator");
        };
        let mlp = TernaryMlp::seeded(n, 47);
        let x = words(&lcg_values(split_seed(47, 0), n, -7, 7));
        let simd: Vec<i64> = mlp.infer_simd(&x).iter().map(Word9::to_i64).collect();
        let scalar: Vec<i64> = mlp.infer_scalar(&x).iter().map(Word9::to_i64).collect();
        assert_eq!(simd, w.expected);
        assert_eq!(scalar, w.expected);
    }

    #[test]
    fn nn_mlp_on_both_machines() {
        let w = nn_mlp(6);
        let rv = w.rv32_program().unwrap();
        let mut m = Machine::new(&rv);
        m.run(10_000_000).unwrap();
        w.verify_rv32(&m).unwrap();

        let t = translate(&rv).unwrap();
        let mut f = SimBuilder::new(&t.program).build_functional();
        f.run(10_000_000).unwrap();
        w.verify_art9(f.state()).unwrap();

        let mut p = SimBuilder::new(&t.program).build_pipelined();
        p.run(20_000_000).unwrap();
        w.verify_art9(p.state()).unwrap();
    }

    #[test]
    fn reseeding_changes_inputs_and_stays_self_consistent() {
        let w = nn_mlp(5);
        let w2 = w.with_input_seed(99);
        assert_ne!(w.source, w2.source);
        assert_eq!(w2.name, "nn-mlp");
        // The reseeded instance still verifies end to end.
        let mut m = Machine::new(&w2.rv32_program().unwrap());
        m.run(10_000_000).unwrap();
        w2.verify_rv32(&m).unwrap();
    }
}
