//! Measured switching activity of the paper workloads.
//!
//! The dynamic half of Table IV: each workload is translated, run on
//! the **cycle-accurate pipelined** core with the
//! [`EnergyAccounting`] observer attached, and verified — yielding the
//! trit-flip counts (per opcode, per datapath structure) plus the
//! cycle count of one and the same execution. `art9-bench` feeds these
//! into `art9_hw::activity` to produce energy-per-workload, per-class
//! EPI and the measured DMIPS/W (see `docs/ENERGY.md`).
//!
//! The pipelined backend is deliberate: it exercises the write-back
//! side channel of the 5-stage model, and the flip counts are
//! architectural — any backend reports the same ones (property-tested
//! in `art9-sim` and fuzzed by the `energy` oracle), so the cycle
//! count is the only backend-specific ingredient.

use std::error::Error;
use std::sync::{Arc, Mutex};

use art9_sim::observers::EnergyAccounting;
use art9_sim::{Backend, Budget, SimBuilder, SimError};

use crate::batch::DEFAULT_MAX_STEPS;
use crate::Workload;

/// One workload's measured execution: timing plus switching activity.
#[derive(Debug, Clone)]
pub struct MeasuredActivity {
    /// Workload name.
    pub workload: &'static str,
    /// Pipelined cycles of the measured (and verified) run.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// The flip accumulators, per opcode and structure.
    pub accounting: EnergyAccounting,
}

/// Runs `w` on the pipelined core with energy accounting attached,
/// verifies the output, and returns timing + activity
/// (budget: [`DEFAULT_MAX_STEPS`]).
///
/// # Errors
///
/// Translation errors, simulator faults/timeout, or output
/// verification failure.
pub fn measure_activity(w: &Workload) -> Result<MeasuredActivity, Box<dyn Error>> {
    measure_activity_with(w, DEFAULT_MAX_STEPS)
}

/// [`measure_activity`] with an explicit cycle budget.
///
/// # Errors
///
/// As [`measure_activity`].
pub fn measure_activity_with(
    w: &Workload,
    max_cycles: u64,
) -> Result<MeasuredActivity, Box<dyn Error>> {
    let rv = w.rv32_program()?;
    let t = art9_compiler::translate(&rv)?;
    let energy = Arc::new(Mutex::new(EnergyAccounting::new()));
    let mut core = SimBuilder::new(&t.program)
        .backend(Backend::Pipelined)
        .observer(energy.clone())
        .build();
    let summary = core.run_for(Budget::Steps(max_cycles))?;
    if summary.halt.is_none() {
        return Err(Box::new(SimError::Timeout { limit: max_cycles }));
    }
    w.verify_art9(core.state())?;
    let stats = core.pipeline_stats().expect("pipelined backend is timed");
    let accounting = energy.lock().expect("observer lock").clone();
    Ok(MeasuredActivity {
        workload: w.name,
        cycles: stats.cycles,
        instructions: summary.retired,
        accounting,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bubble_sort, dot_product};

    #[test]
    fn measured_run_is_verified_and_consistent() {
        let m = measure_activity_with(&dot_product(6), 10_000_000).unwrap();
        assert_eq!(m.workload, "dot-product");
        assert!(m.cycles >= m.instructions, "pipeline cannot beat 1 CPI");
        let totals = m.accounting.totals();
        assert_eq!(totals.retired, m.instructions);
        assert!(totals.regfile > 0, "a real run flips register trits");
        assert!(totals.fetch > 0);
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = measure_activity_with(&bubble_sort(8), 10_000_000).unwrap();
        let b = measure_activity_with(&bubble_sort(8), 10_000_000).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.accounting.per_opcode(), b.accounting.per_opcode());
    }

    #[test]
    fn activity_tracks_workload_size() {
        let small = measure_activity_with(&bubble_sort(6), 10_000_000).unwrap();
        let large = measure_activity_with(&bubble_sort(12), 10_000_000).unwrap();
        assert!(large.accounting.totals().regfile > small.accounting.totals().regfile);
        assert!(large.accounting.totals().tdm > small.accounting.totals().tdm);
    }
}
