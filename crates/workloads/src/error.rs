//! Typed errors for batch and service execution.
//!
//! One shared enum covers every way a workload run can fail — from
//! source parsing through translation, simulation and output
//! verification — so the batch driver ([`crate::batch::BatchRunner`])
//! and the `art9-service` session scheduler report job-level failures
//! through the same type. Simulator faults keep the underlying
//! [`art9_sim::SimError`] intact (reachable through
//! [`std::error::Error::source`]) instead of flattening it to a string.

use std::error::Error;
use std::fmt;

use art9_sim::SimError;

use crate::VerifyError;

/// Why one workload run (or service job) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The RV32 assembly source did not parse.
    Parse {
        /// Workload name.
        workload: String,
        /// Assembler diagnostic.
        detail: String,
    },
    /// RV32 → ART-9 translation failed.
    Translate {
        /// Workload name.
        workload: String,
        /// Translator diagnostic.
        detail: String,
    },
    /// The ART-9 simulator faulted or exhausted its budget.
    Sim {
        /// Workload name.
        workload: String,
        /// Configuration name (see `ExecConfig::name`).
        config: &'static str,
        /// The underlying simulator error, preserved whole.
        source: SimError,
    },
    /// The RV32 machine or one of its cycle models faulted.
    Rv32 {
        /// Workload name.
        workload: String,
        /// Machine diagnostic.
        detail: String,
    },
    /// The output region did not match the golden reference.
    Verify(VerifyError),
    /// A prerequisite stage never produced its artifact (e.g. an ART-9
    /// run was requested but no translation exists).
    Unavailable {
        /// Workload name.
        workload: String,
        /// What was missing.
        detail: String,
    },
}

impl WorkloadError {
    /// The name of the workload the error belongs to.
    pub fn workload(&self) -> &str {
        match self {
            WorkloadError::Parse { workload, .. }
            | WorkloadError::Translate { workload, .. }
            | WorkloadError::Sim { workload, .. }
            | WorkloadError::Rv32 { workload, .. }
            | WorkloadError::Unavailable { workload, .. } => workload,
            WorkloadError::Verify(e) => e.workload,
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Parse { workload, detail } => {
                write!(f, "{workload}: parse: {detail}")
            }
            WorkloadError::Translate { workload, detail } => {
                write!(f, "{workload}: translate: {detail}")
            }
            WorkloadError::Sim {
                workload,
                config,
                source,
            } => write!(f, "{workload} [{config}]: {source}"),
            WorkloadError::Rv32 { workload, detail } => {
                write!(f, "{workload}: rv32: {detail}")
            }
            WorkloadError::Verify(e) => e.fmt(f),
            WorkloadError::Unavailable { workload, detail } => {
                write!(f, "{workload}: {detail}")
            }
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Sim { source, .. } => Some(source),
            WorkloadError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VerifyError> for WorkloadError {
    fn from(e: VerifyError) -> Self {
        WorkloadError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_errors_keep_their_source() {
        let e = WorkloadError::Sim {
            workload: "gemm".into(),
            config: "art9-functional",
            source: SimError::Timeout { limit: 100 },
        };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("art9-functional"));
        let source = e.source().expect("sim errors carry a source");
        assert!(source.to_string().contains("100 steps"));
        assert_eq!(e.workload(), "gemm");
    }

    #[test]
    fn verify_errors_convert_and_chain() {
        let ve = VerifyError {
            workload: "sobel",
            index: 2,
            expected: 1,
            found: 0,
        };
        let e = WorkloadError::from(ve.clone());
        assert_eq!(e.to_string(), ve.to_string());
        assert!(e.source().is_some());
        assert_eq!(e.workload(), "sobel");
    }
}
