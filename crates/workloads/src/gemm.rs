//! General matrix multiplication (paper §V-A; the Table III column
//! where ART-9's lack of a hardware multiplier shows — translated code
//! calls the `__mul` runtime while PicoRV32's RV32IM uses its
//! sequential multiplier).
//!
//! `C = A × B` over `n×n` matrices of small non-negative integers,
//! walked with incremental pointers only (the pointer idiom the
//! address re-scaler accepts): the A-row pointer advances by one
//! element per `k`, the B pointer by one row per `k` and rewinds by
//! `4n² − 4` per `j`.

use crate::{lcg_values, split_seed, Generator, Workload};

/// Builds the `n×n` GEMM workload with the paper suite's canonical
/// input streams.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 7` (three `n²` matrices must fit the TDM
/// and products must stay inside the 9-trit range).
pub fn gemm(n: usize) -> Workload {
    gemm_streams(n, 11, 13)
}

/// [`gemm`] with both input matrices drawn from `seed` (one derived
/// stream per matrix).
///
/// # Panics
///
/// As [`gemm`].
pub fn gemm_seeded(n: usize, seed: u64) -> Workload {
    gemm_streams(n, split_seed(seed, 0), split_seed(seed, 1))
}

fn gemm_streams(n: usize, seed_a: u64, seed_b: u64) -> Workload {
    assert!(
        (2..=7).contains(&n),
        "gemm supports 2..=7 (TDM/range limits)"
    );
    let a = lcg_values(seed_a, n * n, 0, 6);
    let b = lcg_values(seed_b, n * n, 0, 6);
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }

    let fmt_words = |v: &[i64]| v.iter().map(i64::to_string).collect::<Vec<_>>().join(", ");
    let (wa, wb) = (fmt_words(&a), fmt_words(&b));
    let row_bytes = 4 * n;
    let col_rewind = 4 * n * n - 4; // back over n rows, forward one column
    let source = format!(
        "
# gemm: C = A x B, {n}x{n}
        .data
mata:   .word {wa}
matb:   .word {wb}
matc:   .zero {csize}
        .text
        la   a0, mata           # A[i][k] walker
        la   a1, matb           # B[k][j] walker
        la   a2, matc           # C walker
        li   s3, {n}
        li   a3, 0              # i
i_loop:
        li   a4, 0              # j
j_loop:
        li   a6, 0              # acc
        li   a5, 0              # k
k_loop:
        lw   a7, 0(a0)
        lw   s2, 0(a1)
        mul  a7, a7, s2
        add  a6, a6, a7
        addi a0, a0, 4
        addi a1, a1, {row_bytes}
        addi a5, a5, 1
        blt  a5, s3, k_loop
        sw   a6, 0(a2)
        addi a2, a2, 4
        addi a0, a0, -{row_bytes}   # back to row start
        addi a1, a1, -{col_rewind}  # next column of B
        addi a4, a4, 1
        blt  a4, s3, j_loop
        addi a0, a0, {row_bytes}    # next row of A
        addi a1, a1, -{row_bytes}   # back to column 0 of B
        addi a3, a3, 1
        blt  a3, s3, i_loop
        ebreak
",
        csize = 4 * n * n,
    );

    Workload {
        generator: Some(Generator::Gemm { n }),
        name: "gemm",
        description: format!("{n}x{n} integer matrix multiply (software mul on ART-9)"),
        source,
        output_offset: 2 * 4 * n * n,
        expected: c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_compiler::translate;
    use art9_sim::SimBuilder;
    use rv32::Machine;

    #[test]
    fn multiplies_on_rv32() {
        let w = gemm(4);
        let mut m = Machine::new(&w.rv32_program().unwrap());
        m.run(1_000_000).unwrap();
        w.verify_rv32(&m).unwrap();
    }

    #[test]
    fn multiplies_on_art9() {
        let w = gemm(4);
        let t = translate(&w.rv32_program().unwrap()).unwrap();
        assert!(t.report.art9_builtin_instructions > 0, "links __mul");
        let mut sim = SimBuilder::new(&t.program).build_functional();
        sim.run(4_000_000).unwrap();
        w.verify_art9(sim.state()).unwrap();
    }

    #[test]
    fn six_by_six_paper_parameterization() {
        let w = gemm(6);
        assert_eq!(w.expected.len(), 36);
        // Products of 6x6 small ints stay comfortably in 9-trit range.
        assert!(w.expected.iter().all(|v| v.abs() <= 9841));
    }
}
