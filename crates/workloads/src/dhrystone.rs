//! A Dhrystone-2.1-shaped kernel (paper §V-A, Tables II/III).
//!
//! The original Dhrystone cannot run unmodified on a 9-trit machine
//! (32-bit constants, byte strings), so this kernel reproduces its
//! *structure and operation mix* per York's analysis — global/record/
//! string traffic, a procedure-call chain over the stack, word-wise
//! string comparison, and exactly one multiply and one divide per
//! iteration — scaled to the translation contract (word-addressed
//! data, values within ±9841). DESIGN.md §3.3 records the
//! substitution; DMIPS arithmetic (÷1757) is unchanged.
//!
//! Per iteration (mirroring Dhrystone's `main` loop):
//!
//! 1. `Proc_5`/`Proc_4`: character globals and the boolean global;
//! 2. `Func_2`-style word-string comparison of two 12-word strings;
//! 3. `Proc_7`: `int3 = int1 + 2 + int2` through argument registers;
//! 4. `Proc_8`: array writes through a scaled index plus an 8-word
//!    sweep over the second array;
//! 5. `Proc_1`: 12-word record copy with field fix-ups;
//! 6. `Proc_2`: conditional integer update against a char global;
//! 7. the `Int_2_Loc * Int_1_Loc` / division tail of the original.

use crate::{lcg_values, Generator, Workload};

/// Dhrystone's DMIPS divisor: VAX 11/780 Dhrystones per second.
pub const DHRYSTONE_DIVISOR: f64 = 1757.0;

const STR_WORDS: usize = 12;
const REC_WORDS: usize = 12;
const ARR2_WORDS: usize = 64;

/// Builds the Dhrystone-style kernel running `iterations` times.
///
/// # Panics
///
/// Panics if `iterations` is 0 or greater than 5000 (cycle budget).
pub fn dhrystone(iterations: usize) -> Workload {
    dhrystone_seeded(iterations, 31)
}

/// [`dhrystone`] with the string contents drawn from `seed` (the
/// record and array data are structural and stay fixed).
///
/// # Panics
///
/// As [`dhrystone`].
pub fn dhrystone_seeded(iterations: usize, seed: u64) -> Workload {
    assert!((1..=5000).contains(&iterations));

    // Strings: equal for six words, then diverge (Func_2 comparison
    // runs seven words deep every iteration).
    let mut str1 = lcg_values(seed, STR_WORDS, 65, 90);
    let mut str2 = str1.clone();
    str1[6] = 70;
    str2[6] = 81;
    let rec_a: Vec<i64> = (0..REC_WORDS as i64).map(|k| 10 + k).collect();

    // --- golden reference (mirrors the assembly exactly) --------------
    #[allow(unused_assignments)] // globals are rewritten at each iteration start
    let (int1, int2, int3, int_glob, bool_glob, ch1, ch2, rec_b) = {
        let (mut int1, mut int2, mut int3);
        let mut int_glob = 0i64;
        let mut bool_glob = 0i64;
        let mut ch1 = 0i64;
        let mut ch2 = 0i64;
        let mut arr1 = [0i64; 8];
        let mut arr2 = [0i64; ARR2_WORDS];
        let mut rec_b = vec![0i64; REC_WORDS];
        let mut iters = iterations;
        loop {
            // Proc_5 / Proc_4.
            ch1 = 65;
            bool_glob = 0;
            if ch1 == 65 {
                bool_glob = 1;
            }
            ch2 = 66;
            int1 = 2;
            int2 = 3;
            // Func_2: word-wise string comparison.
            let equal = str1 == str2;
            if !equal {
                int2 += 1;
            }
            // Proc_7.
            int3 = int1 + 2 + int2;
            // Proc_8.
            arr1[int1 as usize] = int3;
            arr1[int1 as usize + 1] = arr1[int1 as usize];
            for k in 0..8 {
                arr2[int1 as usize + k] = int3 + k as i64;
            }
            int_glob = 5;
            // Proc_1: record copy + fix-ups.
            rec_b.copy_from_slice(&rec_a);
            rec_b[2] = 5;
            rec_b[3] = rec_a[3] + 1;
            // Proc_2.
            if ch1 == 65 {
                int1 = int1 + 9 - int2;
            }
            // Multiply/divide tail.
            int2 *= int1;
            let q = int2 / int3;
            int2 %= int3;
            int1 = q;
            iters -= 1;
            if iters == 0 {
                let _ = (arr1, arr2); // architectural state, not checked
                break (int1, int2, int3, int_glob, bool_glob, ch1, ch2, rec_b);
            }
        }
    };
    let expected = vec![int_glob, bool_glob, ch1, ch2, int1, int2, int3, rec_b[3]];

    let fmt = |v: &[i64]| v.iter().map(i64::to_string).collect::<Vec<_>>().join(", ");
    let (s1, s2, ra) = (fmt(&str1), fmt(&str2), fmt(&rec_a));

    let source = format!(
        "
# dhrystone-shaped kernel, {iterations} iterations
        .data
glob:   .word 0, 0, 0, 0        # int_glob, bool_glob, ch1, ch2
arr1:   .zero 32
arr2:   .zero {arr2_bytes}
rec_a:  .word {ra}
rec_b:  .zero {rec_bytes}
str1:   .word {s1}
str2:   .word {s2}
outbuf: .zero 32
        .text
        li   s4, {iterations}
main_loop:
        # Proc_5: ch1 = 'A'; bool_glob = false
        la   a0, glob
        li   a4, 65
        sw   a4, 8(a0)
        sw   zero, 4(a0)
        # Proc_4: bool_glob |= (ch1 == 'A'); ch2 = 'B'
        lw   a4, 8(a0)
        li   a5, 65
        bne  a4, a5, p4_done
        li   a4, 1
        sw   a4, 4(a0)
p4_done:
        li   a4, 66
        sw   a4, 12(a0)
        li   s2, 2              # int1
        li   s3, 3              # int2
        # Func_2: compare str1/str2 word-wise
        la   a0, str1
        la   a1, str2
        li   a3, 1              # equal so far
        li   a7, {str_words}
f2_loop:
        lw   a4, 0(a0)
        lw   a5, 0(a1)
        bne  a4, a5, f2_differ
        addi a0, a0, 4
        addi a1, a1, 4
        addi a7, a7, -1
        bgtz a7, f2_loop
        j    f2_done
f2_differ:
        li   a3, 0
f2_done:
        bnez a3, f2_equal
        addi s3, s3, 1          # strings differ: int2 += 1
f2_equal:
        # Proc_7(int1, int2) -> int3
        mv   a4, s2
        mv   a5, s3
        call proc7
        call proc8
        call proc1
        # Proc_2: if ch1 == 'A' then int1 += 9 - int2
        la   a0, glob
        lw   a4, 8(a0)
        li   a5, 65
        bne  a4, a5, p2_done
        addi s2, s2, 9
        sub  s2, s2, s3
p2_done:
        # int2 *= int1; int1 = int2 / int3; int2 = int2 % int3
        mul  s3, s3, s2
        div  a4, s3, a2
        rem  s3, s3, a2
        mv   s2, a4
        addi s4, s4, -1
        bgtz s4, main_loop
        # publish results
        la   a0, glob
        la   a1, outbuf
        lw   a4, 0(a0)
        sw   a4, 0(a1)
        lw   a4, 4(a0)
        sw   a4, 4(a1)
        lw   a4, 8(a0)
        sw   a4, 8(a1)
        lw   a4, 12(a0)
        sw   a4, 12(a1)
        sw   s2, 16(a1)
        sw   s3, 20(a1)
        sw   a2, 24(a1)
        la   a0, rec_b
        lw   a4, 12(a0)
        sw   a4, 28(a1)
        ebreak

proc7:                          # int3 = int1 + 2 + int2 (in a2)
        addi a2, a4, 2
        add  a2, a2, a5
        ret

proc8:                          # array traffic through a scaled index
        addi sp, sp, -4
        sw   ra, 0(sp)
        slli a6, s2, 2
        la   a0, arr1
        add  a0, a0, a6
        sw   a2, 0(a0)          # arr1[int1] = int3
        lw   a4, 0(a0)
        sw   a4, 4(a0)          # arr1[int1+1] = arr1[int1]
        la   a0, arr2
        slli a6, s2, 2
        add  a0, a0, a6
        mv   a4, a2
        li   a7, 8
p8_loop:
        sw   a4, 0(a0)
        addi a4, a4, 1
        addi a0, a0, 4
        addi a7, a7, -1
        bgtz a7, p8_loop
        la   a0, glob
        li   a4, 5
        sw   a4, 0(a0)          # int_glob = 5
        lw   ra, 0(sp)
        addi sp, sp, 4
        ret

proc1:                          # record copy rec_a -> rec_b + fix-ups
        la   a0, rec_a
        la   a1, rec_b
        li   a7, {rec_words}
p1_loop:
        lw   a4, 0(a0)
        sw   a4, 0(a1)
        addi a0, a0, 4
        addi a1, a1, 4
        addi a7, a7, -1
        bgtz a7, p1_loop
        la   a0, rec_a
        la   a1, rec_b
        li   a4, 5
        sw   a4, 8(a1)          # rec_b.field2 = 5
        lw   a4, 12(a0)
        addi a4, a4, 1
        sw   a4, 12(a1)         # rec_b.field3 = rec_a.field3 + 1
        ret
",
        arr2_bytes = 4 * ARR2_WORDS,
        rec_bytes = 4 * REC_WORDS,
        str_words = STR_WORDS,
        rec_words = REC_WORDS,
    );

    // outbuf byte offset within the data section.
    let output_offset = 16 + 32 + 4 * ARR2_WORDS + 4 * REC_WORDS * 2 + 4 * STR_WORDS * 2;

    Workload {
        generator: Some(Generator::Dhrystone { iterations }),
        name: "dhrystone",
        description: format!("dhrystone-2.1-shaped kernel, {iterations} iterations"),
        source,
        output_offset,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art9_compiler::translate;
    use art9_sim::SimBuilder;
    use rv32::Machine;

    #[test]
    fn runs_on_rv32() {
        let w = dhrystone(3);
        let mut m = Machine::new(&w.rv32_program().unwrap());
        m.run(10_000_000).unwrap();
        w.verify_rv32(&m).unwrap();
    }

    #[test]
    fn runs_on_art9() {
        let w = dhrystone(3);
        let t = translate(&w.rv32_program().unwrap()).unwrap();
        let mut sim = SimBuilder::new(&t.program).build_functional();
        sim.run(10_000_000).unwrap();
        w.verify_art9(sim.state()).unwrap();
    }

    #[test]
    fn expected_values_are_the_dhrystone_invariants() {
        let w = dhrystone(100);
        // int_glob, bool_glob, ch1, ch2, int1, int2, int3, rec_b[3].
        assert_eq!(w.expected, vec![5, 1, 65, 66, 3, 4, 8, 14]);
    }

    #[test]
    fn iteration_count_scales_runtime() {
        let w1 = dhrystone(1);
        let w5 = dhrystone(5);
        let mut m1 = Machine::new(&w1.rv32_program().unwrap());
        m1.run(10_000_000).unwrap();
        let mut m5 = Machine::new(&w5.rv32_program().unwrap());
        m5.run(10_000_000).unwrap();
        assert!(m5.instret() > 4 * m1.instret());
    }
}
