//! Whole-domain numeric strategies (`proptest::num::i64::ANY`, …).

macro_rules! any_modules {
    ($($mod_name:ident => $t:ty),* $(,)?) => {$(
        /// Strategies for this primitive type.
        pub mod $mod_name {
            use crate::strategy::Strategy;
            use crate::TestRng;

            /// Strategy covering the type's entire domain.
            #[derive(Debug, Clone, Copy)]
            pub struct Any;

            /// The canonical [`Any`] instance.
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

any_modules! {
    i8 => i8,
    i16 => i16,
    i32 => i32,
    i64 => i64,
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    usize => usize,
    isize => isize,
}
