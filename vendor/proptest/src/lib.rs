//! Offline shim for the subset of [proptest](https://docs.rs/proptest)
//! this workspace uses.
//!
//! The build environment has no network access, so the workspace
//! vendors an API-compatible substitute instead of the real crate:
//! random generation with a deterministic per-test seed, but **no
//! shrinking** and no persistence of failing cases. The surface kept
//! compatible:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter` / `boxed`;
//! * range strategies (`-10i32..=10`, `0usize..4`), tuple strategies
//!   (up to 6 elements), [`strategy::Just`], weighted and unweighted
//!   [`prop_oneof!`];
//! * [`collection::vec`] with exact, `a..b` and `a..=b` sizes;
//! * [`num`]`::<prim>::ANY`;
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header, and
//!   the `prop_assert*` macros.
//!
//! Swapping the real crate back in is a one-line change in the root
//! `Cargo.toml`'s `[workspace.dependencies]`.

pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic test RNG (SplitMix64). Seeded from the test name so
/// failures reproduce across runs without any persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed helper: FNV-1a over a test name.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..=hi` (inclusive), computed in i128 so the
    /// full i64/u64 ranges work.
    pub fn gen_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        if span == 0 {
            // Full 128-bit span cannot happen from 64-bit primitives.
            return lo;
        }
        let r = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (r % span) as i128
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategy_stays_in_range() {
        let mut rng = TestRng::new(1);
        let s = -5i64..=5;
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((-5..=5).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(v in 0u32..100, w in crate::num::i64::ANY) {
            prop_assert!(v < 100);
            let _ = w;
        }
    }
}
