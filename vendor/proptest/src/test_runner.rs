//! Test-runner configuration and the `proptest!` / `prop_assert*`
//! macros.

/// How many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Declare property tests.
///
/// The `#[test]` in the example is the macro's real-world usage shape
/// (it expands to a test function); as a doctest the block is
/// compile-checked only.
///
/// ```no_run
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in -100i64..=100, b in -100i64..=100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: one expansion per test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::TestRng::seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut rng = $crate::TestRng::new(seed);
            // A tuple of strategies is itself a strategy; evaluate the
            // strategy expressions once, generate per case.
            let strategies = ($($strat,)+);
            for _case in 0..config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Property assertion (plain).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property assertion (equality).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property assertion (inequality).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
