//! The [`Strategy`] trait and its combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A boxed, type-erased strategy (what [`Strategy::boxed`] returns and
/// what `prop_oneof!` unions contain).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree and no shrinking:
/// `generate` directly produces one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true. Gives up (panics)
    /// after 10 000 consecutive rejections, quoting `whence`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): predicate rejected 10000 values in a row",
            self.whence
        );
    }
}

/// Weighted choice between boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union from `(weight, strategy)` pairs. Panics if empty or if
    /// all weights are zero.
    pub fn weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted variant"
        );
        Union { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Weighted or unweighted choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}
