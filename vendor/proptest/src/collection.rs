//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification: exact, `a..b` or `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range_i128(self.size.lo as i128, self.size.hi as i128) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
