//! Offline shim for the subset of [criterion](https://docs.rs/criterion)
//! this workspace uses.
//!
//! The build environment has no network access, so the workspace
//! vendors a small, API-compatible timing harness instead of the real
//! crate: fixed warm-up, a wall-clock measurement budget per benchmark,
//! mean ns/iteration (no statistics, no HTML reports). Kept compatible:
//!
//! * [`Criterion::bench_function`] / [`Criterion::benchmark_group`];
//! * [`BenchmarkGroup::throughput`] with [`Throughput::Elements`] /
//!   [`Throughput::Bytes`];
//! * [`Bencher::iter`], [`black_box`], `criterion_group!`,
//!   `criterion_main!`.
//!
//! Binaries built against the shim honour `--bench <filter>` substring
//! filtering and a `--quick` flag that shrinks the measurement budget;
//! unknown flags (as passed by `cargo bench`/`cargo test`) are ignored.

use std::time::{Duration, Instant};

/// Opaque value barrier — re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    measured: Duration,
    iterations: u64,
    budget: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly until the measurement budget is exhausted,
    /// recording the mean cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + per-iteration cost probe.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let per_batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1 << 20);
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < self.budget {
            for _ in 0..per_batch {
                black_box(f());
            }
            iterations += per_batch as u64;
        }
        self.measured = start.elapsed();
        self.iterations = iterations.max(1);
    }
}

/// Collects the results of one named benchmark scope.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut budget = Duration::from_millis(300);
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" => {
                    // `cargo bench` appends `--bench`; a following bare
                    // word is a name filter.
                    if let Some(next) = args.next() {
                        if !next.starts_with('-') {
                            filter = Some(next);
                        }
                    }
                }
                "--quick" | "--test" => budget = Duration::from_millis(20),
                _ if !a.starts_with('-') => filter = Some(a),
                _ => {}
            }
        }
        Criterion { filter, budget }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(&name, None, self.filter.as_deref(), self.budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used for rate reporting on
    /// subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(
            &full,
            self.throughput,
            self.parent.filter.as_deref(),
            self.parent.budget,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    filter: Option<&str>,
    budget: Duration,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        measured: Duration::ZERO,
        iterations: 0,
        budget,
    };
    f(&mut b);
    if b.iterations == 0 {
        // The closure never called `iter`.
        println!("{name:<44} (no measurement)");
        return;
    }
    let ns = b.measured.as_nanos() as f64 / b.iterations as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{name:<44} {ns:>14.1} ns/iter {rate:>14.3e} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{name:<44} {ns:>14.1} ns/iter {rate:>14.3e} B/s");
        }
        None => println!("{name:<44} {ns:>14.1} ns/iter"),
    }
}

/// Declares a benchmark group function running each listed bench
/// function against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion {
            filter: None,
            budget: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_filtering_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            budget: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.bench_function("skipped", |_b| ran = true);
        g.finish();
        assert!(!ran);
    }
}
