//! Offline shim for the subset of [rayon](https://docs.rs/rayon) this
//! workspace uses.
//!
//! The build environment has no network access, so the workspace
//! vendors a small data-parallelism layer instead of the real crate.
//! It provides real OS-thread parallelism (scoped threads over
//! contiguous chunks, one per available core) but no work stealing.
//! Kept compatible:
//!
//! * `vec.into_par_iter().map(f).collect::<Vec<_>>()`;
//! * `slice.par_iter().map(f).collect::<Vec<_>>()`;
//! * [`join`], [`current_num_threads`].
//!
//! Ordering: `collect` preserves the input order, like rayon's indexed
//! parallel iterators.

use std::num::NonZeroUsize;
use std::thread;

pub mod prelude {
    //! Traits to bring parallel-iterator methods into scope.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: joined closure panicked"))
    })
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel (at `collect` time).
    pub fn map<O, F>(self, f: F) -> MapParIter<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        MapParIter {
            items: self.items,
            f,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; the map runs when collected.
pub struct MapParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> MapParIter<T, F> {
    /// Runs the map across worker threads, preserving input order.
    pub fn collect<O, C>(self) -> C
    where
        T: Send,
        O: Send,
        F: Fn(T) -> O + Sync,
        C: FromIterator<O>,
    {
        self.collect_with_workers(current_num_threads())
    }

    /// [`collect`](Self::collect) with an explicit worker count (also
    /// lets single-core hosts exercise the fan-out path in tests).
    pub fn collect_with_workers<O, C>(self, workers: usize) -> C
    where
        T: Send,
        O: Send,
        F: Fn(T) -> O + Sync,
        C: FromIterator<O>,
    {
        let MapParIter { mut items, f } = self;
        let n = items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let workers = workers.clamp(1, n);
        if workers == 1 {
            return items.into_iter().map(f).collect();
        }

        // Contiguous chunks, sized to differ by at most one item.
        let base = n / workers;
        let extra = n % workers;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        for w in (0..workers).rev() {
            let take = base + usize::from(w < extra);
            let tail = items.split_off(items.len() - take);
            chunks.push(tail);
        }
        chunks.reverse();

        let f = &f;
        let per_chunk: Vec<Vec<O>> = thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim: worker panicked"))
                .collect()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let v = vec![1i64, 2, 3, 4, 5];
        let sums: Vec<i64> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(sums, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn forced_fanout_spawns_workers_and_preserves_order() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..67).collect();
        let out: Vec<usize> = v
            .clone()
            .into_par_iter()
            .map(|x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                x * 3
            })
            .collect_with_workers(4);
        assert_eq!(out, v.iter().map(|x| x * 3).collect::<Vec<_>>());
        // Four scoped workers, none of which is this thread.
        let ids = ids.lock().unwrap();
        assert_eq!(ids.len(), 4);
        assert!(!ids.contains(&std::thread::current().id()));
    }

    #[test]
    fn uneven_chunking_covers_all_items() {
        for workers in 1..=8 {
            for n in [1usize, 2, 7, 8, 9, 63] {
                let v: Vec<usize> = (0..n).collect();
                let out: Vec<usize> = v
                    .clone()
                    .into_par_iter()
                    .map(|x| x + 1)
                    .collect_with_workers(workers);
                assert_eq!(
                    out,
                    v.iter().map(|x| x + 1).collect::<Vec<_>>(),
                    "w={workers} n={n}"
                );
            }
        }
    }
}
