//! # `art9` — umbrella crate of the ART-9 reproduction
//!
//! Re-exports the whole workspace so examples and downstream users can
//! depend on one crate:
//!
//! * [`ternary`] — balanced ternary number system;
//! * [`art9_isa`] — the 24-instruction 9-trit ISA, assembler and
//!   disassembler;
//! * [`art9_sim`] — functional and cycle-accurate 5-stage simulators;
//! * [`rv32`] — the RV32I/M substrate with PicoRV32/VexRiscv cycle
//!   models;
//! * [`art9_compiler`] — the software-level compiling framework;
//! * [`art9_hw`] — the gate-level analyzer, technology libraries and
//!   FPGA model;
//! * [`workloads`] — the paper's benchmark programs;
//! * [`art9_core`] — the two frameworks tied together.
//!
//! See `examples/quickstart.rs` for a three-minute tour, and
//! EXPERIMENTS.md for the paper-vs-measured record of every table and
//! figure.

#![forbid(unsafe_code)]

pub use art9_compiler;
pub use art9_core;
pub use art9_hw;
pub use art9_isa;
pub use art9_sim;
pub use rv32;
pub use ternary;
pub use workloads;
