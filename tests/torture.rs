//! ISA torture test: one hand-written ART-9 program that executes all
//! 24 instructions and folds every intermediate result into a checksum
//! register, verified against an independently computed value on both
//! simulators. This is the workspace's version of the paper's
//! "successfully verified by a number of test programs" claim, in one
//! self-checking binary.

use art9_isa::assemble;
use art9_sim::SimBuilder;
use ternary::Word9;

/// The torture program. Register roles: t3 = checksum accumulator,
/// t4/t5 = operands, t6 = scratch, t2 = memory base, t1 = link.
const TORTURE: &str = "
        .data
seed:   .word 1234, -567, 89
buf:    .zero 4
        .text
        ; --- I-type constants -------------------------------------
        LUI  t4, 7              ; t4 = 7 * 243 = 1701
        LI   t4, 100            ; splice low trits: 1701 -> 1801? no:
                                ; {t4[8:5], 100} = 1701-keeps-upper
        SUB  t3, t3             ; checksum = 0
        ADD  t3, t4
        ; --- memory ------------------------------------------------
        SUB  t2, t2             ; base = 0
        LOAD t5, t2, 0          ; 1234
        ADD  t3, t5
        LOAD t6, t2, 1          ; -567
        ADD  t3, t6
        STORE t3, t2, 3         ; buf[0] = running sum
        LOAD t5, t2, 3
        SUB  t3, t5             ; checksum -= itself => 0
        ADD  t3, t5             ; restore
        ; --- R-type logic -----------------------------------------
        LOAD t4, t2, 2          ; 89
        MV   t5, t4
        AND  t5, t3
        ADD  t3, t5
        MV   t5, t4
        OR   t5, t3
        ADD  t3, t5
        MV   t5, t4
        XOR  t5, t3
        ADD  t3, t5
        PTI  t5, t4
        ADD  t3, t5
        NTI  t5, t4
        ADD  t3, t5
        STI  t5, t4
        ADD  t3, t5
        ; --- shifts ------------------------------------------------
        MV   t5, t4
        SLI  t5, 2              ; 89 * 9
        ADD  t3, t5
        MV   t5, t4
        SRI  t5, 1              ; round(89/3) = 30
        ADD  t3, t5
        LI   t6, 1
        MV   t5, t4
        SL   t5, t6             ; 89 * 3
        ADD  t3, t5
        MV   t5, t4
        SR   t5, t6             ; 30 again
        ADD  t3, t5
        ; --- compare / branches ------------------------------------
        MV   t5, t4
        COMP t5, t3             ; sign(89 - checksum)
        ADD  t3, t5
        MV   t6, t3
        COMP t6, t0
        BEQ  t6, +, positive
        ADDI t3, 13             ; (taken only if checksum <= 0)
positive:
        BNE  t6, 0, nonzero
        ADDI t3, -13            ; (skipped when checksum != 0)
nonzero:
        ANDI t3, 12             ; fold through an I-type logic op? no:
                                ; ANDI is min() with 12 - keep value small
        ; --- calls -------------------------------------------------
        JAL  t1, leaf
        ADDI t3, 1
        JAL  t0, 0              ; halt
leaf:
        ADDI t3, 2
        JALR t6, t1, 0          ; return (link dumped to t6)
";

/// Independent model of the torture program, in plain Rust on the
/// ternary substrate.
fn expected_checksum() -> i64 {
    let w = |v: i64| Word9::from_i64_wrapping(v);
    let seed = [w(1234), w(-567), w(89)];

    // LUI/LI on t4.
    let t4 = Word9::ZERO.with_field::<4>(5, ternary::Trits::<4>::from_i64(7).unwrap());
    let t4 = t4.with_field::<5>(0, ternary::Trits::<5>::from_i64(100).unwrap());
    let mut sum = Word9::ZERO.wrapping_add(t4);

    // Memory.
    sum = sum.wrapping_add(seed[0]).wrapping_add(seed[1]);
    // store/load/sub/add cancel.

    // Logic over t4 = 89.
    let t4 = seed[2];
    sum = sum.wrapping_add(t4.and(sum));
    sum = sum.wrapping_add(t4.or(sum));
    sum = sum.wrapping_add(t4.xor(sum));
    sum = sum.wrapping_add(t4.pti());
    sum = sum.wrapping_add(t4.nti());
    sum = sum.wrapping_add(t4.sti());

    // Shifts.
    sum = sum.wrapping_add(t4.shl(2));
    sum = sum.wrapping_add(t4.shr(1));
    sum = sum.wrapping_add(t4.shl(1));
    sum = sum.wrapping_add(t4.shr(1));

    // Compare.
    sum = sum.wrapping_add(t4.compare(sum));

    // Branches: t6 = sign(sum).
    let sign = sum.compare(Word9::ZERO);
    if sign.lst() != ternary::Trit::P {
        sum = sum.wrapping_add(w(13));
    }
    if sign.lst() == ternary::Trit::Z {
        sum = sum.wrapping_sub(w(13));
    }
    // ANDI 12 = trit-wise min with 12.
    sum = sum.and(w(12));

    // Call: leaf adds 2, return, then +1.
    sum = sum.wrapping_add(w(2)).wrapping_add(w(1));
    sum.to_i64()
}

#[test]
fn torture_program_checksums_on_both_simulators() {
    let p = assemble(TORTURE).expect("torture program assembles");
    // All 24 mnemonics present.
    let mnemonics: std::collections::BTreeSet<&str> =
        p.text().iter().map(|i| i.mnemonic()).collect();
    assert_eq!(mnemonics.len(), 24, "program must use all 24 instructions");

    let expected = expected_checksum();

    let mut f = SimBuilder::new(&p).build_functional();
    f.run(100_000).expect("functional completes");
    assert_eq!(
        f.state().reg("t3".parse().unwrap()).to_i64(),
        expected,
        "functional checksum"
    );

    let mut pipe = SimBuilder::new(&p).build_pipelined();
    pipe.run(100_000).expect("pipelined completes");
    assert_eq!(
        pipe.state().reg("t3".parse().unwrap()).to_i64(),
        expected,
        "pipelined checksum"
    );

    // And once more with forwarding disabled.
    let mut slow = SimBuilder::new(&p).forwarding(false).build_pipelined();
    slow.run(200_000).expect("no-forwarding completes");
    assert_eq!(
        slow.state().reg("t3".parse().unwrap()).to_i64(),
        expected,
        "no-forwarding checksum"
    );
}
