//! Workspace integration tests: every benchmark through the full
//! two-framework flow — RV32 source → software-level compiling
//! framework → cycle-accurate ART-9 pipeline → verified output —
//! cross-checked against the native RV32 machine and the baseline
//! cycle models.

use art9_core::{HardwareFramework, SoftwareFramework};
use art9_sim::SimBuilder;
use rv32::{simulate_cycles, Machine, PicoRv32Model, VexRiscvModel};
use workloads::{bubble_sort, dhrystone, gemm, paper_suite, sobel};

/// Every workload: RV32 native run agrees with the translated ternary
/// run, on both the functional and the pipelined simulator.
#[test]
fn all_workloads_agree_across_isas_and_simulators() {
    for w in paper_suite() {
        let rv = w.rv32_program().expect("parses");

        let mut machine = Machine::new(&rv);
        machine.run(500_000_000).expect("rv32 completes");
        w.verify_rv32(&machine).expect("rv32 output");

        let t = SoftwareFramework::new().compile(&rv).expect("translates");

        let mut functional = SimBuilder::new(&t.program).build_functional();
        functional.run(500_000_000).expect("functional completes");
        w.verify_art9(functional.state())
            .expect("functional output");

        let mut pipelined = SimBuilder::new(&t.program).build_pipelined();
        let stats = pipelined.run(500_000_000).expect("pipelined completes");
        w.verify_art9(pipelined.state()).expect("pipelined output");

        assert_eq!(
            functional.state().trf,
            pipelined.state().trf,
            "{}: simulators diverge",
            w.name
        );
        assert!(
            stats.cpi() < 2.0,
            "{}: pipelined CPI {:.2} should stay near 1",
            w.name,
            stats.cpi()
        );
    }
}

/// Table II ordering: VexRiscv > ART-9 > PicoRV32 in DMIPS/MHz.
#[test]
fn table2_dmips_ordering() {
    let iterations = 30;
    let w = dhrystone(iterations);
    let rv = w.rv32_program().expect("parses");

    let t = SoftwareFramework::new().compile(&rv).expect("translates");
    let mut art9 = SimBuilder::new(&t.program).build_pipelined();
    let art9_stats = art9.run(500_000_000).expect("completes");

    let vex = simulate_cycles(&rv, &mut VexRiscvModel::new(), 500_000_000).expect("completes");
    let pico = simulate_cycles(&rv, &mut PicoRv32Model::new(), 500_000_000).expect("completes");

    // Fewer cycles = more DMIPS/MHz for the same iteration count.
    assert!(vex.cycles < art9_stats.cycles, "VexRiscv leads");
    assert!(art9_stats.cycles < pico.cycles, "ART-9 beats PicoRV32");
}

/// Fig. 5: the ternary program needs fewer storage cells than both
/// binary encodings on every benchmark.
#[test]
fn fig5_art9_uses_fewest_cells() {
    let fw = SoftwareFramework::new();
    for w in paper_suite() {
        let rv = w.rv32_program().expect("parses");
        let row = fw.memory_comparison(w.name, &rv).expect("translates");
        assert!(
            row.art9_cells < row.rv32_bits,
            "{}: {} trits vs {} bits",
            w.name,
            row.art9_cells,
            row.rv32_bits
        );
        assert!(
            row.art9_cells < row.thumb_bits,
            "{}: {} trits vs {} thumb bits",
            w.name,
            row.art9_cells,
            row.thumb_bits
        );
    }
}

/// Tables IV/V: the full hardware flow stays at the paper's
/// magnitudes and keeps CNTFET orders of magnitude ahead of FPGA.
#[test]
fn hardware_flow_magnitudes() {
    let iterations = 10;
    let w = dhrystone(iterations);
    let t = SoftwareFramework::new()
        .compile(&w.rv32_program().expect("parses"))
        .expect("translates");

    let hw = HardwareFramework::new();
    let stats = hw.run_cycles(&t.program, 500_000_000).expect("completes");
    let e = hw.evaluate(stats.cycles as f64 / iterations as f64);

    assert!((500..=800).contains(&e.cntfet.total_gates));
    assert!((10.0..=100.0).contains(&e.cntfet.power_uw));
    assert_eq!(e.fpga.report.ram_bits, 9216);
    assert!((250..=450).contains(&e.fpga.report.registers));
    assert!(e.cntfet.dmips_per_watt > 1e5);
    assert!(e.fpga.dmips_per_watt < 1e4);
}

/// Workload parameters scale sensibly (guards the generators).
#[test]
fn workload_scaling() {
    for n in [4, 8, 16] {
        let w = bubble_sort(n);
        assert_eq!(w.expected.len(), n);
    }
    for n in [2, 4, 6] {
        let w = gemm(n);
        assert_eq!(w.expected.len(), n * n);
    }
    assert_eq!(sobel().expected.len(), 36);
}

/// The compiling framework refuses what it cannot translate instead of
/// miscompiling (the "semantic narrowing" contract).
#[test]
fn untranslatable_programs_are_rejected() {
    let fw = SoftwareFramework::new();
    for (name, src) in [
        ("big constant", "li a0, 100000\nebreak\n"),
        (
            "subword",
            ".data\nv: .word 0\n.text\nla a0, v\nlb a1, 0(a0)\nebreak\n",
        ),
        (
            "unaligned",
            ".data\nv: .word 0\n.text\nla a0, v\nlw a1, 2(a0)\nebreak\n",
        ),
    ] {
        let rv = rv32::parse_program(src).expect("parses");
        assert!(fw.compile(&rv).is_err(), "{name} must be rejected");
    }
}
