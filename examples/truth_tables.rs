//! Prints the truth tables of the ternary logic operations — the
//! paper's Fig. 1.
//!
//! ```sh
//! cargo run --example truth_tables
//! ```

use ternary::{Trit, ALL_TRITS};

fn print_binary(name: &str, f: impl Fn(Trit, Trit) -> Trit) {
    println!("{name}:");
    print!("  a\\b |");
    for b in ALL_TRITS {
        print!("  {b} ");
    }
    println!();
    println!("  ----+------------");
    for a in ALL_TRITS {
        print!("   {a}  |");
        for b in ALL_TRITS {
            print!("  {} ", f(a, b));
        }
        println!();
    }
    println!();
}

fn print_unary(name: &str, f: impl Fn(Trit) -> Trit) {
    print!("{name}: ");
    for t in ALL_TRITS {
        print!("{t} -> {}   ", f(t));
    }
    println!();
}

fn main() {
    println!("Fig. 1 — truth tables of ternary logic operations\n");
    print_binary("AND (minimum)", Trit::and);
    print_binary("OR (maximum)", Trit::or);
    print_binary("XOR", Trit::xor);
    print_unary("STI (standard inverter)", Trit::sti);
    print_unary("NTI (negative inverter)", Trit::nti);
    print_unary("PTI (positive inverter)", Trit::pti);
}
