//! Watch the pipeline work: bubble sort with per-cycle tracing over
//! the first cycles, stall accounting, and the sorted result.
//!
//! ```sh
//! cargo run --example sort_demo
//! ```

use art9_compiler::translate;
use art9_sim::SimBuilder;
use workloads::bubble_sort;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = bubble_sort(8);
    let t = translate(&w.rv32_program()?)?;

    let mut core = SimBuilder::new(&t.program).trace(true).build_pipelined();
    let stats = core.run(1_000_000)?;
    w.verify_art9(core.state())?;

    println!("first 25 cycles of the 5-stage pipeline:");
    for cycle in core.trace().expect("tracing enabled").iter().take(25) {
        println!("{cycle}");
    }

    println!("\n{stats}");
    println!(
        "\nsorted: {:?}",
        (0..8)
            .map(|i| core
                .state()
                .tdm
                .read(art9_compiler::analysis::DATA_WORD_BASE as usize + i)
                .map(|w| w.to_i64()))
            .collect::<Result<Vec<_>, _>>()?
    );
    Ok(())
}
