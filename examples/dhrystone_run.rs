//! Table II reproduced live: the Dhrystone-style kernel on the three
//! cores — pipelined ART-9, VexRiscv-style 5-stage, and the
//! non-pipelined PicoRV32.
//!
//! ```sh
//! cargo run --release --example dhrystone_run
//! ```

use art9_compiler::translate;
use art9_sim::SimBuilder;
use rv32::{simulate_cycles, PicoRv32Model, VexRiscvModel};
use workloads::{dhrystone, DHRYSTONE_DIVISOR};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations = 50usize;
    let w = dhrystone(iterations);
    let rv = w.rv32_program()?;

    // ART-9: translate, then run cycle-accurately.
    let t = translate(&rv)?;
    let mut art9 = SimBuilder::new(&t.program).build_pipelined();
    let stats = art9.run(100_000_000)?;
    w.verify_art9(art9.state())?;

    // Binary baselines: cycle models over the same source.
    let vex = simulate_cycles(&rv, &mut VexRiscvModel::new(), 100_000_000)?;
    let pico = simulate_cycles(&rv, &mut PicoRv32Model::new(), 100_000_000)?;

    let dmips_mhz = |cycles: u64| 1.0e6 / (cycles as f64 / iterations as f64 * DHRYSTONE_DIVISOR);

    println!(
        "Table II — simulation results of the Dhrystone benchmark ({iterations} iterations)\n"
    );
    println!(
        "{:<22} {:>10} {:>8} {:>12}",
        "core", "cycles", "CPI", "DMIPS/MHz"
    );
    println!(
        "{:<22} {:>10} {:>8.2} {:>12.2}",
        "ART-9 (5-stage)",
        stats.cycles,
        stats.cpi(),
        dmips_mhz(stats.cycles)
    );
    println!(
        "{:<22} {:>10} {:>8.2} {:>12.2}",
        "VexRiscv (5-stage)",
        vex.cycles,
        vex.cpi(),
        dmips_mhz(vex.cycles)
    );
    println!(
        "{:<22} {:>10} {:>8.2} {:>12.2}",
        "PicoRV32 (non-pipe)",
        pico.cycles,
        pico.cpi(),
        dmips_mhz(pico.cycles)
    );

    println!(
        "\nmemory: ART-9 {} instr trits vs RV32 {} instr bits",
        t.report.art9_instruction_cells(),
        t.report.rv32_instruction_bits()
    );
    println!("(paper: 0.42 vs 0.65 vs 0.31 DMIPS/MHz — same ordering)");

    // Dynamic operation mix on the ternary side (York-style analysis).
    let total: u64 = art9.instruction_mix().values().sum();
    let mut mix: Vec<(&str, u64)> = art9
        .instruction_mix()
        .iter()
        .map(|(m, n)| (*m, *n))
        .collect();
    mix.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\nART-9 dynamic instruction mix (top 8 of {total} retired):");
    for (mnemonic, count) in mix.iter().take(8) {
        println!(
            "  {mnemonic:<6} {count:>8}  ({:.1}%)",
            100.0 * *count as f64 / total as f64
        );
    }
    Ok(())
}
