//! Dynamic energy accounting end to end: run a paper workload on the
//! cycle-accurate pipelined core with the trit-flip observer attached,
//! convert the measured switching activity through the CNTFET library,
//! and print the measured Table IV row (model in docs/ENERGY.md).
//!
//! ```sh
//! cargo run --release --example energy
//! ```

use art9_bench::energy::{class_counts, energy_row, render};
use art9_hw::activity::ALL_CLASSES;
use art9_hw::analyzer::analyze;
use art9_hw::datapath::Datapath;
use art9_hw::tech::cntfet32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations = 20;
    let w = workloads::dhrystone(iterations);

    // One verified pipelined run measures flips and cycles together.
    let m = workloads::energy::measure_activity(&w)?;
    let totals = m.accounting.totals();
    println!(
        "{}: {} instructions in {} cycles (CPI {:.2})",
        m.workload,
        m.instructions,
        m.cycles,
        m.cycles as f64 / m.instructions as f64
    );
    println!(
        "switching activity: {} regfile + {} tdm + {} fetch + {} alu trit flips\n",
        totals.regfile, totals.tdm, totals.fetch, totals.alu
    );

    println!("== flips by instruction class ==");
    for (class, counts) in ALL_CLASSES.iter().zip(class_counts(&m)) {
        println!(
            "  {class:<8} {:>8} retired  {:>10} flips",
            counts.retired,
            counts.total_flips()
        );
    }

    // The same cntfet-32nm table the static Table IV estimate uses.
    let analysis = analyze(&Datapath::art9(), &cntfet32());
    let row = energy_row(&m, &analysis, &cntfet32(), Some(iterations as u64));
    println!("\n== measured Table IV row ==");
    print!("{}", render(std::slice::from_ref(&row)));
    Ok(())
}
