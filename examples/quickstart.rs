//! Quickstart: assemble a ternary program, run it through the unified
//! `Core` execution API on every backend, attach an observer, and
//! checkpoint/resume a run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::{Arc, Mutex};

use art9_isa::{assemble, disassemble_image};
use art9_sim::observers::Watchpoint;
use art9_sim::{Backend, Budget, Checkpoint, SimBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sum the numbers 1..=10 and store the running total — note the
    // ternary branching idiom: conditional branches test a single
    // trit, so the loop guard goes through COMP (paper §IV-A).
    let program = assemble(
        "
        LI   t3, 10          ; counter
        LI   t4, 0           ; accumulator
        LI   t2, 0           ; memory base
    loop:
        ADD  t4, t3
        STORE t4, t2, 0      ; running total -> TDM[0]
        ADDI t3, -1
        MV   t7, t3
        COMP t7, t0          ; t7 = sign(t3)
        BEQ  t7, +, loop     ; continue while t3 > 0
    halt:
        JAL  t0, 0           ; jump-to-self halts the core
    ",
    )?;

    println!("TIM image ({} trits):", program.instruction_cells());
    println!("{}", disassemble_image(&program.tim_image()));

    // One builder, four backends, one code path.
    let builder = SimBuilder::new(&program);
    for backend in Backend::ALL {
        let mut core = builder.clone().backend(backend).build();
        let summary = core.run_for(Budget::Steps(10_000))?;
        let timing = match core.pipeline_stats() {
            Some(s) => format!(
                "{} cycles (CPI {:.2}, {} stalls/bubbles)",
                s.cycles,
                s.cpi(),
                s.lost_cycles()
            ),
            None => "no timing model".to_string(),
        };
        println!(
            "{backend:<10}  t4 = {}  |  {} instructions  |  {timing}",
            core.state().reg("t4".parse()?).to_i64(),
            summary.retired,
        );
    }

    // Observer hooks: watch every store to TDM[0], with the storing PC.
    let watch = Arc::new(Mutex::new(Watchpoint::new(0)));
    let mut observed = builder.clone().observer(watch.clone()).build();
    observed.run_for(Budget::Steps(10_000))?;
    let hits = watch.lock().unwrap().hits.clone();
    println!(
        "\nwatchpoint on TDM[0]: {} stores, last value {}",
        hits.len(),
        hits.last().map_or(0, |h| h.value.to_i64())
    );

    // Snapshot/resume: run 7 cycles on the pipeline, serialize the
    // checkpoint, restore it into a fresh core and finish — the result
    // is bit-identical to an uninterrupted run.
    let pipelined = builder.clone().backend(Backend::Pipelined);
    let mut first = pipelined.build();
    first.run_for(Budget::Steps(7))?;
    let text = first.snapshot().to_text();
    println!(
        "\ncheckpoint after 7 cycles: {} bytes of `art9-checkpoint v1`",
        text.len()
    );

    let mut resumed = pipelined.build();
    resumed.restore(&Checkpoint::from_text(&text)?)?;
    resumed.run_for(Budget::Steps(10_000))?;

    let mut uninterrupted = pipelined.build();
    uninterrupted.run_for(Budget::Steps(10_000))?;
    assert_eq!(
        resumed.state().first_difference(uninterrupted.state()),
        None
    );
    assert_eq!(resumed.pipeline_stats(), uninterrupted.pipeline_stats());
    println!("resumed run is bit-identical to the uninterrupted run");
    Ok(())
}
