//! Quickstart: assemble a ternary program, run it on both simulators,
//! and inspect the machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use art9_isa::{assemble, disassemble_image};
use art9_sim::{FunctionalSim, PipelinedSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sum the numbers 1..=10 — note the ternary branching idiom:
    // conditional branches test a single trit, so the loop guard goes
    // through COMP (paper §IV-A).
    let program = assemble(
        "
        LI   t3, 10          ; counter
        LI   t4, 0           ; accumulator
    loop:
        ADD  t4, t3
        ADDI t3, -1
        MV   t7, t3
        COMP t7, t0          ; t7 = sign(t3)
        BEQ  t7, +, loop     ; continue while t3 > 0
    halt:
        JAL  t0, 0           ; jump-to-self halts the core
    ",
    )?;

    println!("TIM image ({} trits):", program.instruction_cells());
    println!("{}", disassemble_image(&program.tim_image()));

    // Architecture-level run.
    let mut functional = FunctionalSim::new(&program);
    functional.run(10_000)?;
    println!(
        "functional: t4 = {}",
        functional.state().reg("t4".parse()?).to_i64()
    );

    // Cycle-accurate run on the 5-stage pipeline.
    let mut core = PipelinedSim::new(&program);
    let stats = core.run(10_000)?;
    println!(
        "pipelined:  t4 = {}  |  {} instructions in {} cycles (CPI {:.2}, {} stalls/bubbles)",
        core.state().reg("t4".parse()?).to_i64(),
        stats.instructions,
        stats.cycles,
        stats.cpi(),
        stats.lost_cycles()
    );
    assert_eq!(
        functional.state().reg("t4".parse()?),
        core.state().reg("t4".parse()?)
    );
    Ok(())
}
