//! The hardware-level evaluation framework end to end: run Dhrystone
//! cycle-accurately, analyze the datapath under the CNTFET library,
//! map to the FPGA model, and print Tables IV and V.
//!
//! ```sh
//! cargo run --release --example hardware_report
//! ```

use art9_core::{report, HardwareFramework, SoftwareFramework};
use workloads::dhrystone;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations = 20;
    let w = dhrystone(iterations);
    let rv = w.rv32_program()?;

    let sw = SoftwareFramework::new();
    let translation = sw.compile(&rv)?;

    let hw = HardwareFramework::new();
    let stats = hw.run_cycles(&translation.program, 50_000_000)?;
    let cycles_per_iteration = stats.cycles as f64 / iterations as f64;
    println!(
        "dhrystone: {} cycles for {iterations} iterations ({cycles_per_iteration:.0} cycles/iter, CPI {:.2})",
        stats.cycles,
        stats.cpi()
    );
    println!(
        "DMIPS/MHz = {:.2}\n",
        1.0e6 / (cycles_per_iteration * workloads::DHRYSTONE_DIVISOR)
    );

    let evaluation = hw.evaluate(cycles_per_iteration);

    println!("== per-block gate counts (datapath) ==");
    for (name, gates) in hw.datapath().block_summary() {
        println!("  {name:<20} {gates}");
    }
    println!("  {:<20} {}\n", "TOTAL", hw.datapath().datapath_gates());

    let lib = art9_hw::tech::cntfet32();
    let (slowest, delay) = art9_hw::analyzer::critical_block(hw.datapath(), &lib);
    println!("critical block: {slowest} ({delay:.0} ps) — the fmax limiter\n");

    println!("{}", report::table4(&evaluation));
    println!("{}", report::table5(&evaluation));
    Ok(())
}
