//! Ternary-NN inference end to end: the same ternary-weight MLP
//! (`y = W2 · sign(W1 · x)`) evaluated three ways — the host scalar
//! reference, the host bitplane-SIMD lane subsystem, and the generated
//! kernel on the simulated ART-9 core with energy accounting attached.
//! The subsystem tour is in docs/WORKLOADS.md.
//!
//! ```sh
//! cargo run --release --example nn_inference
//! ```

use std::sync::{Arc, Mutex};

use art9_compiler::translate;
use art9_sim::observers::EnergyAccounting;
use art9_sim::{Backend, Budget, SimBuilder};
use ternary::Word9;
use workloads::nn::TernaryMlp;
use workloads::nn_mlp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Host inference: scalar reference vs the SIMD lanes --------
    // This is the exact network behind the `nn-mlp` workload at its
    // default size and seed (8 -> 8 -> 8, ternary weights).
    let n = 8;
    let mlp = TernaryMlp::seeded(n, 47);
    let x: Vec<Word9> = (0..n as i64)
        .map(|i| Word9::from_i64_wrapping((i * 5) % 15 - 7))
        .collect();

    let scalar = mlp.infer_scalar(&x);
    let simd = mlp.infer_simd(&x);
    assert_eq!(scalar, simd, "SIMD path is pinned to the reference");

    let fmt = |v: &[Word9]| {
        v.iter()
            .map(|w| w.to_i64().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("ternary MLP, {n}-{n}-{n}, y = W2 x sign(W1 x x)");
    println!("  x = [{}]", fmt(&x));
    println!("  y = [{}]   (scalar and SIMD paths agree)", fmt(&simd));
    println!(
        "  SIMD path: {} lanes per plane word, ternary MAC by plane \
         masking, carry-save matvec (docs/WORKLOADS.md)\n",
        ternary::simd::LANES_PER_WORD
    );

    // ---- The same inference as a simulated ART-9 run ---------------
    // The workload carries its own seeded inputs and golden outputs;
    // the pipelined core runs it with the trit-flip observer attached,
    // so one verified execution yields timing and switching activity.
    let w = nn_mlp(n);
    println!("running `{}` on the pipelined ART-9 core...", w.name);
    let t = translate(&w.rv32_program()?)?;
    let energy = Arc::new(Mutex::new(EnergyAccounting::new()));
    let mut core = SimBuilder::new(&t.program)
        .backend(Backend::Pipelined)
        .observer(energy.clone())
        .build();
    let summary = core.run_for(Budget::Steps(10_000_000))?;
    assert!(summary.halt.is_some(), "inference kernel must halt");
    w.verify_art9(core.state())?;

    let stats = core.pipeline_stats().expect("pipelined backend is timed");
    let accounting = energy.lock().expect("observer lock").clone();
    let totals = accounting.totals();
    println!(
        "  verified: {} instructions in {} cycles (CPI {:.2})",
        summary.retired,
        stats.cycles,
        stats.cycles as f64 / summary.retired as f64
    );
    println!(
        "  switching activity: {} regfile + {} tdm + {} fetch + {} alu trit flips",
        totals.regfile, totals.tdm, totals.fetch, totals.alu
    );
    Ok(())
}
