//! Prints a programmer's reference card for the ART-9 ISA: all 24
//! instructions with their category, a sample encoding, and the
//! operand semantics of Table I.
//!
//! ```sh
//! cargo run --example isa_reference
//! ```

use art9_isa::{encode, Format, Imm2, Imm3, Imm4, Imm5, Instruction, TReg};
use ternary::Trit;

fn main() {
    use Instruction::*;
    let a = TReg::T3;
    let b = TReg::T4;
    let samples: Vec<(Instruction, &str)> = vec![
        (Mv { a, b }, "TRF[Ta] = TRF[Tb]"),
        (Pti { a, b }, "TRF[Ta] = PTI(TRF[Tb])"),
        (Nti { a, b }, "TRF[Ta] = NTI(TRF[Tb])"),
        (Sti { a, b }, "TRF[Ta] = STI(TRF[Tb])"),
        (And { a, b }, "TRF[Ta] = min(TRF[Ta], TRF[Tb])"),
        (Or { a, b }, "TRF[Ta] = max(TRF[Ta], TRF[Tb])"),
        (Xor { a, b }, "TRF[Ta] = TRF[Ta] (+) TRF[Tb]"),
        (Add { a, b }, "TRF[Ta] = TRF[Ta] + TRF[Tb]"),
        (Sub { a, b }, "TRF[Ta] = TRF[Ta] - TRF[Tb]"),
        (Sr { a, b }, "TRF[Ta] = TRF[Ta] >> TRF[Tb][1:0]"),
        (Sl { a, b }, "TRF[Ta] = TRF[Ta] << TRF[Tb][1:0]"),
        (Comp { a, b }, "TRF[Ta] = compare(TRF[Ta], TRF[Tb])"),
        (
            Andi {
                a,
                imm: Imm3::from_i64(5).unwrap(),
            },
            "TRF[Ta] = min(TRF[Ta], imm)",
        ),
        (
            Addi {
                a,
                imm: Imm3::from_i64(5).unwrap(),
            },
            "TRF[Ta] = TRF[Ta] + imm (NOP when 0)",
        ),
        (
            Sri {
                a,
                imm: Imm2::from_i64(2).unwrap(),
            },
            "TRF[Ta] = TRF[Ta] >> imm",
        ),
        (
            Sli {
                a,
                imm: Imm2::from_i64(2).unwrap(),
            },
            "TRF[Ta] = TRF[Ta] << imm",
        ),
        (
            Lui {
                a,
                imm: Imm4::from_i64(7).unwrap(),
            },
            "TRF[Ta] = {imm[3:0], 00000}",
        ),
        (
            Li {
                a,
                imm: Imm5::from_i64(42).unwrap(),
            },
            "TRF[Ta] = {TRF[Ta][8:5], imm[4:0]}",
        ),
        (
            Beq {
                b,
                cond: Trit::P,
                offset: Imm4::from_i64(3).unwrap(),
            },
            "PC += imm if TRF[Tb][0] == B",
        ),
        (
            Bne {
                b,
                cond: Trit::Z,
                offset: Imm4::from_i64(-3).unwrap(),
            },
            "PC += imm if TRF[Tb][0] != B",
        ),
        (
            Jal {
                a,
                offset: Imm5::from_i64(10).unwrap(),
            },
            "TRF[Ta] = PC+1; PC += imm",
        ),
        (
            Jalr {
                a,
                b,
                offset: Imm3::from_i64(0).unwrap(),
            },
            "TRF[Ta] = PC+1; PC = TRF[Tb]+imm",
        ),
        (
            Load {
                a,
                b,
                offset: Imm3::from_i64(2).unwrap(),
            },
            "TRF[Ta] = TDM[TRF[Tb]+imm]",
        ),
        (
            Store {
                a,
                b,
                offset: Imm3::from_i64(2).unwrap(),
            },
            "TDM[TRF[Tb]+imm] = TRF[Ta]",
        ),
    ];

    println!("ART-9 instruction set reference (24 instructions, Table I)\n");
    println!(
        "{:<6} {:<22} {:<11} operation",
        "type", "assembly", "encoding"
    );
    println!("{}", "-".repeat(78));
    for (i, semantics) in &samples {
        let fmt = match i.format() {
            Format::R => "R",
            Format::I => "I",
            Format::B => "B",
            Format::M => "M",
        };
        println!(
            "{:<6} {:<22} {:<11} {}",
            fmt,
            i.to_string(),
            encode(i).to_string(),
            semantics
        );
    }
    println!("\nencoding shown most-significant trit first; registers t0..t8;");
    println!("immediates are balanced (e.g. imm3 covers -13..=13).");
}
