//! The software-level compiling framework on a real workload:
//! RV32 bubble sort in, ART-9 ternary assembly out — with the
//! conversion statistics and the Fig. 5 memory-cell comparison.
//!
//! ```sh
//! cargo run --example compile_rv32
//! ```

use art9_core::SoftwareFramework;
use art9_sim::SimBuilder;
use workloads::bubble_sort;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = bubble_sort(12);
    println!("== RV32 source ==\n{}", workload.source);

    let rv = workload.rv32_program()?;
    let framework = SoftwareFramework::new();
    let translation = framework.compile(&rv)?;

    println!("== translation report ==\n{}", translation.report);
    println!("== register renaming (operand conversion) ==");
    for (reg, loc) in translation.allocation.iter() {
        println!("  {reg:<5} -> {loc:?}");
    }

    println!(
        "\n== side-by-side listing (instruction mapping) ==\n{}",
        translation.listing(&rv)
    );

    // Prove it still sorts.
    let mut sim = SimBuilder::new(&translation.program).build_functional();
    sim.run(2_000_000)?;
    workload.verify_art9(sim.state())?;
    println!("verification: sorted output confirmed on the ternary machine");

    // Fig. 5-style comparison for this program.
    let row = framework.memory_comparison(workload.name, &rv)?;
    println!(
        "\nmemory cells: ART-9 {} trits | RV-32I {} bits | ARMv6-M {} bits ({:.0}% saving vs RV32)",
        row.art9_cells,
        row.rv32_bits,
        row.thumb_bits,
        100.0 * row.saving_vs_rv32()
    );
    Ok(())
}
